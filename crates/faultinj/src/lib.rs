//! # scrutiny-faultinj — fault-injection validation of criticality maps
//!
//! The paper's §IV.C argument is falsifiable: corrupting *uncritical*
//! elements of a restored checkpoint must leave the application's
//! verification passing, while corrupting *critical* elements must not.
//! This crate runs those campaigns systematically.
//!
//! Two layers of fault live here:
//!
//! * [`campaign`] / [`corruption`] — damage restored *values* in memory
//!   to falsify the criticality maps (the paper's §IV.C experiment);
//! * [`storage`] — damage checkpoint *objects* at rest (truncated
//!   shards, flipped payload bytes, deleted delta bases, missing commit
//!   markers) to exercise the recovery pipeline's corruption fallback.
//!
//! A third layer targets the *service* path: [`net`] proxies a
//! `scrutinyd` connection and damages the byte stream itself (torn
//! frames, dropped connections mid-publish, garbage length prefixes),
//! validating that remote clients surface typed errors and never wedge
//! a submitting engine's chain.

#![warn(missing_docs)]

pub mod campaign;
pub mod corruption;
pub mod net;
pub mod storage;

pub use campaign::{campaign_matrix, run_campaign, CampaignConfig, CampaignReport, Target};
pub use corruption::Corruption;
pub use net::{FaultProxy, NetFault};
pub use storage::{StorageFault, StorageScenario};
