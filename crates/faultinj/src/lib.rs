//! # scrutiny-faultinj — fault-injection validation of criticality maps
//!
//! The paper's §IV.C argument is falsifiable: corrupting *uncritical*
//! elements of a restored checkpoint must leave the application's
//! verification passing, while corrupting *critical* elements must not.
//! This crate runs those campaigns systematically.

pub mod campaign;
pub mod corruption;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, Target};
pub use corruption::Corruption;
