//! # scrutiny-faultinj — fault-injection validation of criticality maps
//!
//! The paper's §IV.C argument is falsifiable: corrupting *uncritical*
//! elements of a restored checkpoint must leave the application's
//! verification passing, while corrupting *critical* elements must not.
//! This crate runs those campaigns systematically.
//!
//! Two layers of fault live here:
//!
//! * [`campaign`] / [`corruption`] — damage restored *values* in memory
//!   to falsify the criticality maps (the paper's §IV.C experiment);
//! * [`storage`] — damage checkpoint *objects* at rest (truncated
//!   shards, flipped payload bytes, deleted delta bases, missing commit
//!   markers) to exercise the recovery pipeline's corruption fallback.

#![warn(missing_docs)]

pub mod campaign;
pub mod corruption;
pub mod storage;

pub use campaign::{campaign_matrix, run_campaign, CampaignConfig, CampaignReport, Target};
pub use corruption::Corruption;
pub use storage::{StorageFault, StorageScenario};
