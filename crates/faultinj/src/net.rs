//! Wire-level fault injection: a TCP [`FaultProxy`] that sits between a
//! `scrutinyd` client and its daemon and damages the byte stream itself
//! — the failure modes a storage *service* adds on top of storage.
//!
//! The proxy is protocol-agnostic (it forwards opaque bytes), so this
//! crate needs no dependency on the daemon; tests point a
//! `RemoteBackend` at [`FaultProxy::addr`] and the proxy at the real
//! daemon. Faults are **one-shot**: the proxy starts disarmed
//! (pass-through), [`FaultProxy::arm`] primes the next matching
//! traffic, and after firing once the proxy passes traffic cleanly
//! again — exactly the shape the no-wedge contract needs (one epoch
//! fails with a typed error, the next succeeds).

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How the proxy damages the stream once armed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Forward only `bytes` bytes of the next daemon→client response,
    /// then close both directions: the client sees a frame torn
    /// mid-prefix or mid-payload
    /// ([`std::io::ErrorKind::UnexpectedEof`]).
    TruncateResponse {
        /// Response bytes forwarded before the cut.
        bytes: usize,
    },
    /// Forward only `bytes` bytes of the next client→daemon request,
    /// then drop the connection — a publish dying mid-flight. The
    /// daemon's frame timeout discards the half request; the client
    /// sees a connection error.
    DropMidRequest {
        /// Request bytes forwarded before the drop.
        bytes: usize,
    },
    /// Overwrite the 4-byte length prefix of the next daemon→client
    /// response with `0xFFFF_FFFF`: the client's frame reader must
    /// refuse it *before allocating*
    /// ([`std::io::ErrorKind::InvalidData`]).
    GarbageResponseLength,
}

/// A live fault proxy; dropping it stops the listener.
pub struct FaultProxy {
    addr: String,
    armed: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral local port, forwarding every connection to
    /// the TCP address `upstream`. Starts disarmed (pure pass-through).
    pub fn spawn(upstream: impl Into<String>, fault: NetFault) -> io::Result<FaultProxy> {
        let upstream = upstream.into();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let armed = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let (armed2, stop2) = (armed.clone(), stop.clone());
        let accept = std::thread::Builder::new()
            .name("faultinj-proxy".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = conn else { break };
                    let Ok(server) = TcpStream::connect(&upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let armed3 = armed2.clone();
                    let _ = std::thread::Builder::new()
                        .name("faultinj-pipe".into())
                        .spawn(move || pipe_pair(client, server, fault, armed3));
                }
            })?;
        Ok(FaultProxy {
            addr,
            armed,
            stop,
            accept: Some(accept),
        })
    }

    /// The address clients should dial instead of the daemon's.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Prime the fault: the next matching traffic on *any* proxied
    /// connection is damaged, once.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Whether the fault is still waiting to fire.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(&self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Forward both directions of one connection, applying `fault` when it
/// fires. Claiming the armed flag (`swap(false)`) makes injection
/// exactly-once across connections and directions.
fn pipe_pair(client: TcpStream, server: TcpStream, fault: NetFault, armed: Arc<AtomicBool>) {
    let (c2, s2) = (client.try_clone(), server.try_clone());
    let (Ok(client2), Ok(server2)) = (c2, s2) else {
        return;
    };
    let armed_up = armed.clone();
    // client → server (requests).
    let up = std::thread::spawn(move || {
        pump(client2, server, Direction::Request, fault, armed_up);
    });
    // server → client (responses).
    pump(server2, client, Direction::Response, fault, armed);
    let _ = up.join();
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Request,
    Response,
}

fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    dir: Direction,
    fault: NetFault,
    armed: Arc<AtomicBool>,
) {
    let mut buf = [0u8; 16 * 1024];
    // Which direction this pump damages, and the fault's byte budget.
    let applies = matches!(
        (fault, dir),
        (NetFault::TruncateResponse { .. }, Direction::Response)
            | (NetFault::DropMidRequest { .. }, Direction::Request)
            | (NetFault::GarbageResponseLength, Direction::Response)
    );
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        // `swap` claims the one shot; a lost race means the other
        // direction (or another connection) fired first and this pump
        // just forwards.
        if applies && armed.load(Ordering::SeqCst) && armed.swap(false, Ordering::SeqCst) {
            match fault {
                NetFault::TruncateResponse { bytes } | NetFault::DropMidRequest { bytes } => {
                    let keep = bytes.min(n);
                    let _ = to.write_all(&buf[..keep]);
                    let _ = to.flush();
                    break; // sockets shut below: the torn end is visible
                }
                NetFault::GarbageResponseLength => {
                    let mut damaged = buf[..n].to_vec();
                    for b in damaged.iter_mut().take(4) {
                        *b = 0xFF;
                    }
                    if to.write_all(&damaged).is_err() {
                        break;
                    }
                    continue;
                }
            }
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny upstream echoing every byte back.
    fn echo_server() -> (String, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            // One connection per test is enough.
            if let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 1024];
                while let Ok(n) = s.read(&mut buf) {
                    if n == 0 || s.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, h)
    }

    #[test]
    fn passthrough_until_armed_then_one_shot_truncation() {
        let (up, h) = echo_server();
        let proxy = FaultProxy::spawn(up, NetFault::TruncateResponse { bytes: 2 }).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        // Disarmed: clean echo.
        conn.write_all(b"hello").unwrap();
        let mut got = [0u8; 5];
        conn.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello");
        // Armed: response cut after 2 bytes, then EOF.
        proxy.arm();
        conn.write_all(b"world").unwrap();
        let mut got = Vec::new();
        conn.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"wo");
        assert!(!proxy.is_armed(), "fault fired and disarmed");
        drop(proxy);
        let _ = h.join();
    }
}
