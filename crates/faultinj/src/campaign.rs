//! Fault-injection campaigns over criticality maps (paper §IV.C).
//!
//! A campaign repeatedly restores a pruned checkpoint, corrupts a chosen
//! population of elements (uncritical or critical), reruns the
//! application, and tallies whether its verification still passes. The
//! paper's claim holds when uncritical-targeted runs always verify and
//! critical-targeted runs do not.

use crate::corruption::Corruption;
use scrutiny_core::{
    restart::restart_with_mutation, AnalysisReport, FillPolicy, Policy, RestartConfig, ScrutinyApp,
    VarData,
};

/// Which element population to corrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// Elements the AD analysis marked uncritical (expected harmless).
    Uncritical,
    /// Elements the AD analysis marked critical (expected harmful).
    Critical,
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Population to corrupt.
    pub target: Target,
    /// Corruption model.
    pub corruption: Corruption,
    /// Elements corrupted per trial (capped by the population size).
    pub elems_per_trial: usize,
    /// Number of independent trials (different element picks).
    pub trials: usize,
    /// RNG seed for element selection.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            target: Target::Uncritical,
            corruption: Corruption::Poison(1e30),
            elems_per_trial: 16,
            trials: 8,
            seed: 0xFA57,
        }
    }
}

/// Campaign outcome.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Trials whose verification passed.
    pub verified: usize,
    /// Trials whose verification failed.
    pub failed: usize,
    /// Total elements corrupted across all trials.
    pub corrupted_elems: usize,
    /// Largest relative output error observed.
    pub max_rel_err: f64,
}

impl CampaignReport {
    /// Total trials run.
    pub fn trials(&self) -> usize {
        self.verified + self.failed
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Run a fault-injection campaign against `app` using its criticality
/// analysis. Float variables only (integer state is handled by the IS
/// module's liveness machinery).
pub fn run_campaign(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    cfg: &CampaignConfig,
) -> CampaignReport {
    let mut rng = cfg.seed;
    let mut report = CampaignReport::default();
    for _ in 0..cfg.trials {
        let pick = splitmix(&mut rng);
        let restart_cfg = RestartConfig {
            policy: Policy::PrunedValue,
            fill: FillPolicy::Garbage(pick),
            store_dir: None,
        };
        let target = cfg.target;
        let corruption = cfg.corruption;
        let per_trial = cfg.elems_per_trial;
        let mut corrupted = 0usize;
        let result = restart_with_mutation(app, analysis, &restart_cfg, |bufs, analysis| {
            let mut local = pick;
            for (buf, crit) in bufs.iter_mut().zip(&analysis.vars) {
                let candidates: Vec<usize> = match target {
                    Target::Uncritical => crit.value_map.zeros().collect(),
                    Target::Critical => crit.value_map.ones().collect(),
                };
                if candidates.is_empty() {
                    continue;
                }
                let n = per_trial.min(candidates.len());
                for _ in 0..n {
                    let idx = candidates[(splitmix(&mut local) as usize) % candidates.len()];
                    match buf {
                        VarData::F64(v) => {
                            v[idx] = corruption.apply(v[idx]);
                            corrupted += 1;
                        }
                        VarData::C128(v) => {
                            let (re, im) = v[idx];
                            v[idx] = (corruption.apply(re), corruption.apply(im));
                            corrupted += 1;
                        }
                        VarData::I64(_) => {}
                    }
                }
            }
        })
        .expect("in-memory restart cannot fail on I/O");
        report.corrupted_elems += corrupted;
        if result.verified {
            report.verified += 1;
        } else {
            report.failed += 1;
        }
        if result.rel_err > report.max_rel_err {
            report.max_rel_err = result.rel_err;
        }
    }
    report
}

/// Run one campaign per corruption model, holding target, trial count and
/// seed fixed: the cross-product the differential harness sweeps when it
/// checks that a verdict survives *every* corruption shape, not just the
/// default poison.
pub fn campaign_matrix(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    base: &CampaignConfig,
    corruptions: &[Corruption],
) -> Vec<(Corruption, CampaignReport)> {
    corruptions
        .iter()
        .map(|&corruption| {
            let cfg = CampaignConfig {
                corruption,
                ..base.clone()
            };
            (corruption, run_campaign(app, analysis, &cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::scrutinize;
    use scrutiny_core::tiny::Heat1d;

    #[test]
    fn uncritical_campaign_always_verifies() {
        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let cfg = CampaignConfig {
            trials: 6,
            ..Default::default()
        };
        let report = run_campaign(&app, &analysis, &cfg);
        assert_eq!(report.failed, 0, "uncritical corruption must be harmless");
        assert!(report.corrupted_elems > 0);
    }

    #[test]
    fn critical_campaign_always_fails() {
        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let cfg = CampaignConfig {
            target: Target::Critical,
            corruption: Corruption::Poison(1e6),
            trials: 6,
            ..Default::default()
        };
        let report = run_campaign(&app, &analysis, &cfg);
        assert_eq!(report.verified, 0, "critical corruption must be caught");
        assert!(report.max_rel_err > 1.0);
    }

    #[test]
    fn bitflip_campaign_on_uncritical_is_harmless() {
        let app = Heat1d::new(12, 8, 4);
        let analysis = scrutinize(&app).unwrap();
        let cfg = CampaignConfig {
            corruption: Corruption::BitFlip { bit: 62 },
            trials: 4,
            ..Default::default()
        };
        let report = run_campaign(&app, &analysis, &cfg);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn campaign_matrix_sweeps_every_corruption_model() {
        let app = Heat1d::new(12, 8, 4);
        let analysis = scrutinize(&app).unwrap();
        let base = CampaignConfig {
            trials: 2,
            ..Default::default()
        };
        let models = [
            Corruption::Zero,
            Corruption::BitFlip { bit: 63 },
            Corruption::Poison(1e30),
            Corruption::Scale(3.0),
            Corruption::Offset(-7.5),
        ];
        let results = campaign_matrix(&app, &analysis, &base, &models);
        assert_eq!(results.len(), models.len());
        for (model, report) in &results {
            assert_eq!(report.failed, 0, "{model:?} on uncritical elements");
            assert_eq!(report.trials(), 2);
        }
    }
}
