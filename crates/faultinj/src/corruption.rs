//! Corruption models applied to restored checkpoint state.

/// How a targeted element's value is damaged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Corruption {
    /// Set to zero (lost write).
    Zero,
    /// Flip one bit of the IEEE-754 representation.
    BitFlip {
        /// Bit index, 0 (LSB of mantissa) ..= 63 (sign).
        bit: u8,
    },
    /// Replace with a fixed poison value.
    Poison(f64),
    /// Multiply by a factor (soft error with magnitude drift).
    Scale(f64),
    /// Add a delta.
    Offset(f64),
}

impl Corruption {
    /// Apply the model to one value.
    pub fn apply(self, v: f64) -> f64 {
        match self {
            Corruption::Zero => 0.0,
            Corruption::BitFlip { bit } => {
                assert!(bit < 64, "bit index out of range");
                f64::from_bits(v.to_bits() ^ (1u64 << bit))
            }
            Corruption::Poison(p) => p,
            Corruption::Scale(s) => v * s,
            Corruption::Offset(d) => v + d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_poison() {
        assert_eq!(Corruption::Zero.apply(3.25), 0.0);
        assert_eq!(Corruption::Poison(9.0).apply(3.25), 9.0);
    }

    #[test]
    fn bitflip_is_involutive() {
        let c = Corruption::BitFlip { bit: 52 };
        let v = 1.5e-3;
        assert_ne!(c.apply(v), v);
        assert_eq!(c.apply(c.apply(v)), v);
    }

    #[test]
    fn sign_bit_flip_negates() {
        let c = Corruption::BitFlip { bit: 63 };
        assert_eq!(c.apply(2.0), -2.0);
    }

    #[test]
    fn scale_offset() {
        assert_eq!(Corruption::Scale(2.0).apply(3.0), 6.0);
        assert_eq!(Corruption::Offset(-1.0).apply(3.0), 2.0);
    }
}
