//! Storage-level fault injection: damage checkpoint *objects* (files,
//! backend entries), not restored in-memory values.
//!
//! [`crate::campaign`] corrupts restored element values to falsify the
//! criticality maps; this module corrupts the checkpoint bytes
//! *at rest* — the failure mode the recovery pipeline
//! ([`scrutiny_engine::RecoveryManager`]) exists for. A scenario picks
//! the structurally interesting object of a version (a shard, a delta
//! link's base, the commit marker) and damages it through the
//! [`StorageBackend`] interface, so the same campaigns run against a
//! directory store, an in-memory backend, or a striped stripe.
//!
//! Every scenario must end, per §IV.C economics, in a *successful*
//! recovery to an older verified version — asserted end to end by
//! `tests/recovery_faultinj.rs` and the NPB wiring in
//! `scrutiny-npb::pipeline::burn_in_recover`.

use scrutiny_ckpt::names::{self, CkptName};
use scrutiny_ckpt::{delta, CkptError};
use scrutiny_engine::StorageBackend;

/// How one stored object is damaged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// Drop the last `bytes` bytes (an interrupted or torn write that
    /// somehow became visible — e.g. a storage tier without atomic
    /// publication).
    TruncateTail {
        /// Bytes removed from the end (clamped to the object size).
        bytes: usize,
    },
    /// XOR one byte with 0xFF (media bit rot; `offset` is clamped into
    /// the object).
    FlipByte {
        /// Byte offset to damage.
        offset: usize,
    },
    /// Remove the object entirely (lost or evicted).
    Delete,
}

impl StorageFault {
    /// Apply this fault to `name` in `backend`. Damaging a missing
    /// object is an error — a silent no-op would let a campaign claim
    /// coverage it never exercised.
    pub fn apply(&self, backend: &dyn StorageBackend, name: &str) -> Result<(), CkptError> {
        match *self {
            StorageFault::TruncateTail { bytes } => {
                let mut obj = backend.get(name)?;
                obj.truncate(obj.len().saturating_sub(bytes));
                backend.put(name, &obj)
            }
            StorageFault::FlipByte { offset } => {
                let mut obj = backend.get(name)?;
                if obj.is_empty() {
                    return Err(CkptError::InvalidConfig(format!(
                        "cannot flip a byte of empty object {name:?}"
                    )));
                }
                let at = offset.min(obj.len() - 1);
                obj[at] ^= 0xFF;
                backend.put(name, &obj)
            }
            StorageFault::Delete => {
                // Probe first: delete is idempotent by contract, and a
                // campaign must not "delete" something that never existed.
                backend.get(name)?;
                backend.delete(name)
            }
        }
    }
}

/// A named corruption scenario against one checkpoint version — the
/// recovery test matrix. Each picks the structurally interesting object
/// itself, so campaigns stay layout-aware without hand-written paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageScenario {
    /// Truncate the version's first data shard (sharded layout): the
    /// manifest's per-shard length/CRC must pin it.
    TruncatedShard,
    /// Flip a payload byte in the version's commit-marker object (data,
    /// shard, or delta file): the envelope CRC must catch it.
    FlippedPayloadByte,
    /// Delete the full base image a delta version's chain anchors on:
    /// every version of that chain must become unrecoverable, and
    /// recovery must fall past the whole chain.
    DeletedDeltaBase,
    /// Delete the version's commit marker(s) while leaving its other
    /// artifacts: the version must read as uncommitted, named in the
    /// recovery report, never as a half-alive checkpoint.
    MissingCommitMarker,
    /// Flip a byte inside the *compressed payload* of a version's
    /// `SCRUTCZB` container object (data, delta, or first shard): the
    /// container's trailer CRC — computed over the **stored** bytes —
    /// must reject it with a typed checksum error before the codec ever
    /// runs, and recovery must fall back. Requires a version written
    /// with at-rest compression enabled; a version with no compressed
    /// object is [`CkptError::InvalidConfig`].
    FlippedCompressedByte,
}

/// The objects of `version` present in `listing`, as
/// `(data, manifest, first_shard, delta)` names.
struct VersionObjects {
    data: Option<String>,
    manifest: Option<String>,
    shard0: Option<String>,
    delta: Option<String>,
}

fn objects_of(backend: &dyn StorageBackend, version: u64) -> Result<VersionObjects, CkptError> {
    let mut o = VersionObjects {
        data: None,
        manifest: None,
        shard0: None,
        delta: None,
    };
    for name in backend.list()? {
        match names::classify(&name) {
            CkptName::Data(v) if v == version => o.data = Some(name),
            CkptName::Manifest(v) if v == version => o.manifest = Some(name),
            CkptName::Shard { version: v, shard } if v == version && shard == 0 => {
                o.shard0 = Some(name)
            }
            CkptName::Delta(v) if v == version => o.delta = Some(name),
            _ => {}
        }
    }
    Ok(o)
}

impl StorageScenario {
    /// The scenario's stable lower-snake name, as it appears in the
    /// `faultinj.inject` observability events.
    pub fn name(&self) -> &'static str {
        match self {
            StorageScenario::TruncatedShard => "truncated_shard",
            StorageScenario::FlippedPayloadByte => "flipped_payload_byte",
            StorageScenario::DeletedDeltaBase => "deleted_delta_base",
            StorageScenario::MissingCommitMarker => "missing_commit_marker",
            StorageScenario::FlippedCompressedByte => "flipped_compressed_byte",
        }
    }

    /// [`StorageScenario::inject`], reporting the injection into a
    /// [`Recorder`](scrutiny_obs::Recorder): a `faultinj.inject` event
    /// names the scenario, the
    /// target version, and the damaged object (or the typed error), so
    /// a recovery log read end-to-end shows *why* versions started
    /// failing verification — the injection is part of the experiment's
    /// record, not an invisible hand.
    pub fn inject_obs(
        &self,
        backend: &dyn StorageBackend,
        version: u64,
        rec: &scrutiny_obs::Recorder,
    ) -> Result<String, CkptError> {
        let result = self.inject(backend, version);
        match &result {
            Ok(object) => rec.event(
                "faultinj.inject",
                &[
                    ("scenario", self.name().into()),
                    ("version", version.into()),
                    ("object", object.as_str().into()),
                ],
            ),
            Err(e) => rec.event(
                "faultinj.inject",
                &[
                    ("scenario", self.name().into()),
                    ("version", version.into()),
                    ("error", e.to_string().into()),
                ],
            ),
        }
        result
    }

    /// Inject this scenario against checkpoint `version` in `backend`;
    /// returns the name of the (primary) damaged object. Asking for a
    /// scenario the version's layout cannot express (e.g. a truncated
    /// shard of a monolithic checkpoint) is
    /// [`CkptError::InvalidConfig`] — campaigns must fail loudly rather
    /// than silently test nothing.
    pub fn inject(&self, backend: &dyn StorageBackend, version: u64) -> Result<String, CkptError> {
        let objects = objects_of(backend, version)?;
        match self {
            StorageScenario::TruncatedShard => {
                let name = objects.shard0.ok_or_else(|| {
                    CkptError::InvalidConfig(format!(
                        "version {version} has no data shards to truncate"
                    ))
                })?;
                // An odd cut: breaks both the shard length and its CRC.
                StorageFault::TruncateTail { bytes: 7 }.apply(backend, &name)?;
                Ok(name)
            }
            StorageScenario::FlippedPayloadByte => {
                let name = objects
                    .data
                    .or(objects.delta)
                    .or(objects.shard0)
                    .ok_or_else(|| {
                        CkptError::InvalidConfig(format!(
                            "version {version} has no payload object to damage"
                        ))
                    })?;
                let len = backend.get(&name)?.len();
                // Past every header, inside the element payload.
                StorageFault::FlipByte { offset: len / 2 }.apply(backend, &name)?;
                Ok(name)
            }
            StorageScenario::DeletedDeltaBase => {
                if objects.delta.is_none() || objects.data.is_some() || objects.manifest.is_some() {
                    return Err(CkptError::InvalidConfig(format!(
                        "version {version} is not a delta checkpoint"
                    )));
                }
                // Walk parent pointers to the chain's anchoring full image.
                let mut v = version;
                loop {
                    let d = backend.get(&names::delta(v))?;
                    let parent = delta::parent_version(&d)?;
                    let po = objects_of(backend, parent)?;
                    if po.data.is_some() || po.manifest.is_some() {
                        let name = po.data.unwrap_or_else(|| po.manifest.unwrap());
                        StorageFault::Delete.apply(backend, &name)?;
                        return Ok(name);
                    }
                    if po.delta.is_none() || parent >= v {
                        return Err(CkptError::Corrupt(format!(
                            "chain from {version} never reaches a full base"
                        )));
                    }
                    v = parent;
                }
            }
            StorageScenario::FlippedCompressedByte => {
                // Among the version's payload objects, find one stored as
                // an SCRUTCZB container and damage its compressed payload
                // (past the container header, before the CRC trailer).
                for name in [objects.data, objects.delta, objects.shard0]
                    .into_iter()
                    .flatten()
                {
                    let obj = backend.get(&name)?;
                    if !scrutiny_ckpt::compress::is_container(&obj) {
                        continue;
                    }
                    // Header is 25 bytes, trailer CRC 4; flip in between.
                    let lo = 25.min(obj.len() - 1);
                    let hi = obj.len().saturating_sub(4).max(lo + 1);
                    StorageFault::FlipByte {
                        offset: lo + (hi - lo) / 2,
                    }
                    .apply(backend, &name)?;
                    return Ok(name);
                }
                Err(CkptError::InvalidConfig(format!(
                    "version {version} has no compressed (SCRUTCZB) object \
                     to damage — was it written with at-rest compression?"
                )))
            }
            StorageScenario::MissingCommitMarker => {
                let markers: Vec<String> = [objects.data, objects.manifest, objects.delta]
                    .into_iter()
                    .flatten()
                    .collect();
                let first = markers.first().cloned().ok_or_else(|| {
                    CkptError::InvalidConfig(format!("version {version} has no commit marker"))
                })?;
                for m in &markers {
                    StorageFault::Delete.apply(backend, m)?;
                }
                Ok(first)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_engine::MemBackend;

    #[test]
    fn faults_mutate_objects_as_described() {
        let b = MemBackend::new();
        b.put("x", &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        StorageFault::TruncateTail { bytes: 3 }
            .apply(&b, "x")
            .unwrap();
        assert_eq!(b.get("x").unwrap(), [1, 2, 3, 4, 5]);
        StorageFault::FlipByte { offset: 0 }.apply(&b, "x").unwrap();
        assert_eq!(b.get("x").unwrap(), [254, 2, 3, 4, 5]);
        StorageFault::Delete.apply(&b, "x").unwrap();
        assert!(b.get("x").is_err());
        // Faulting a missing object is an error, not a no-op.
        assert!(StorageFault::Delete.apply(&b, "x").is_err());
        assert!(StorageFault::FlipByte { offset: 0 }
            .apply(&b, "gone")
            .is_err());
    }

    #[test]
    fn scenarios_reject_incompatible_layouts() {
        let b = MemBackend::new();
        b.put(&names::data(3), &[0u8; 64]).unwrap();
        b.put(&names::aux(3), &[0u8; 16]).unwrap();
        // Monolithic version: no shard to truncate, not a delta.
        assert!(matches!(
            StorageScenario::TruncatedShard.inject(&b, 3),
            Err(CkptError::InvalidConfig(_))
        ));
        assert!(matches!(
            StorageScenario::DeletedDeltaBase.inject(&b, 3),
            Err(CkptError::InvalidConfig(_))
        ));
        // And a version with no artifacts at all.
        assert!(StorageScenario::FlippedPayloadByte.inject(&b, 9).is_err());
        assert!(StorageScenario::MissingCommitMarker.inject(&b, 9).is_err());
    }

    #[test]
    fn flipped_compressed_byte_damages_the_container_payload() {
        use scrutiny_ckpt::compress::{compress, decompress, AtRest};
        let b = MemBackend::new();
        // A raw-only version cannot express the scenario.
        b.put(&names::data(1), &[7u8; 128]).unwrap();
        assert!(matches!(
            StorageScenario::FlippedCompressedByte.inject(&b, 1),
            Err(CkptError::InvalidConfig(_))
        ));
        // A compressed version can — and the damage is a typed checksum
        // rejection, not garbage decode output.
        let stored = compress(&[42u8; 4096], AtRest::Rle);
        b.put(&names::data(2), &stored).unwrap();
        let damaged = StorageScenario::FlippedCompressedByte
            .inject(&b, 2)
            .unwrap();
        assert_eq!(damaged, names::data(2));
        let obj = b.get(&names::data(2)).unwrap();
        assert_ne!(obj, stored, "the object must actually change");
        assert!(matches!(
            decompress(&obj),
            Err(CkptError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn missing_commit_marker_removes_marker_but_keeps_artifacts() {
        let b = MemBackend::new();
        b.put(&names::data(1), &[0u8; 64]).unwrap();
        b.put(&names::aux(1), &[0u8; 16]).unwrap();
        let damaged = StorageScenario::MissingCommitMarker.inject(&b, 1).unwrap();
        assert_eq!(damaged, names::data(1));
        assert!(b.get(&names::data(1)).is_err());
        assert!(b.get(&names::aux(1)).is_ok(), "aux must survive");
    }
}
