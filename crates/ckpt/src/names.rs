//! Canonical checkpoint object/file names.
//!
//! One grammar, used everywhere a checkpoint is named: the on-disk store
//! ([`crate::CheckpointStore`]), the reader's sharded-layout acceptance,
//! and the async engine's storage backends. Keeping it in one place means
//! a format change (padding width, a new suffix) cannot desynchronize the
//! writers from the sweepers.
//!
//! * `ckpt_vvvvvv.data` — monolithic data file (commit marker).
//! * `ckpt_vvvvvv.aux` — auxiliary region file.
//! * `ckpt_vvvvvv.data.sNNN` — one data shard (sharded layout).
//! * `ckpt_vvvvvv.smf` — shard manifest (sharded layout's commit marker).
//! * `ckpt_vvvvvv.delta` — dirty pages against a parent checkpoint (the
//!   delta layout's commit marker; see [`crate::delta`]).
//! * `*.tmp` — an in-progress atomic write; never a published object.

/// Monolithic data object/file name for `version`.
pub fn data(version: u64) -> String {
    format!("ckpt_{version:06}.data")
}

/// Auxiliary (region table) object/file name for `version`.
pub fn aux(version: u64) -> String {
    format!("ckpt_{version:06}.aux")
}

/// Shard-manifest object/file name for `version`.
pub fn manifest(version: u64) -> String {
    format!("ckpt_{version:06}.smf")
}

/// Data-shard object/file name for `version`, shard index `shard`.
pub fn shard(version: u64, shard: usize) -> String {
    format!("ckpt_{version:06}.data.s{shard:03}")
}

/// Delta object/file name for `version` (base+delta layout).
pub fn delta(version: u64) -> String {
    format!("ckpt_{version:06}.delta")
}

/// What a checkpoint object/file name denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CkptName {
    /// `ckpt_v.data` — monolithic data file.
    Data(u64),
    /// `ckpt_v.aux` — auxiliary region file.
    Aux(u64),
    /// `ckpt_v.smf` — shard manifest.
    Manifest(u64),
    /// `ckpt_v.data.sNNN` — one data shard.
    Shard {
        /// Checkpoint version the shard belongs to.
        version: u64,
        /// Zero-based shard index.
        shard: usize,
    },
    /// `ckpt_v.delta` — dirty pages against a parent checkpoint.
    Delta(u64),
    /// `*.tmp` — an interrupted atomic write.
    Tmp,
    /// Not a checkpoint name.
    Other,
}

/// Parse a name against the grammar above.
pub fn classify(name: &str) -> CkptName {
    if name.ends_with(".tmp") {
        return CkptName::Tmp;
    }
    let Some(rest) = name.strip_prefix("ckpt_") else {
        return CkptName::Other;
    };
    let Some((num, suffix)) = rest.split_once('.') else {
        return CkptName::Other;
    };
    let Ok(version) = num.parse::<u64>() else {
        return CkptName::Other;
    };
    match suffix {
        "data" => CkptName::Data(version),
        "smf" => CkptName::Manifest(version),
        "aux" => CkptName::Aux(version),
        "delta" => CkptName::Delta(version),
        s => match s.strip_prefix("data.s").map(str::parse::<usize>) {
            Some(Ok(shard)) => CkptName::Shard { version, shard },
            _ => CkptName::Other,
        },
    }
}

/// The version a name *commits*: a monolithic data file, a shard
/// manifest, or a delta file. Aux files and bare shards do not make a
/// checkpoint visible.
pub fn committed_version(name: &str) -> Option<u64> {
    match classify(name) {
        CkptName::Data(v) | CkptName::Manifest(v) | CkptName::Delta(v) => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_roundtrips() {
        assert_eq!(classify(&data(3)), CkptName::Data(3));
        assert_eq!(classify(&aux(3)), CkptName::Aux(3));
        assert_eq!(classify(&manifest(4)), CkptName::Manifest(4));
        assert_eq!(
            classify(&shard(4, 17)),
            CkptName::Shard {
                version: 4,
                shard: 17
            }
        );
        assert_eq!(classify(&delta(6)), CkptName::Delta(6));
        assert_eq!(classify("ckpt_000004.data.tmp"), CkptName::Tmp);
        assert_eq!(classify("ckpt_000004.delta.tmp"), CkptName::Tmp);
        assert_eq!(classify("notes.txt"), CkptName::Other);
        assert_eq!(classify("ckpt_abc.data"), CkptName::Other);
        assert_eq!(classify("ckpt_000004.data.sx"), CkptName::Other);
    }

    #[test]
    fn committed_versions() {
        assert_eq!(committed_version(&data(9)), Some(9));
        assert_eq!(committed_version(&manifest(9)), Some(9));
        assert_eq!(committed_version(&delta(9)), Some(9));
        assert_eq!(committed_version(&aux(9)), None);
        assert_eq!(committed_version(&shard(9, 0)), None);
        assert_eq!(committed_version("junk"), None);
    }
}
