//! Canonical checkpoint object/file names.
//!
//! One grammar, used everywhere a checkpoint is named: the on-disk store
//! ([`crate::CheckpointStore`]), the reader's sharded-layout acceptance,
//! and the async engine's storage backends. Keeping it in one place means
//! a format change (padding width, a new suffix) cannot desynchronize the
//! writers from the sweepers.
//!
//! * `ckpt_vvvvvv.data` — monolithic data file (commit marker).
//! * `ckpt_vvvvvv.aux` — auxiliary region file.
//! * `ckpt_vvvvvv.data.sNNN` — one data shard (sharded layout).
//! * `ckpt_vvvvvv.smf` — shard manifest (sharded layout's commit marker).
//! * `ckpt_vvvvvv.delta` — dirty pages against a parent checkpoint (the
//!   delta layout's commit marker; see [`crate::delta`]).
//! * `*.tmp` — an in-progress atomic write; never a published object.
//!
//! # Tenant namespaces
//!
//! One storage pool can hold many independent version chains by
//! prefixing every object name with a tenant id and a `/`:
//! `<tenant>/ckpt_vvvvvv.data`. Tenant ids are validated by [`Tenant`]
//! (lowercase `[a-z0-9_]`, starting with a letter, at most
//! [`TENANT_MAX_LEN`] bytes — deliberately a single segment of the obs
//! naming scheme, so a tenant id can appear verbatim in per-tenant
//! metric names). The un-prefixed grammar is the **default tenant**:
//! [`classify`] parses only un-prefixed names and returns
//! [`CkptName::Foreign`] for anything containing a `/`, so every
//! existing sweep, prune, and recovery scan ignores namespaced objects
//! rather than mistaking `t1/x.tmp` for its own debris. Tenant-scoped
//! tooling uses [`split_tenant`] / [`classify_scoped`], or simply runs
//! the un-prefixed grammar over a namespaced view of the pool (see
//! `scrutiny-engine`'s `NamespacedBackend`).

use crate::format::CkptError;
use std::fmt;

/// Maximum length of a tenant id, in bytes.
pub const TENANT_MAX_LEN: usize = 32;

/// Whether `id` is a well-formed tenant id: non-empty, at most
/// [`TENANT_MAX_LEN`] bytes of `[a-z0-9_]`, starting with a lowercase
/// letter, and therefore also a valid segment of an obs metric name.
pub fn valid_tenant_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= TENANT_MAX_LEN
        && id.starts_with(|c: char| c.is_ascii_lowercase())
        && id
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// A validated tenant namespace id.
///
/// Constructing one proves the id fits the grammar above, so everything
/// downstream (name prefixing, per-tenant obs metric names, daemon
/// session state) can use it without re-checking.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tenant(String);

impl Tenant {
    /// Validate `id` as a tenant id.
    pub fn new(id: &str) -> Result<Tenant, CkptError> {
        if valid_tenant_id(id) {
            Ok(Tenant(id.to_string()))
        } else {
            Err(CkptError::InvalidConfig(format!(
                "invalid tenant id {id:?}: want 1..={TENANT_MAX_LEN} bytes of \
                 [a-z0-9_] starting with a letter"
            )))
        }
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Prefix an (un-prefixed, default-grammar) object name into this
    /// tenant's namespace: `scoped("ckpt_000001.data")` →
    /// `"t1/ckpt_000001.data"`.
    pub fn scoped(&self, name: &str) -> String {
        format!("{}/{name}", self.0)
    }
}

impl fmt::Display for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for Tenant {
    type Err = CkptError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Tenant::new(s)
    }
}

/// Split a pool-level name into `(tenant, local)`: `"t1/x"` →
/// `(Some("t1"), "x")`, `"x"` → `(None, "x")`. The tenant part is *not*
/// validated — callers deciding trust (e.g. a daemon) should pass it
/// through [`Tenant::new`].
pub fn split_tenant(name: &str) -> (Option<&str>, &str) {
    match name.split_once('/') {
        Some((tenant, local)) => (Some(tenant), local),
        None => (None, name),
    }
}

/// Classify a pool-level name in whatever namespace it lives in:
/// `(tenant, classification of the tenant-local name)`. A doubly-nested
/// name (`a/b/x`) classifies as [`CkptName::Foreign`] within `a` — one
/// level of namespacing, per the grammar.
pub fn classify_scoped(name: &str) -> (Option<&str>, CkptName) {
    let (tenant, local) = split_tenant(name);
    (tenant, classify(local))
}

/// Monolithic data object/file name for `version`.
pub fn data(version: u64) -> String {
    format!("ckpt_{version:06}.data")
}

/// Auxiliary (region table) object/file name for `version`.
pub fn aux(version: u64) -> String {
    format!("ckpt_{version:06}.aux")
}

/// Shard-manifest object/file name for `version`.
pub fn manifest(version: u64) -> String {
    format!("ckpt_{version:06}.smf")
}

/// Data-shard object/file name for `version`, shard index `shard`.
pub fn shard(version: u64, shard: usize) -> String {
    format!("ckpt_{version:06}.data.s{shard:03}")
}

/// Delta object/file name for `version` (base+delta layout).
pub fn delta(version: u64) -> String {
    format!("ckpt_{version:06}.delta")
}

/// What a checkpoint object/file name denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CkptName {
    /// `ckpt_v.data` — monolithic data file.
    Data(u64),
    /// `ckpt_v.aux` — auxiliary region file.
    Aux(u64),
    /// `ckpt_v.smf` — shard manifest.
    Manifest(u64),
    /// `ckpt_v.data.sNNN` — one data shard.
    Shard {
        /// Checkpoint version the shard belongs to.
        version: u64,
        /// Zero-based shard index.
        shard: usize,
    },
    /// `ckpt_v.delta` — dirty pages against a parent checkpoint.
    Delta(u64),
    /// `*.tmp` — an interrupted atomic write.
    Tmp,
    /// `<tenant>/...` — an object inside some tenant's namespace,
    /// opaque at this scope. Checked **before** every other rule (in
    /// particular `.tmp`), so a default-tenant sweep can never mistake
    /// another tenant's debris — or anything else of theirs — for its
    /// own.
    Foreign,
    /// Not a checkpoint name.
    Other,
}

/// Parse a name against the grammar above, at default-tenant scope:
/// any name containing `/` is [`CkptName::Foreign`]. To classify inside
/// a namespace, use [`classify_scoped`].
pub fn classify(name: &str) -> CkptName {
    if name.contains('/') {
        return CkptName::Foreign;
    }
    if name.ends_with(".tmp") {
        return CkptName::Tmp;
    }
    let Some(rest) = name.strip_prefix("ckpt_") else {
        return CkptName::Other;
    };
    let Some((num, suffix)) = rest.split_once('.') else {
        return CkptName::Other;
    };
    let Ok(version) = num.parse::<u64>() else {
        return CkptName::Other;
    };
    match suffix {
        "data" => CkptName::Data(version),
        "smf" => CkptName::Manifest(version),
        "aux" => CkptName::Aux(version),
        "delta" => CkptName::Delta(version),
        s => match s.strip_prefix("data.s").map(str::parse::<usize>) {
            Some(Ok(shard)) => CkptName::Shard { version, shard },
            _ => CkptName::Other,
        },
    }
}

/// The version a name *commits*: a monolithic data file, a shard
/// manifest, or a delta file. Aux files and bare shards do not make a
/// checkpoint visible.
pub fn committed_version(name: &str) -> Option<u64> {
    match classify(name) {
        CkptName::Data(v) | CkptName::Manifest(v) | CkptName::Delta(v) => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_roundtrips() {
        assert_eq!(classify(&data(3)), CkptName::Data(3));
        assert_eq!(classify(&aux(3)), CkptName::Aux(3));
        assert_eq!(classify(&manifest(4)), CkptName::Manifest(4));
        assert_eq!(
            classify(&shard(4, 17)),
            CkptName::Shard {
                version: 4,
                shard: 17
            }
        );
        assert_eq!(classify(&delta(6)), CkptName::Delta(6));
        assert_eq!(classify("ckpt_000004.data.tmp"), CkptName::Tmp);
        assert_eq!(classify("ckpt_000004.delta.tmp"), CkptName::Tmp);
        assert_eq!(classify("notes.txt"), CkptName::Other);
        assert_eq!(classify("ckpt_abc.data"), CkptName::Other);
        assert_eq!(classify("ckpt_000004.data.sx"), CkptName::Other);
    }

    #[test]
    fn tenant_names_are_foreign_at_default_scope() {
        let t = Tenant::new("t1").unwrap();
        // Everything namespaced — *including tenant debris* — is opaque
        // to the default tenant; a root sweep must never delete
        // `t1/....tmp`.
        assert_eq!(classify(&t.scoped(&data(3))), CkptName::Foreign);
        assert_eq!(classify("t1/ckpt_000004.data.tmp"), CkptName::Foreign);
        assert_eq!(committed_version(&t.scoped(&data(3))), None);
        // Scoped classification sees through the prefix.
        assert_eq!(
            classify_scoped(&t.scoped(&manifest(7))),
            (Some("t1"), CkptName::Manifest(7))
        );
        assert_eq!(classify_scoped(&aux(2)), (None, CkptName::Aux(2)));
        // One level of namespacing only.
        assert_eq!(
            classify_scoped("a/b/ckpt_000001.data"),
            (Some("a"), CkptName::Foreign)
        );
        assert_eq!(split_tenant("t1/x"), (Some("t1"), "x"));
        assert_eq!(split_tenant("x"), (None, "x"));
    }

    #[test]
    fn tenant_validation() {
        for ok in ["a", "tenant_1", "x0_y", &"a".repeat(TENANT_MAX_LEN)] {
            assert!(Tenant::new(ok).is_ok(), "{ok:?} should validate");
        }
        for bad in [
            "",
            "Tenant",
            "1abc",
            "_x",
            "a-b",
            "a.b",
            "a/b",
            &"a".repeat(TENANT_MAX_LEN + 1),
        ] {
            assert!(
                matches!(Tenant::new(bad), Err(CkptError::InvalidConfig(_))),
                "{bad:?} should be rejected"
            );
        }
        let t: Tenant = "npb_cg".parse().unwrap();
        assert_eq!(t.as_str(), "npb_cg");
        assert_eq!(t.to_string(), "npb_cg");
        assert_eq!(t.scoped("ckpt_000001.aux"), "npb_cg/ckpt_000001.aux");
    }

    #[test]
    fn committed_versions() {
        assert_eq!(committed_version(&data(9)), Some(9));
        assert_eq!(committed_version(&manifest(9)), Some(9));
        assert_eq!(committed_version(&delta(9)), Some(9));
        assert_eq!(committed_version(&aux(9)), None);
        assert_eq!(committed_version(&shard(9, 0)), None);
        assert_eq!(committed_version("junk"), None);
    }
}
