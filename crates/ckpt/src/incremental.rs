//! Page-granularity incremental checkpointing baseline.
//!
//! The paper's related work cites dirty-page incremental checkpointing
//! (Vasavada et al.): after the first full checkpoint, only pages whose
//! contents changed are written. This module implements that scheme over
//! variable payloads so the evaluation can compare three storage policies:
//! full, AD-pruned (the paper), and page-incremental (orthogonal: it saves
//! on *temporal* redundancy while AD pruning saves on *semantic*
//! redundancy — they compose).

use crate::format::VarData;

/// Default page size (bytes), matching a typical OS page.
pub const PAGE_BYTES: usize = 4096;

/// FNV-1a over a page — cheap, good enough to detect change (a real system
/// would trap writes via `mprotect`; hashing simulates that bookkeeping).
fn page_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn payload_bytes(data: &VarData) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.full_bytes());
    match data {
        VarData::F64(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        VarData::C128(v) => {
            for (re, im) in v {
                out.extend_from_slice(&re.to_le_bytes());
                out.extend_from_slice(&im.to_le_bytes());
            }
        }
        VarData::I64(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    out
}

/// Storage cost of one incremental step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Pages written this step.
    pub dirty_pages: usize,
    /// Total pages tracked.
    pub total_pages: usize,
    /// Bytes written this step (dirty pages + page index).
    pub bytes_written: usize,
}

/// Tracks page hashes across checkpoint epochs for one application.
#[derive(Default)]
pub struct IncrementalTracker {
    /// Per variable: page hashes from the previous checkpoint.
    prev: Vec<(String, Vec<u64>)>,
    page_bytes: usize,
}

impl IncrementalTracker {
    /// New tracker with the default page size.
    pub fn new() -> Self {
        Self::with_page_size(PAGE_BYTES)
    }

    /// New tracker with a custom page size (must be non-zero).
    pub fn with_page_size(page_bytes: usize) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        IncrementalTracker {
            prev: Vec::new(),
            page_bytes,
        }
    }

    /// Record a checkpoint epoch: returns how much an incremental scheme
    /// would write for `vars` given the previously seen contents.
    pub fn step(&mut self, vars: &[(String, VarData)]) -> IncrementalReport {
        let mut report = IncrementalReport::default();
        let mut next: Vec<(String, Vec<u64>)> = Vec::with_capacity(vars.len());
        for (name, data) in vars {
            let bytes = payload_bytes(data);
            let hashes: Vec<u64> = bytes.chunks(self.page_bytes).map(page_hash).collect();
            let prev = self
                .prev
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.as_slice())
                .unwrap_or(&[]);
            for (i, chunk) in bytes.chunks(self.page_bytes).enumerate() {
                report.total_pages += 1;
                let changed = prev.get(i).map_or(true, |&h| h != hashes[i]);
                if changed {
                    report.dirty_pages += 1;
                    report.bytes_written += chunk.len();
                }
            }
            // Page index: one u64 page id per dirty page.
            next.push((name.clone(), hashes));
        }
        report.bytes_written += report.dirty_pages * 8;
        self.prev = next;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_var(name: &str, vals: Vec<f64>) -> (String, VarData) {
        (name.to_string(), VarData::F64(vals))
    }

    #[test]
    fn first_epoch_writes_everything() {
        let mut t = IncrementalTracker::with_page_size(64);
        let vars = vec![f64_var("u", vec![1.0; 32])]; // 256 bytes = 4 pages
        let r = t.step(&vars);
        assert_eq!(r.total_pages, 4);
        assert_eq!(r.dirty_pages, 4);
        assert_eq!(r.bytes_written, 256 + 4 * 8);
    }

    #[test]
    fn unchanged_epoch_writes_nothing() {
        let mut t = IncrementalTracker::with_page_size(64);
        let vars = vec![f64_var("u", vec![1.0; 32])];
        t.step(&vars);
        let r = t.step(&vars);
        assert_eq!(r.dirty_pages, 0);
        assert_eq!(r.bytes_written, 0);
    }

    #[test]
    fn localized_write_dirties_one_page() {
        let mut t = IncrementalTracker::with_page_size(64);
        let mut vals = vec![1.0f64; 32];
        t.step(&[f64_var("u", vals.clone())]);
        vals[0] = 2.0; // first page only
        let r = t.step(&[f64_var("u", vals)]);
        assert_eq!(r.dirty_pages, 1);
        assert_eq!(r.bytes_written, 64 + 8);
    }

    #[test]
    fn growing_variable_is_handled() {
        let mut t = IncrementalTracker::with_page_size(64);
        t.step(&[f64_var("u", vec![1.0; 8])]);
        let r = t.step(&[f64_var("u", vec![1.0; 32])]);
        // First page unchanged, three new pages dirty.
        assert_eq!(r.total_pages, 4);
        assert_eq!(r.dirty_pages, 3);
    }

    #[test]
    fn complex_and_int_payloads_hash() {
        let mut t = IncrementalTracker::with_page_size(32);
        let vars = vec![
            ("y".to_string(), VarData::C128(vec![(1.0, 2.0); 4])),
            ("k".to_string(), VarData::I64(vec![7; 4])),
        ];
        let r1 = t.step(&vars);
        assert!(r1.dirty_pages > 0);
        let r2 = t.step(&vars);
        assert_eq!(r2.dirty_pages, 0);
    }
}
