//! Page-granularity incremental checkpointing baseline (accounting).
//!
//! The paper's related work cites dirty-page incremental checkpointing
//! (Vasavada et al.): after the first full checkpoint, only pages whose
//! contents changed are written. This module implements that scheme's
//! *bookkeeping* over variable payloads so the evaluation can compare
//! three storage policies: full, AD-pruned (the paper), and
//! page-incremental (orthogonal: it saves on *temporal* redundancy while
//! AD pruning saves on *semantic* redundancy — they compose). The actual
//! base+delta on-disk format that composes the two lives in
//! [`crate::delta`].

use crate::format::{CkptError, VarData};
use crate::writer::write_elements;
use std::collections::HashMap;

/// Default page size (bytes), matching a typical OS page.
pub const PAGE_BYTES: usize = 4096;

/// FNV-1a over a page — cheap, good enough to detect change (a real system
/// would trap writes via `mprotect`; hashing simulates that bookkeeping).
fn page_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Stream `data`'s serialized payload (the writer's own wire encoding,
/// via [`write_elements`]) through `visit`, one page at a time, without
/// ever materializing the whole payload: elements are serialized in
/// page-sized batches into a small reusable buffer and full pages are
/// emitted as they fill. The final page may be shorter than `page_bytes`.
fn for_each_page(data: &VarData, page_bytes: usize, mut visit: impl FnMut(usize, &[u8])) {
    let total = data.len() as u64;
    let elem_bytes = data.dtype().elem_bytes() as u64;
    let batch = (page_bytes as u64 / elem_bytes).max(1);
    let mut buf: Vec<u8> = Vec::with_capacity(page_bytes + elem_bytes as usize);
    let mut page = 0usize;
    let mut i = 0u64;
    while i < total {
        let hi = (i + batch).min(total);
        write_elements(&mut buf, data, i..hi);
        i = hi;
        while buf.len() >= page_bytes {
            visit(page, &buf[..page_bytes]);
            page += 1;
            buf.drain(..page_bytes);
        }
    }
    if !buf.is_empty() {
        visit(page, &buf);
    }
}

/// Storage cost of one incremental step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Pages written this step.
    pub dirty_pages: usize,
    /// Total pages tracked.
    pub total_pages: usize,
    /// Bytes written this step (dirty pages + page index).
    pub bytes_written: usize,
}

/// Tracks page hashes across checkpoint epochs for one application.
#[derive(Debug, Default)]
pub struct IncrementalTracker {
    /// Per variable (keyed by name): page hashes from the previous
    /// checkpoint. A variable absent from an epoch drops its state, so a
    /// reappearing variable is treated as entirely new.
    prev: HashMap<String, Vec<u64>>,
    page_bytes: usize,
}

impl IncrementalTracker {
    /// New tracker with the default page size.
    pub fn new() -> Self {
        Self::with_page_size(PAGE_BYTES).expect("PAGE_BYTES is non-zero")
    }

    /// New tracker with a custom page size; a zero page size is
    /// [`CkptError::InvalidConfig`] (the same typed error the store
    /// returns for `keep = 0`, not a panic).
    pub fn with_page_size(page_bytes: usize) -> Result<Self, CkptError> {
        if page_bytes == 0 {
            return Err(CkptError::InvalidConfig(
                "incremental page size must be positive".into(),
            ));
        }
        Ok(IncrementalTracker {
            prev: HashMap::new(),
            page_bytes,
        })
    }

    /// Record a checkpoint epoch: returns how much an incremental scheme
    /// would write for `vars` given the previously seen contents. One
    /// serialization pass per variable — pages are hashed directly from
    /// the streamed wire encoding and compared against the previous
    /// epoch's hashes as they are produced.
    pub fn step(&mut self, vars: &[(String, VarData)]) -> IncrementalReport {
        let mut report = IncrementalReport::default();
        let mut next: HashMap<String, Vec<u64>> = HashMap::with_capacity(vars.len());
        for (name, data) in vars {
            let prev = self.prev.get(name).map(Vec::as_slice).unwrap_or(&[]);
            let mut hashes = Vec::with_capacity(data.full_bytes().div_ceil(self.page_bytes.max(1)));
            for_each_page(data, self.page_bytes, |i, page| {
                let h = page_hash(page);
                report.total_pages += 1;
                if prev.get(i) != Some(&h) {
                    report.dirty_pages += 1;
                    report.bytes_written += page.len();
                }
                hashes.push(h);
            });
            // Page index: one u64 page id per dirty page.
            next.insert(name.clone(), hashes);
        }
        report.bytes_written += report.dirty_pages * 8;
        self.prev = next;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_var(name: &str, vals: Vec<f64>) -> (String, VarData) {
        (name.to_string(), VarData::F64(vals))
    }

    #[test]
    fn first_epoch_writes_everything() {
        let mut t = IncrementalTracker::with_page_size(64).unwrap();
        let vars = vec![f64_var("u", vec![1.0; 32])]; // 256 bytes = 4 pages
        let r = t.step(&vars);
        assert_eq!(r.total_pages, 4);
        assert_eq!(r.dirty_pages, 4);
        assert_eq!(r.bytes_written, 256 + 4 * 8);
    }

    #[test]
    fn unchanged_epoch_writes_nothing() {
        let mut t = IncrementalTracker::with_page_size(64).unwrap();
        let vars = vec![f64_var("u", vec![1.0; 32])];
        t.step(&vars);
        let r = t.step(&vars);
        assert_eq!(r.dirty_pages, 0);
        assert_eq!(r.bytes_written, 0);
    }

    #[test]
    fn localized_write_dirties_one_page() {
        let mut t = IncrementalTracker::with_page_size(64).unwrap();
        let mut vals = vec![1.0f64; 32];
        t.step(&[f64_var("u", vals.clone())]);
        vals[0] = 2.0; // first page only
        let r = t.step(&[f64_var("u", vals)]);
        assert_eq!(r.dirty_pages, 1);
        assert_eq!(r.bytes_written, 64 + 8);
    }

    #[test]
    fn growing_variable_is_handled() {
        let mut t = IncrementalTracker::with_page_size(64).unwrap();
        t.step(&[f64_var("u", vec![1.0; 8])]);
        let r = t.step(&[f64_var("u", vec![1.0; 32])]);
        // First page unchanged, three new pages dirty.
        assert_eq!(r.total_pages, 4);
        assert_eq!(r.dirty_pages, 3);
    }

    #[test]
    fn shrinking_variable_is_handled() {
        let mut t = IncrementalTracker::with_page_size(64).unwrap();
        t.step(&[f64_var("u", vec![1.0; 32])]); // 4 pages
        let r = t.step(&[f64_var("u", vec![1.0; 8])]); // 1 page, same bytes
        assert_eq!(r.total_pages, 1);
        assert_eq!(r.dirty_pages, 0, "the surviving full page is unchanged");
        // Shrinking to a *partial* page rehashes different content.
        let r = t.step(&[f64_var("u", vec![1.0; 4])]); // 32 bytes
        assert_eq!(r.total_pages, 1);
        assert_eq!(r.dirty_pages, 1, "a now-partial page hashes differently");
        // And the dropped pages do not haunt a later regrowth: page 0 is
        // compared against the 32-byte page, not the original 64-byte one.
        let r = t.step(&[f64_var("u", vec![1.0; 32])]);
        assert_eq!(r.dirty_pages, 4);
    }

    #[test]
    fn disappearing_and_reappearing_variable_rewrites_fully() {
        let mut t = IncrementalTracker::with_page_size(64).unwrap();
        let u = f64_var("u", vec![3.0; 16]); // 2 pages
        let w = f64_var("w", vec![4.0; 8]); // 1 page
        t.step(&[u.clone(), w.clone()]);
        // "w" disappears: only "u" is accounted, nothing is dirty.
        let r = t.step(std::slice::from_ref(&u));
        assert_eq!(r.total_pages, 2);
        assert_eq!(r.dirty_pages, 0);
        // "w" reappears unchanged — but its state was dropped, so an
        // incremental scheme must conservatively rewrite it in full.
        let r = t.step(&[u, w]);
        assert_eq!(r.total_pages, 3);
        assert_eq!(r.dirty_pages, 1);
        assert_eq!(r.bytes_written, 64 + 8);
    }

    #[test]
    fn many_variables_keyed_by_name_not_position() {
        let mut t = IncrementalTracker::with_page_size(64).unwrap();
        let a = f64_var("a", vec![1.0; 8]);
        let b = f64_var("b", vec![2.0; 8]);
        t.step(&[a.clone(), b.clone()]);
        // Same variables, swapped order: nothing is dirty.
        let r = t.step(&[b, a]);
        assert_eq!(r.dirty_pages, 0);
    }

    #[test]
    fn zero_page_size_is_invalid_config_not_a_panic() {
        match IncrementalTracker::with_page_size(0) {
            Err(CkptError::InvalidConfig(m)) => assert!(m.contains("positive")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn complex_and_int_payloads_hash() {
        let mut t = IncrementalTracker::with_page_size(32).unwrap();
        let vars = vec![
            ("y".to_string(), VarData::C128(vec![(1.0, 2.0); 4])),
            ("k".to_string(), VarData::I64(vec![7; 4])),
        ];
        let r1 = t.step(&vars);
        assert!(r1.dirty_pages > 0);
        let r2 = t.step(&vars);
        assert_eq!(r2.dirty_pages, 0);
    }

    #[test]
    fn page_size_not_a_multiple_of_element_width() {
        // 24-byte pages over 16-byte complex elements: elements straddle
        // page boundaries and the streaming pager must still chunk the
        // wire encoding exactly like `chunks(page_bytes)` would.
        let mut t = IncrementalTracker::with_page_size(24).unwrap();
        let vars = vec![("y".to_string(), VarData::C128(vec![(1.5, -2.5); 5]))]; // 80 B
        let r = t.step(&vars);
        assert_eq!(r.total_pages, 4); // 24+24+24+8
        assert_eq!(r.dirty_pages, 4);
        assert_eq!(r.bytes_written, 80 + 4 * 8);
        let r = t.step(&vars);
        assert_eq!(r.dirty_pages, 0);
    }
}
