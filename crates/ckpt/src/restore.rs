//! Parallel, CRC-verifying checkpoint restore.
//!
//! The write path is scale-out (the async engine serializes shards on a
//! worker pool); this module is its read-side mirror, because the
//! paper's whole value proposition is cheap *restart* (§IV.C): a
//! scrutinized checkpoint only matters if getting it back into memory is
//! fast and trustworthy. [`read_data_image_parallel`] reconstructs the
//! data-file image of a checkpoint in **any** layout — monolithic,
//! sharded, or delta chain — exactly like the serial
//! [`crate::delta::read_data_image`], but:
//!
//! * data shards are fetched **and CRC-verified concurrently**, one job
//!   per shard on a bounded thread pool (mirroring the write-side worker
//!   pool), then concatenated in manifest order;
//! * delta-chain links are envelope-verified (magic + CRC trailer)
//!   concurrently with each other and with the shard jobs of a sharded
//!   base (a monolithic base's bytes necessarily arrive during
//!   discovery — probing its existence *is* fetching it); the patch
//!   replay itself stays oldest-first (it is inherently sequential),
//!   re-using the already verified links so every byte is hashed
//!   exactly once;
//! * the assembled image is **bit-identical** to the serial reader's —
//!   property-tested in `tests/recovery_faultinj.rs` — so the auxiliary
//!   file, every [`crate::FillPolicy`], and
//!   [`crate::reader::Checkpoint::from_bytes`] apply unchanged.
//!
//! Chain *discovery* (walking parent pointers) is serial by nature: a
//! delta's parent version lives inside the delta file. Discovery reads
//! are cheap (one object fetch per link); the expensive work — hashing
//! and shard transfer — is what parallelizes.
//!
//! Integrity failures surface as the same typed [`CkptError`]s the
//! serial path produces ([`CkptError::ChecksumMismatch`],
//! [`CkptError::Corrupt`], not-found I/O); the engine's
//! `RecoveryManager` maps them to fall-back decisions.

use crate::delta::{apply_delta_verified, check_delta, walk_chain, ChainBase};
use crate::format::{crc32, CkptError};
use crate::names;
use scrutiny_obs::{span, Recorder, Snapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tuning knobs for the parallel restore pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreOptions {
    /// Worker threads fetching and verifying objects. `0` (the default)
    /// picks `available_parallelism` (capped at 8); `1` runs fully
    /// serial — useful as the bit-identity reference and on single-core
    /// hosts where thread spawn overhead outweighs the overlap.
    pub threads: usize,
}

/// What one parallel restore actually did (for reports and benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Worker threads the pipeline ran with (1 = serial).
    pub threads: usize,
    /// Shards of the base image (0 when the base is monolithic).
    pub base_shards: usize,
    /// Delta-chain links walked and replayed on top of the base.
    pub delta_links: usize,
    /// Bytes of the reconstructed data-file image.
    pub image_bytes: usize,
}

impl RestoreStats {
    /// Publish these stats as `ckpt.restore.*` gauges on `rec`. The
    /// stats struct is a *view* over the recorder's data: what `emit`
    /// writes, [`RestoreStats::from_snapshot`] reads back losslessly.
    pub fn emit(&self, rec: &Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.set_gauge("ckpt.restore.threads", self.threads as i64);
        rec.set_gauge("ckpt.restore.base_shards", self.base_shards as i64);
        rec.set_gauge("ckpt.restore.delta_links", self.delta_links as i64);
        rec.set_gauge("ckpt.restore.image_bytes", self.image_bytes as i64);
    }

    /// Reconstruct the stats of the most recent emitted restore from an
    /// observability snapshot. `None` if the snapshot holds no
    /// `ckpt.restore.*` gauges (no restore was observed).
    pub fn from_snapshot(snap: &Snapshot) -> Option<RestoreStats> {
        Some(RestoreStats {
            threads: snap.gauge("ckpt.restore.threads")? as usize,
            base_shards: snap.gauge("ckpt.restore.base_shards")? as usize,
            delta_links: snap.gauge("ckpt.restore.delta_links")? as usize,
            image_bytes: snap.gauge("ckpt.restore.image_bytes")? as usize,
        })
    }
}

fn resolve_threads(requested: usize, jobs: usize) -> usize {
    let cap = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        requested
    };
    cap.min(jobs).max(1)
}

/// One unit of parallel work: fetch+verify a shard, or verify an
/// already-fetched delta link.
enum Job<'a> {
    Shard {
        version: u64,
        idx: usize,
        len: u64,
        crc: u32,
    },
    Delta(&'a [u8]),
}

/// Reconstruct the data-file image of checkpoint `version` through
/// `fetch`, using up to [`RestoreOptions::threads`] workers to fetch and
/// CRC-verify shards and delta links concurrently. The returned image is
/// bit-identical to [`crate::delta::read_data_image`]'s; the stats say
/// what the pipeline did. `fetch` must resolve an object name (see
/// [`crate::names`]) to its bytes and be callable from several threads
/// at once — a directory read or a backend `get` both qualify.
pub fn read_data_image_parallel<F>(
    version: u64,
    fetch: &F,
    opts: &RestoreOptions,
) -> Result<(Vec<u8>, RestoreStats), CkptError>
where
    F: Fn(&str) -> Result<Vec<u8>, CkptError> + Sync,
{
    // --- Phase 1: discovery — the same `walk_chain` the serial reader
    // uses (probe order, cycle rejection, and the chain-length bound
    // cannot drift between the two). Serial by nature: the parent
    // version is inside each delta file.
    let (base, deltas) = walk_chain(version, |name| fetch(name))?;

    // --- Phase 2: fan out the expensive work — shard fetches and CRC
    // passes — across the pool, first failure wins.
    let mut jobs: Vec<Job> = Vec::new();
    if let ChainBase::Sharded { version, manifest } = &base {
        for idx in 0..manifest.shard_count() {
            jobs.push(Job::Shard {
                version: *version,
                idx,
                len: manifest.shard_lens[idx],
                crc: manifest.shard_crcs[idx],
            });
        }
    }
    for delta in &deltas {
        jobs.push(Job::Delta(delta));
    }

    let base_shards = match &base {
        ChainBase::Sharded { manifest, .. } => manifest.shard_count(),
        ChainBase::Monolithic(_) => 0,
    };
    let threads = resolve_threads(opts.threads, jobs.len().max(1));

    let shard_bytes: Vec<Mutex<Option<Vec<u8>>>> =
        (0..base_shards).map(|_| Mutex::new(None)).collect();
    run_jobs(&jobs, threads, fetch, &shard_bytes)?;

    // --- Phase 3: assemble, exactly as the serial path does: shards
    // concatenated in manifest order, then deltas replayed oldest-first.
    let mut image = match base {
        ChainBase::Monolithic(data) => data,
        ChainBase::Sharded { manifest, .. } => {
            let mut out = Vec::with_capacity(manifest.total_len as usize);
            for slot in &shard_bytes {
                out.extend_from_slice(
                    slot.lock()
                        .unwrap()
                        .as_ref()
                        .expect("run_jobs succeeded, every shard slot is filled"),
                );
            }
            out
        }
    };
    for delta in deltas.iter().rev() {
        image = apply_delta_verified(&image, delta)?;
    }
    let stats = RestoreStats {
        threads,
        base_shards,
        delta_links: deltas.len(),
        image_bytes: image.len(),
    };
    Ok((image, stats))
}

/// [`read_data_image_parallel`] reporting into a [`Recorder`]: the whole
/// restore runs under a `ckpt.restore` span (emitted even when the
/// restore fails, so rejected recovery candidates leave a trace), each
/// `SCRUTCZB`-compressed object decodes under a `ckpt.decompress` span,
/// a `ckpt.restore.image` point carries what the pipeline did, and the
/// stats land as `ckpt.restore.*` gauges ([`RestoreStats::emit`]). With
/// a disabled recorder this is exactly the unobserved function.
pub fn read_data_image_parallel_obs<F>(
    version: u64,
    fetch: &F,
    opts: &RestoreOptions,
    rec: &Recorder,
) -> Result<(Vec<u8>, RestoreStats), CkptError>
where
    F: Fn(&str) -> Result<Vec<u8>, CkptError> + Sync,
{
    let _restore = span!(rec, "ckpt.restore", version = version);
    // Decode compressed objects up here, under an explicit span; the
    // sniffing decode points further down then see raw bytes and no-op.
    let fetch = |name: &str| {
        let bytes = fetch(name)?;
        if crate::compress::is_container(&bytes) {
            let stored = bytes.len();
            let _d = span!(rec, "ckpt.decompress", stored_bytes = stored as u64);
            crate::compress::decompress(&bytes)
        } else {
            Ok(bytes)
        }
    };
    let (image, stats) = read_data_image_parallel(version, &fetch, opts)?;
    stats.emit(rec);
    rec.event(
        "ckpt.restore.image",
        &[
            ("version", version.into()),
            ("threads", stats.threads.into()),
            ("base_shards", stats.base_shards.into()),
            ("delta_links", stats.delta_links.into()),
            ("image_bytes", stats.image_bytes.into()),
        ],
    );
    Ok((image, stats))
}

/// Run `jobs` on `threads` workers: each worker claims the next job from
/// a shared counter, so a slow shard does not leave siblings idle. A
/// failed job flags the first error and the rest of the pool winds down.
fn run_jobs<F>(
    jobs: &[Job],
    threads: usize,
    fetch: &F,
    shard_bytes: &[Mutex<Option<Vec<u8>>>],
) -> Result<(), CkptError>
where
    F: Fn(&str) -> Result<Vec<u8>, CkptError> + Sync,
{
    let run_one = |job: &Job| -> Result<(), CkptError> {
        match *job {
            Job::Shard {
                version,
                idx,
                len,
                crc,
            } => {
                let bytes = fetch(&names::shard(version, idx))
                    .and_then(crate::compress::maybe_decompress)?;
                if bytes.len() as u64 != len {
                    return Err(CkptError::Corrupt(format!(
                        "shard {idx} is {} bytes, manifest says {len}",
                        bytes.len()
                    )));
                }
                let actual = crc32(&bytes);
                if actual != crc {
                    return Err(CkptError::ChecksumMismatch {
                        expected: crc,
                        actual,
                    });
                }
                *shard_bytes[idx].lock().unwrap() = Some(bytes);
                Ok(())
            }
            Job::Delta(delta) => check_delta(delta),
        }
    };

    if threads <= 1 || jobs.len() <= 1 {
        for job in jobs {
            run_one(job)?;
        }
        return Ok(());
    }

    let next = AtomicUsize::new(0);
    let first_err: Mutex<Option<CkptError>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() || first_err.lock().unwrap().is_some() {
                    return;
                }
                if let Err(e) = run_one(&jobs[i]) {
                    let mut slot = first_err.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    return;
                }
            });
        }
    });
    match first_err.into_inner().unwrap() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{diff_images, read_data_image};
    use crate::shard::{plan_shards, seal_shards, serialize_shard};
    use crate::writer::serialize_data;
    use crate::{Bitmap, Regions, VarData, VarPlan, VarRecord};
    use std::collections::HashMap;

    fn sample(n: usize, scale: f64) -> (Vec<VarRecord>, Vec<VarPlan>) {
        let vars = vec![
            VarRecord::new(
                "u",
                VarData::F64((0..n).map(|i| (i as f64 * scale).sin()).collect()),
            ),
            VarRecord::new("it", VarData::I64(vec![n as i64, 7])),
        ];
        let crit = Bitmap::from_fn(n, |i| i % 4 != 1);
        let plans = vec![VarPlan::Pruned(Regions::from_bitmap(&crit)), VarPlan::Full];
        (vars, plans)
    }

    fn mem_fetch(
        objects: &HashMap<String, Vec<u8>>,
    ) -> impl Fn(&str) -> Result<Vec<u8>, CkptError> + Sync + '_ {
        |name| {
            objects.get(name).cloned().ok_or_else(|| {
                CkptError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    name.to_string(),
                ))
            })
        }
    }

    /// Monolithic v0, sharded v1, delta chain v2..=v4 on top of v1.
    fn build_layouts() -> HashMap<String, Vec<u8>> {
        let mut objects = HashMap::new();

        let (vars, plans) = sample(400, 0.25);
        let (mono, _) = serialize_data(&vars, &plans).unwrap();
        objects.insert(names::data(0), mono);

        let (vars, plans) = sample(600, 1.5);
        let plan = plan_shards(&vars, &plans, 4).unwrap();
        let shards: Vec<Vec<u8>> = (0..plan.shard_count())
            .map(|i| serialize_shard(&vars, &plans, &plan, i).0)
            .collect();
        let (sealed, manifest) = seal_shards(shards);
        for (i, s) in sealed.iter().enumerate() {
            objects.insert(names::shard(1, i), s.clone());
        }
        objects.insert(names::manifest(1), manifest.to_bytes());

        let mut img = read_data_image(1, mem_fetch(&objects)).unwrap();
        for v in 2u64..=4 {
            let mut next = img.clone();
            let at = (v as usize * 131) % next.len();
            next[at] ^= 0x5A;
            let (d, _) = diff_images(&img, &next, v - 1, 128).unwrap();
            objects.insert(names::delta(v), d);
            img = next;
        }
        objects
    }

    #[test]
    fn parallel_matches_serial_on_all_layouts_and_thread_counts() {
        let objects = build_layouts();
        for version in 0u64..=4 {
            let want = read_data_image(version, mem_fetch(&objects)).unwrap();
            for threads in [0usize, 1, 2, 5] {
                let (got, stats) = read_data_image_parallel(
                    version,
                    &mem_fetch(&objects),
                    &RestoreOptions { threads },
                )
                .unwrap();
                assert_eq!(got, want, "version {version}, {threads} threads");
                assert_eq!(stats.image_bytes, want.len());
                match version {
                    0 => assert_eq!((stats.base_shards, stats.delta_links), (0, 0)),
                    1 => assert_eq!(stats.delta_links, 0),
                    v => {
                        assert_eq!(stats.delta_links as u64, v - 1);
                        assert!(stats.base_shards >= 2, "chain anchors on the sharded base");
                    }
                }
            }
        }
    }

    #[test]
    fn damaged_shard_is_pinned_by_the_parallel_path() {
        let mut objects = build_layouts();
        objects.get_mut(&names::shard(1, 1)).unwrap()[3] ^= 0xFF;
        for threads in [1usize, 4] {
            let err =
                read_data_image_parallel(1, &mem_fetch(&objects), &RestoreOptions { threads })
                    .unwrap_err();
            assert!(
                matches!(err, CkptError::ChecksumMismatch { .. }),
                "{threads} threads: {err}"
            );
        }
    }

    #[test]
    fn damaged_delta_link_fails_the_chain() {
        let mut objects = build_layouts();
        let d = objects.get_mut(&names::delta(3)).unwrap();
        let mid = d.len() / 2;
        d[mid] ^= 0x01;
        // Version 2 (below the damage) still restores…
        assert!(
            read_data_image_parallel(2, &mem_fetch(&objects), &RestoreOptions::default()).is_ok()
        );
        // …versions 3 and 4 (through the damaged link) do not.
        for v in [3u64, 4] {
            assert!(
                read_data_image_parallel(v, &mem_fetch(&objects), &RestoreOptions::default())
                    .is_err(),
                "version {v}"
            );
        }
    }

    #[test]
    fn truncated_shard_reports_corrupt_not_panic() {
        let mut objects = build_layouts();
        objects.get_mut(&names::shard(1, 0)).unwrap().truncate(9);
        let err = read_data_image_parallel(1, &mem_fetch(&objects), &RestoreOptions { threads: 3 })
            .unwrap_err();
        assert!(matches!(
            err,
            CkptError::Corrupt(_) | CkptError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn missing_base_surfaces_not_found() {
        let mut objects = build_layouts();
        objects.remove(&names::manifest(1));
        let err = read_data_image_parallel(4, &mem_fetch(&objects), &RestoreOptions::default())
            .unwrap_err();
        assert!(crate::delta::is_not_found(&err), "{err}");
    }

    #[test]
    fn cyclic_parent_rejected() {
        let a: Vec<u8> = (0..100u8).collect();
        let (d, _) = diff_images(&a, &a, 5, 64).unwrap();
        let mut objects = HashMap::new();
        objects.insert(names::delta(5), d);
        match read_data_image_parallel(5, &mem_fetch(&objects), &RestoreOptions::default()) {
            Err(CkptError::Corrupt(m)) => assert!(m.contains("not older"), "{m}"),
            other => panic!("expected corrupt-cycle error, got {other:?}"),
        };
    }
}
