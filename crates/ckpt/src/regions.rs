//! Run-length regions: the auxiliary file's data model.
//!
//! The paper (§III.B): *"The auxiliary file only records the start and end
//! locations of the region of continuous critical elements."* `Regions` is
//! that list — sorted, disjoint, half-open `[start, end)` element ranges —
//! with conversions from/to [`Bitmap`] and the set operations the planner
//! needs.

use crate::Bitmap;

/// One contiguous run of critical elements, half-open `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First element index in the run.
    pub start: u64,
    /// One past the last element index.
    pub end: u64,
}

impl Region {
    /// Number of elements covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the region covers nothing (not a valid stored region).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A sorted, disjoint set of [`Region`]s.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Regions {
    runs: Vec<Region>,
}

impl Regions {
    /// Empty region set (nothing critical).
    pub fn empty() -> Self {
        Regions { runs: Vec::new() }
    }

    /// A single run covering `[0, total)` (everything critical).
    pub fn all(total: u64) -> Self {
        if total == 0 {
            Self::empty()
        } else {
            Regions {
                runs: vec![Region {
                    start: 0,
                    end: total,
                }],
            }
        }
    }

    /// Build from an explicit run list; panics unless sorted, disjoint and
    /// non-empty per run (the invariants the binary format relies on).
    pub fn from_runs(runs: Vec<Region>) -> Self {
        let mut prev_end = 0u64;
        for (i, r) in runs.iter().enumerate() {
            assert!(!r.is_empty(), "region {i} is empty: {r:?}");
            assert!(
                i == 0 || r.start > prev_end,
                "region {i} overlaps or touches its predecessor (merge required): {r:?}"
            );
            prev_end = r.end;
        }
        Regions { runs }
    }

    /// Run-length encode a criticality bitmap (set bits become regions).
    pub fn from_bitmap(bits: &Bitmap) -> Self {
        let mut runs = Vec::new();
        let mut start: Option<usize> = None;
        for i in 0..bits.len() {
            match (bits.get(i), start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    runs.push(Region {
                        start: s as u64,
                        end: i as u64,
                    });
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push(Region {
                start: s as u64,
                end: bits.len() as u64,
            });
        }
        Regions { runs }
    }

    /// Expand back to a bitmap of `total` elements.
    pub fn to_bitmap(&self, total: usize) -> Bitmap {
        let mut b = Bitmap::new(total);
        for r in &self.runs {
            for i in r.start..r.end {
                b.set(i as usize, true);
            }
        }
        b
    }

    /// The underlying run list.
    pub fn runs(&self) -> &[Region] {
        &self.runs
    }

    /// Number of runs — the auxiliary file stores two u64 per run, so this
    /// drives the auxiliary storage cost.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total number of covered (critical) elements.
    pub fn covered(&self) -> u64 {
        self.runs.iter().map(Region::len).sum()
    }

    /// True when no element is covered.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Does the set contain element `i`?
    pub fn contains(&self, i: u64) -> bool {
        // Runs are sorted: binary search by start.
        self.runs
            .binary_search_by(|r| {
                if i < r.start {
                    std::cmp::Ordering::Greater
                } else if i >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Iterate all covered element indices in ascending order.
    pub fn indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|r| r.start..r.end)
    }

    /// The sub-set covering stored-order (covered) elements `k0..k1`: the
    /// `k`-th covered element of `self` is covered by the result iff
    /// `k0 <= k < k1`. This is how the sharded serializer splits one
    /// variable's payload into independently serializable element ranges
    /// in O(runs) instead of iterating every index.
    pub fn covered_range(&self, k0: u64, k1: u64) -> Regions {
        assert!(k0 <= k1, "covered_range bounds reversed: {k0} > {k1}");
        let mut runs = Vec::new();
        let mut seen = 0u64; // covered elements strictly before this run
        for r in &self.runs {
            let len = r.len();
            let lo = k0.saturating_sub(seen).min(len);
            let hi = k1.saturating_sub(seen).min(len);
            if lo < hi {
                runs.push(Region {
                    start: r.start + lo,
                    end: r.start + hi,
                });
            }
            seen += len;
            if seen >= k1 {
                break;
            }
        }
        Regions { runs }
    }

    /// Complement within `[0, total)` — the uncritical regions.
    pub fn complement(&self, total: u64) -> Regions {
        let mut runs = Vec::new();
        let mut cursor = 0u64;
        for r in &self.runs {
            if r.start > cursor {
                runs.push(Region {
                    start: cursor,
                    end: r.start,
                });
            }
            cursor = r.end;
        }
        if cursor < total {
            runs.push(Region {
                start: cursor,
                end: total,
            });
        }
        Regions { runs }
    }

    /// Set union of two region sets.
    pub fn union(&self, other: &Regions) -> Regions {
        let mut all: Vec<Region> = self.runs.iter().chain(&other.runs).copied().collect();
        all.sort_by_key(|r| r.start);
        let mut merged: Vec<Region> = Vec::with_capacity(all.len());
        for r in all {
            match merged.last_mut() {
                Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
                _ => merged.push(r),
            }
        }
        Regions { runs: merged }
    }

    /// Set intersection of two region sets.
    pub fn intersect(&self, other: &Regions) -> Regions {
        let mut runs = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let a = self.runs[i];
            let b = other.runs[j];
            let start = a.start.max(b.start);
            let end = a.end.min(b.end);
            if start < end {
                runs.push(Region { start, end });
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        Regions { runs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(pattern: &[u8]) -> Bitmap {
        Bitmap::from_fn(pattern.len(), |i| pattern[i] == 1)
    }

    #[test]
    fn encode_simple_runs() {
        let r = Regions::from_bitmap(&bm(&[1, 1, 0, 0, 1, 0, 1, 1, 1]));
        assert_eq!(
            r.runs(),
            &[
                Region { start: 0, end: 2 },
                Region { start: 4, end: 5 },
                Region { start: 6, end: 9 }
            ]
        );
        assert_eq!(r.covered(), 6);
        assert_eq!(r.run_count(), 3);
    }

    #[test]
    fn roundtrip_bitmap() {
        let b = bm(&[0, 1, 1, 0, 1, 0, 0, 1]);
        assert_eq!(Regions::from_bitmap(&b).to_bitmap(8), b);
    }

    #[test]
    fn all_and_empty() {
        assert_eq!(Regions::all(10).covered(), 10);
        assert_eq!(Regions::all(0).run_count(), 0);
        assert!(Regions::empty().is_empty());
    }

    #[test]
    fn complement_splits_gaps() {
        let r = Regions::from_runs(vec![
            Region { start: 2, end: 4 },
            Region { start: 7, end: 9 },
        ]);
        let c = r.complement(12);
        assert_eq!(
            c.runs(),
            &[
                Region { start: 0, end: 2 },
                Region { start: 4, end: 7 },
                Region { start: 9, end: 12 }
            ]
        );
        assert_eq!(r.covered() + c.covered(), 12);
    }

    #[test]
    fn contains_uses_binary_search() {
        let r = Regions::from_runs(vec![
            Region { start: 5, end: 8 },
            Region { start: 20, end: 21 },
        ]);
        for i in 0..30u64 {
            assert_eq!(r.contains(i), (5..8).contains(&i) || i == 20, "index {i}");
        }
    }

    #[test]
    fn union_merges_touching() {
        let a = Regions::from_runs(vec![Region { start: 0, end: 5 }]);
        let b = Regions::from_runs(vec![Region { start: 5, end: 9 }]);
        assert_eq!(a.union(&b).runs(), &[Region { start: 0, end: 9 }]);
    }

    #[test]
    fn intersect_overlapping() {
        let a = Regions::from_runs(vec![
            Region { start: 0, end: 10 },
            Region { start: 20, end: 30 },
        ]);
        let b = Regions::from_runs(vec![Region { start: 5, end: 25 }]);
        assert_eq!(
            a.intersect(&b).runs(),
            &[Region { start: 5, end: 10 }, Region { start: 20, end: 25 }]
        );
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn from_runs_rejects_overlap() {
        Regions::from_runs(vec![
            Region { start: 0, end: 5 },
            Region { start: 4, end: 6 },
        ]);
    }

    #[test]
    fn covered_range_splits_stored_order() {
        let r = Regions::from_runs(vec![
            Region { start: 2, end: 5 },   // covered elems 0,1,2
            Region { start: 9, end: 10 },  // covered elem 3
            Region { start: 20, end: 24 }, // covered elems 4..8
        ]);
        let all: Vec<u64> = r.indices().collect();
        for k0 in 0..=all.len() {
            for k1 in k0..=all.len() {
                let sub = r.covered_range(k0 as u64, k1 as u64);
                let got: Vec<u64> = sub.indices().collect();
                assert_eq!(got, &all[k0..k1], "range {k0}..{k1}");
            }
        }
        // Out-of-bounds upper end is clamped.
        assert_eq!(r.covered_range(6, 100).covered(), 2);
    }

    #[test]
    fn indices_iterates_in_order() {
        let r = Regions::from_bitmap(&bm(&[1, 0, 1, 1]));
        assert_eq!(r.indices().collect::<Vec<_>>(), vec![0, 2, 3]);
    }
}
