//! Checkpoint deserialization and restore-time materialization.
//!
//! Restoring a pruned checkpoint reverses the writer: stored elements are
//! placed at the offsets recorded in the auxiliary file; the holes (the
//! uncritical elements the paper proved removable) are filled according to
//! a [`FillPolicy`] — the §IV.C experiments fill them with garbage and
//! require the application to still verify.

use crate::format::{crc32, CkptError, DType, FillPolicy, VarPlan};
use crate::writer::{file_names, MODE_FULL, MODE_PRUNED, MODE_TIERED};
use crate::{Region, Regions};
use std::fs;
use std::path::Path;

/// One variable loaded from a checkpoint (sparse form).
pub struct LoadedVar {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Full logical element count of the variable.
    pub total: u64,
    /// Storage plan reconstructed from the auxiliary file.
    pub plan: VarPlan,
    /// Stored elements in region order (f64 view; complex uses two slots
    /// per element; tiered `lo` values were upcast from f32 on read).
    stored: Vec<f64>,
    /// Stored integer elements (only for [`DType::I64`]).
    stored_i: Vec<i64>,
}

impl LoadedVar {
    /// Reassemble the full `f64` array, filling unsaved holes.
    pub fn materialize_f64(&self, fill: FillPolicy) -> Result<Vec<f64>, CkptError> {
        if self.dtype != DType::F64 {
            return Err(CkptError::PlanMismatch(format!(
                "{:?} is {:?}, not F64",
                self.name, self.dtype
            )));
        }
        let n = self.total as usize;
        let mut out: Vec<f64> = (0..n).map(|i| fill.value(i)).collect();
        match &self.plan {
            VarPlan::Full => out.copy_from_slice(&self.stored),
            VarPlan::Pruned(regions) => {
                scatter(&mut out, regions, &self.stored);
            }
            VarPlan::Tiered { hi, lo } => {
                let hi_n = hi.covered() as usize;
                scatter(&mut out, hi, &self.stored[..hi_n]);
                scatter(&mut out, lo, &self.stored[hi_n..]);
            }
        }
        Ok(out)
    }

    /// Reassemble the full complex array, filling holes in both components.
    pub fn materialize_c128(&self, fill: FillPolicy) -> Result<Vec<(f64, f64)>, CkptError> {
        if self.dtype != DType::C128 {
            return Err(CkptError::PlanMismatch(format!(
                "{:?} is {:?}, not C128",
                self.name, self.dtype
            )));
        }
        let n = self.total as usize;
        let mut out: Vec<(f64, f64)> = (0..n)
            .map(|i| (fill.value(2 * i), fill.value(2 * i + 1)))
            .collect();
        let pairs: Vec<(f64, f64)> = self.stored.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        match &self.plan {
            VarPlan::Full => out.copy_from_slice(&pairs),
            VarPlan::Pruned(regions) => {
                for (i, &p) in regions.indices().zip(pairs.iter()) {
                    out[i as usize] = p;
                }
            }
            VarPlan::Tiered { .. } => {
                return Err(CkptError::PlanMismatch(
                    "tiered complex variables are not supported".into(),
                ))
            }
        }
        Ok(out)
    }

    /// Reassemble the full integer array; holes get `fill`.
    pub fn materialize_i64(&self, fill: i64) -> Result<Vec<i64>, CkptError> {
        if self.dtype != DType::I64 {
            return Err(CkptError::PlanMismatch(format!(
                "{:?} is {:?}, not I64",
                self.name, self.dtype
            )));
        }
        let n = self.total as usize;
        let mut out = vec![fill; n];
        match &self.plan {
            VarPlan::Full => out.copy_from_slice(&self.stored_i),
            VarPlan::Pruned(regions) => {
                for (i, &v) in regions.indices().zip(self.stored_i.iter()) {
                    out[i as usize] = v;
                }
            }
            VarPlan::Tiered { .. } => {
                return Err(CkptError::PlanMismatch(
                    "tiered integer variables are not supported".into(),
                ))
            }
        }
        Ok(out)
    }
}

fn scatter(out: &mut [f64], regions: &Regions, stored: &[f64]) {
    for (i, &v) in regions.indices().zip(stored.iter()) {
        out[i as usize] = v;
    }
}

/// A parsed checkpoint (all variables).
pub struct Checkpoint {
    vars: Vec<LoadedVar>,
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.pos + n > self.buf.len() {
            return Err(CkptError::Corrupt(format!(
                "truncated: need {n} bytes at offset {}, file has {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn name(&mut self) -> Result<String, CkptError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Corrupt("variable name is not UTF-8".into()))
    }
}

fn check_envelope<'a>(buf: &'a [u8], magic: &[u8; 8], what: &str) -> Result<&'a [u8], CkptError> {
    if buf.len() < 12 + 4 {
        return Err(CkptError::Corrupt(format!("{what} file too short")));
    }
    if &buf[..8] != magic {
        return Err(CkptError::Corrupt(format!("{what} file has wrong magic")));
    }
    let body = &buf[..buf.len() - 4];
    let expected = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
    let actual = crc32(body);
    if expected != actual {
        return Err(CkptError::ChecksumMismatch { expected, actual });
    }
    Ok(body)
}

fn read_runs(c: &mut Cursor) -> Result<Regions, CkptError> {
    let n = c.u64()? as usize;
    if n > 1 << 32 {
        return Err(CkptError::Corrupt(format!("implausible run count {n}")));
    }
    let mut runs = Vec::with_capacity(n);
    for _ in 0..n {
        let start = c.u64()?;
        let end = c.u64()?;
        if end <= start {
            return Err(CkptError::Corrupt(format!("empty region [{start},{end})")));
        }
        runs.push(Region { start, end });
    }
    Ok(Regions::from_runs(runs))
}

impl Checkpoint {
    /// Parse a checkpoint from in-memory data + auxiliary file images.
    pub fn from_bytes(data: &[u8], aux: &[u8]) -> Result<Self, CkptError> {
        // --- auxiliary file first: it carries the region tables ----------
        let body = check_envelope(aux, b"SCRUTAUX", "auxiliary")?;
        let mut c = Cursor { buf: body, pos: 8 };
        let _ver = c.u32()?;
        let nvars = c.u32()? as usize;
        let mut plans: Vec<(String, VarPlan)> = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let name = c.name()?;
            let mode = c.u8()?;
            let plan = match mode {
                MODE_FULL => VarPlan::Full,
                MODE_PRUNED => VarPlan::Pruned(read_runs(&mut c)?),
                MODE_TIERED => VarPlan::Tiered {
                    hi: read_runs(&mut c)?,
                    lo: read_runs(&mut c)?,
                },
                m => return Err(CkptError::Corrupt(format!("unknown plan mode {m}"))),
            };
            plans.push((name, plan));
        }

        // --- data file ----------------------------------------------------
        let body = check_envelope(data, b"SCRUTCKP", "data")?;
        let mut c = Cursor { buf: body, pos: 8 };
        let ver = c.u32()?;
        let lo_codec = match ver {
            crate::writer::FORMAT_VERSION => crate::compress::LoCodec::F32,
            crate::writer::FORMAT_VERSION_TIERED => crate::compress::LoCodec::from_tag(c.u8()?)?,
            v => {
                return Err(CkptError::Corrupt(format!(
                    "unsupported data format version {v}"
                )))
            }
        };
        let nvars_d = c.u32()? as usize;
        if nvars_d != nvars {
            return Err(CkptError::Corrupt(format!(
                "data file has {nvars_d} variables, auxiliary file has {nvars}"
            )));
        }
        let mut vars = Vec::with_capacity(nvars);
        for (aux_name, plan) in plans {
            let name = c.name()?;
            if name != aux_name {
                return Err(CkptError::Corrupt(format!(
                    "variable order mismatch: data {name:?} vs aux {aux_name:?}"
                )));
            }
            let dtype = DType::from_tag(c.u8()?)?;
            let mode = c.u8()?;
            let total = c.u64()?;
            let mut stored = Vec::new();
            let mut stored_i = Vec::new();
            match mode {
                MODE_FULL | MODE_PRUNED => {
                    let count = c.u64()? as usize;
                    match dtype {
                        DType::F64 => {
                            stored.reserve(count);
                            for _ in 0..count {
                                stored.push(c.f64()?);
                            }
                        }
                        DType::C128 => {
                            stored.reserve(2 * count);
                            for _ in 0..count {
                                stored.push(c.f64()?);
                                stored.push(c.f64()?);
                            }
                        }
                        DType::I64 => {
                            stored_i.reserve(count);
                            for _ in 0..count {
                                stored_i.push(c.i64()?);
                            }
                        }
                    }
                }
                MODE_TIERED => {
                    let hi = c.u64()? as usize;
                    for _ in 0..hi {
                        stored.push(c.f64()?);
                    }
                    let lo = c.u64()? as usize;
                    let width = lo_codec.width();
                    for _ in 0..lo {
                        stored.push(lo_codec.decode(c.take(width)?));
                    }
                }
                m => return Err(CkptError::Corrupt(format!("unknown data mode {m}"))),
            }
            // Cross-check the two files agree on how much was stored.
            let planned = plan.stored_elems(total);
            let actual = match dtype {
                DType::C128 => stored.len() as u64 / 2,
                DType::I64 => stored_i.len() as u64,
                DType::F64 => match &plan {
                    VarPlan::Tiered { .. } => stored.len() as u64, // hi+lo
                    _ => stored.len() as u64,
                },
            };
            if planned != actual {
                return Err(CkptError::Corrupt(format!(
                    "{name:?}: auxiliary file plans {planned} elements, data file stores {actual}"
                )));
            }
            vars.push(LoadedVar {
                name,
                dtype,
                total,
                plan,
                stored,
                stored_i,
            });
        }
        Ok(Checkpoint { vars })
    }

    /// Load checkpoint `version` from a store directory.
    ///
    /// Accepts every on-disk layout: the monolithic `ckpt_v.data` file,
    /// the sharded layout the async engine's workers produce
    /// (`ckpt_v.data.sNNN` segments described by a `ckpt_v.smf`
    /// manifest, reassembled and CRC-verified shard by shard), and the
    /// base+delta layout (`ckpt_v.delta`, whose parent chain is walked
    /// back to a full image and replayed forward — see [`crate::delta`]).
    pub fn load(dir: &Path, version: u64) -> Result<Self, CkptError> {
        let (_, aux_path) = file_names(dir, version);
        let aux = fs::read(&aux_path)?;
        let data = crate::delta::read_data_image(version, |name| {
            fs::read(dir.join(name)).map_err(CkptError::from)
        })?;
        Self::from_bytes(&data, &aux)
    }

    /// [`Checkpoint::load`] through the parallel restore pipeline
    /// ([`crate::restore`]): shards and delta-chain links are fetched
    /// and CRC-verified concurrently, and the assembled image — being
    /// bit-identical to the serial path's — parses identically. Returns
    /// the checkpoint plus what the pipeline did.
    pub fn load_parallel(
        dir: &Path,
        version: u64,
        opts: &crate::restore::RestoreOptions,
    ) -> Result<(Self, crate::restore::RestoreStats), CkptError> {
        let (_, aux_path) = file_names(dir, version);
        let aux = fs::read(&aux_path)?;
        let (data, stats) = crate::restore::read_data_image_parallel(
            version,
            &|name: &str| fs::read(dir.join(name)).map_err(CkptError::from),
            opts,
        )?;
        Ok((Self::from_bytes(&data, &aux)?, stats))
    }

    /// Look up a variable by name.
    pub fn var(&self, name: &str) -> Result<&LoadedVar, CkptError> {
        self.vars
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| CkptError::MissingVar(name.to_string()))
    }

    /// All variable names in file order.
    pub fn names(&self) -> Vec<&str> {
        self.vars.iter().map(|v| v.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::serialize;
    use crate::{Bitmap, VarData, VarRecord};

    fn roundtrip(vars: &[VarRecord], plans: &[VarPlan]) -> Checkpoint {
        let ser = serialize(vars, plans).unwrap();
        Checkpoint::from_bytes(&ser.data, &ser.aux).unwrap()
    }

    #[test]
    fn full_roundtrip_f64() {
        let vals: Vec<f64> = (0..50).map(|i| i as f64 * 1.5).collect();
        let vars = vec![VarRecord::new("u", VarData::F64(vals.clone()))];
        let ck = roundtrip(&vars, &[VarPlan::Full]);
        let got = ck
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Zero)
            .unwrap();
        assert_eq!(got, vals);
    }

    #[test]
    fn pruned_roundtrip_fills_holes() {
        let vals: Vec<f64> = (0..10).map(f64::from).collect();
        let crit = Bitmap::from_fn(10, |i| i % 2 == 0);
        let vars = vec![VarRecord::new("u", VarData::F64(vals))];
        let plans = vec![VarPlan::Pruned(Regions::from_bitmap(&crit))];
        let ck = roundtrip(&vars, &plans);
        let got = ck
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Sentinel(-9.0))
            .unwrap();
        for (i, &g) in got.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(g, i as f64);
            } else {
                assert_eq!(g, -9.0);
            }
        }
    }

    #[test]
    fn complex_roundtrip() {
        let vals: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, -(i as f64))).collect();
        let crit = Bitmap::from_fn(8, |i| i < 6);
        let vars = vec![VarRecord::new("y", VarData::C128(vals.clone()))];
        let plans = vec![VarPlan::Pruned(Regions::from_bitmap(&crit))];
        let ck = roundtrip(&vars, &plans);
        let got = ck
            .var("y")
            .unwrap()
            .materialize_c128(FillPolicy::Zero)
            .unwrap();
        assert_eq!(&got[..6], &vals[..6]);
        assert_eq!(got[6], (0.0, 0.0));
    }

    #[test]
    fn integer_roundtrip() {
        let vars = vec![VarRecord::new("it", VarData::I64(vec![41, 42, 43]))];
        let ck = roundtrip(&vars, &[VarPlan::Full]);
        assert_eq!(
            ck.var("it").unwrap().materialize_i64(0).unwrap(),
            vec![41, 42, 43]
        );
    }

    #[test]
    fn tiered_roundtrip_loses_lo_precision_only() {
        let vals = vec![1.0 + 1e-12, 2.5, 3.25, 4.0 + 1e-12];
        let vars = vec![VarRecord::new("u", VarData::F64(vals.clone()))];
        let hi = Regions::from_runs(vec![Region { start: 0, end: 2 }]);
        let lo = Regions::from_runs(vec![Region { start: 3, end: 4 }]);
        let plans = vec![VarPlan::Tiered { hi, lo }];
        let ck = roundtrip(&vars, &plans);
        let got = ck
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Zero)
            .unwrap();
        assert_eq!(got[0], vals[0]); // exact f64
        assert_eq!(got[1], vals[1]);
        assert_eq!(got[2], 0.0); // dropped
        assert_eq!(got[3], vals[3] as f32 as f64); // f32 round-trip
    }

    #[test]
    fn tiered_v2_truncated_lo_roundtrips_within_bound() {
        use crate::compress::LoCodec;
        use crate::writer::serialize_with;
        let vals: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
        let vars = vec![VarRecord::new("u", VarData::F64(vals.clone()))];
        let hi = Regions::from_runs(vec![Region { start: 0, end: 10 }]);
        let lo = Regions::from_runs(vec![Region { start: 10, end: 40 }]);
        let plans = vec![VarPlan::Tiered { hi, lo }];
        for keep in [2u8, 4, 6] {
            let codec = LoCodec::Trunc { keep };
            let ser = serialize_with(&vars, &plans, codec).unwrap();
            let ck = Checkpoint::from_bytes(&ser.data, &ser.aux).unwrap();
            let got = ck
                .var("u")
                .unwrap()
                .materialize_f64(FillPolicy::Zero)
                .unwrap();
            for i in 0..10 {
                assert_eq!(got[i], vals[i], "hi tier stays exact (keep={keep})");
            }
            for i in 10..40 {
                assert_eq!(got[i], codec.apply(vals[i]), "lo tier (keep={keep})");
            }
        }
        // An unknown future version is a typed parse error, not a panic.
        let ser = serialize(&vars, &plans).unwrap();
        let mut bad = ser.data.clone();
        bad[8] = 9; // version field
        let body_len = bad.len() - 4;
        let crc = crate::format::crc32(&bad[..body_len]);
        bad[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bad, &ser.aux),
            Err(CkptError::Corrupt(_))
        ));
    }

    #[test]
    fn crc_corruption_detected() {
        let vars = vec![VarRecord::new("u", VarData::F64(vec![1.0, 2.0]))];
        let mut ser = serialize(&vars, &[VarPlan::Full]).unwrap();
        let mid = ser.data.len() / 2;
        ser.data[mid] ^= 0xFF;
        assert!(matches!(
            Checkpoint::from_bytes(&ser.data, &ser.aux),
            Err(CkptError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let vars = vec![VarRecord::new("u", VarData::F64(vec![1.0, 2.0]))];
        let ser = serialize(&vars, &[VarPlan::Full]).unwrap();
        let cut = &ser.data[..ser.data.len() - 10];
        assert!(Checkpoint::from_bytes(cut, &ser.aux).is_err());
    }

    #[test]
    fn missing_var_reported() {
        let vars = vec![VarRecord::new("u", VarData::F64(vec![1.0]))];
        let ck = roundtrip(&vars, &[VarPlan::Full]);
        assert!(matches!(ck.var("nope"), Err(CkptError::MissingVar(_))));
    }

    #[test]
    fn load_accepts_sharded_dir_layout() {
        use crate::shard::{plan_shards, seal_shards, serialize_shard};
        use crate::writer::{manifest_file_name, serialize_aux, shard_file_name};

        let dir = std::env::temp_dir().join(format!("scrutiny_shard_load_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();

        let vals: Vec<f64> = (0..300).map(|i| (i as f64).sin()).collect();
        let crit = Bitmap::from_fn(300, |i| i % 7 != 0);
        let vars = vec![VarRecord::new("u", VarData::F64(vals.clone()))];
        let plans = vec![VarPlan::Pruned(Regions::from_bitmap(&crit))];

        let plan = plan_shards(&vars, &plans, 4).unwrap();
        let shards: Vec<Vec<u8>> = (0..plan.shard_count())
            .map(|i| serialize_shard(&vars, &plans, &plan, i).0)
            .collect();
        let (sealed, manifest) = seal_shards(shards);
        for (i, shard) in sealed.iter().enumerate() {
            fs::write(shard_file_name(&dir, 5, i), shard).unwrap();
        }
        fs::write(manifest_file_name(&dir, 5), manifest.to_bytes()).unwrap();
        let (aux, _) = serialize_aux(&vars, &plans);
        fs::write(dir.join("ckpt_000005.aux"), aux).unwrap();

        // No ckpt_000005.data exists — the reader must reassemble shards.
        let ck = Checkpoint::load(&dir, 5).unwrap();
        let got = ck
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Zero)
            .unwrap();
        for (i, (&g, &w)) in got.iter().zip(&vals).enumerate() {
            if i % 7 != 0 {
                assert_eq!(g, w, "stored element {i}");
            } else {
                assert_eq!(g, 0.0, "pruned hole {i}");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_rejected() {
        let vars = vec![VarRecord::new("u", VarData::F64(vec![1.0]))];
        let ser = serialize(&vars, &[VarPlan::Full]).unwrap();
        assert!(Checkpoint::from_bytes(&ser.aux, &ser.aux).is_err());
    }
}
