//! Base+delta checkpoints: the `SCRUTDLT` on-disk format.
//!
//! The paper removes *semantic* redundancy (AD proves elements
//! uncritical); dirty-page incremental checkpointing (Vasavada et al.,
//! cited in the paper's related work) removes *temporal* redundancy. The
//! two compose: this module diffs the **serialized data file** of the
//! AD-pruned checkpoint — the bytes that remain *after* semantic pruning —
//! at page granularity, so a delta epoch stores only the pages of the
//! critical regions that actually changed since the parent epoch.
//!
//! Layout of one delta file (little-endian, CRC-32 trailer like every
//! other `scrutiny-ckpt` file):
//!
//! ```text
//! "SCRUTDLT" | format u32 | parent u64 | page_bytes u32 | full_len u64
//!            | npages u64
//! per page:  page_id u64 | page payload
//!            (payload length = min(page_bytes, full_len − id·page_bytes))
//! crc32 u32
//! ```
//!
//! `parent` names the checkpoint this delta patches; applying the delta to
//! the parent's reconstructed data-file image yields this epoch's image
//! **bit-identically** — so [`crate::reader::Checkpoint::from_bytes`], the
//! auxiliary file, every [`crate::FillPolicy`], and the CRC envelope all
//! work unchanged on a reconstructed delta checkpoint.
//!
//! Dirty pages are detected by *exact byte comparison* against the parent
//! image, not by hashing: a hash collision here would silently corrupt
//! every later epoch in the chain. (The [`crate::incremental`] tracker
//! keeps its cheap page hashes — it models `mprotect`-style bookkeeping
//! cost, it does not reconstruct state.)

use crate::format::{crc32, CkptError, StorageBreakdown};
use crate::names;
use crate::shard::ShardManifest;
use crate::writer::{put_u32, put_u64};

pub(crate) const DELTA_MAGIC: &[u8; 8] = b"SCRUTDLT";
const DELTA_VERSION: u32 = 1;
/// Fixed byte length of the delta header up to and including `npages`.
const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 8 + 8;
/// Chains longer than this are rejected as corrupt (a healthy writer
/// rebases long before; a cycle would otherwise loop forever).
pub(crate) const MAX_CHAIN_LEN: usize = 100_000;

/// How a delta-checkpoint chain is grown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaPolicy {
    /// Diff granularity in bytes (must be ≥ 1).
    pub page_bytes: usize,
    /// After this many consecutive delta epochs, the next epoch rebases to
    /// a fresh full checkpoint (must be ≥ 1). Bounds both restore latency
    /// (chain length) and retention (a chain pins its base on disk).
    pub rebase_every: usize,
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        DeltaPolicy {
            page_bytes: crate::incremental::PAGE_BYTES,
            rebase_every: 8,
        }
    }
}

impl DeltaPolicy {
    /// Reject unusable policies (zero page size or zero chain length).
    pub fn validate(&self) -> Result<(), CkptError> {
        validate_page_bytes(self.page_bytes)?;
        if self.rebase_every == 0 {
            return Err(CkptError::InvalidConfig(
                "a delta chain must allow at least one delta between rebases".into(),
            ));
        }
        Ok(())
    }
}

/// A usable page size: non-zero, and within the header's u32 field — a
/// silent `as u32` truncation would write deltas that cannot be applied.
fn validate_page_bytes(page_bytes: usize) -> Result<(), CkptError> {
    if page_bytes == 0 {
        return Err(CkptError::InvalidConfig(
            "delta page size must be positive".into(),
        ));
    }
    if page_bytes > u32::MAX as usize {
        return Err(CkptError::InvalidConfig(format!(
            "delta page size {page_bytes} exceeds the format's u32 limit"
        )));
    }
    Ok(())
}

/// Byte accounting of one serialized delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Pages whose bytes changed (or are new) since the parent image.
    pub dirty_pages: usize,
    /// Pages the new image spans in total.
    pub total_pages: usize,
    /// Dirty-page payload bytes stored in the delta file.
    pub payload_bytes: usize,
}

/// Word-scanning page comparison: an early-exit check on the first
/// 8-byte word (a dirty page almost always differs immediately — the
/// diff loop runs once per page, so the prefix check short-circuits the
/// common dirty case), then 16-byte word compares, then a byte tail.
/// Must agree with [`pages_equal_scalar`] on every input — the
/// round-trip proptest pins that.
#[inline]
pub fn pages_equal(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if a.len() >= 8
        && u64::from_ne_bytes(a[..8].try_into().unwrap())
            != u64::from_ne_bytes(b[..8].try_into().unwrap())
    {
        return false;
    }
    let mut wa = a.chunks_exact(16);
    let mut wb = b.chunks_exact(16);
    for (ca, cb) in wa.by_ref().zip(wb.by_ref()) {
        if u128::from_ne_bytes(ca.try_into().unwrap())
            != u128::from_ne_bytes(cb.try_into().unwrap())
        {
            return false;
        }
    }
    wa.remainder()
        .iter()
        .zip(wb.remainder())
        .all(|(x, y)| x == y)
}

/// Byte-at-a-time reference for [`pages_equal`] — the baseline the
/// vectorized comparison is proven bit-identical to.
pub fn pages_equal_scalar(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

/// Copy a page with unaligned 16-byte word loads/stores plus a byte
/// tail. `dst` and `src` must be the same length.
#[inline]
pub fn copy_page(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut ws = src.chunks_exact(16);
    let mut wd = dst.chunks_exact_mut(16);
    for (d, s) in wd.by_ref().zip(ws.by_ref()) {
        let w = u128::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for (d, s) in wd.into_remainder().iter_mut().zip(ws.remainder()) {
        *d = *s;
    }
}

/// Byte-at-a-time reference for [`copy_page`].
pub fn copy_page_scalar(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = *s;
    }
}

/// Diff `new` against `parent` at `page_bytes` granularity and serialize
/// the result as a `SCRUTDLT` file that patches checkpoint
/// `parent_version`. A page is dirty when its bytes differ from the same
/// byte range of the parent image, or when it extends past the parent's
/// end (growth); shrinkage needs no pages — apply truncates.
pub fn diff_images(
    parent: &[u8],
    new: &[u8],
    parent_version: u64,
    page_bytes: usize,
) -> Result<(Vec<u8>, DeltaStats), CkptError> {
    validate_page_bytes(page_bytes)?;
    let mut stats = DeltaStats::default();
    let mut dirty: Vec<u64> = Vec::new();
    for (i, page) in new.chunks(page_bytes).enumerate() {
        stats.total_pages += 1;
        let start = i * page_bytes;
        let end = start + page.len();
        let clean = end <= parent.len() && pages_equal(&parent[start..end], page);
        if !clean {
            stats.dirty_pages += 1;
            stats.payload_bytes += page.len();
            dirty.push(i as u64);
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + stats.payload_bytes + dirty.len() * 8 + 4);
    out.extend_from_slice(DELTA_MAGIC);
    put_u32(&mut out, DELTA_VERSION);
    put_u64(&mut out, parent_version);
    put_u32(&mut out, page_bytes as u32);
    put_u64(&mut out, new.len() as u64);
    put_u64(&mut out, dirty.len() as u64);
    for &id in &dirty {
        put_u64(&mut out, id);
        let start = id as usize * page_bytes;
        let end = (start + page_bytes).min(new.len());
        out.extend_from_slice(&new[start..end]);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    Ok((out, stats))
}

/// The parent version a delta file patches. Reads only the fixed header —
/// no CRC pass — so retention sweeps can classify chains cheaply; a file
/// too short to hold the header (or with the wrong magic) is rejected.
/// A delta stored inside a `SCRUTCZB` container is decoded first (the
/// caller holding full object bytes is the common retention path).
pub fn parent_version(delta: &[u8]) -> Result<u64, CkptError> {
    if crate::compress::is_container(delta) {
        return parent_header(&crate::compress::decompress(delta)?);
    }
    parent_header(delta)
}

/// [`parent_version`] of the delta file at `path`, reading only the
/// header bytes from disk — retention runs on every save, and a prune
/// must not pull whole dirty-page payloads into memory just to follow a
/// 8-byte parent pointer. Compressed deltas (container magic in the
/// prefix) are the exception: the whole file is read and decoded.
pub fn parent_version_at(path: &std::path::Path) -> Result<u64, CkptError> {
    use std::io::Read;
    let f = std::fs::File::open(path)?;
    let mut buf = Vec::with_capacity(HEADER_LEN + 4);
    f.take((HEADER_LEN + 4) as u64).read_to_end(&mut buf)?;
    if crate::compress::is_container(&buf) {
        return parent_version(&std::fs::read(path)?);
    }
    parent_header(&buf)
}

fn parent_header(delta: &[u8]) -> Result<u64, CkptError> {
    if delta.len() < HEADER_LEN + 4 {
        return Err(CkptError::Corrupt("delta file too short".into()));
    }
    if &delta[..8] != DELTA_MAGIC {
        return Err(CkptError::Corrupt("delta file has wrong magic".into()));
    }
    Ok(u64::from_le_bytes(delta[12..20].try_into().unwrap()))
}

/// Verify a delta file's envelope: length, magic, and the CRC-32
/// trailer. [`apply_delta`] runs this first; the parallel restore
/// pipeline runs it concurrently across chain links and then patches
/// with [`apply_delta_verified`] so each link is hashed exactly once.
pub(crate) fn check_delta(delta: &[u8]) -> Result<(), CkptError> {
    if delta.len() < HEADER_LEN + 4 {
        return Err(CkptError::Corrupt("delta file too short".into()));
    }
    if &delta[..8] != DELTA_MAGIC {
        return Err(CkptError::Corrupt("delta file has wrong magic".into()));
    }
    let body = &delta[..delta.len() - 4];
    let expected = u32::from_le_bytes(delta[delta.len() - 4..].try_into().unwrap());
    let actual = crc32(body);
    if expected != actual {
        return Err(CkptError::ChecksumMismatch { expected, actual });
    }
    Ok(())
}

/// Parse and CRC-verify a delta file, then patch `parent` with it:
/// truncate or zero-extend to the recorded length, overwrite the dirty
/// pages. Returns the reconstructed data-file image.
pub fn apply_delta(parent: &[u8], delta: &[u8]) -> Result<Vec<u8>, CkptError> {
    check_delta(delta)?;
    apply_delta_verified(parent, delta)
}

/// [`apply_delta`] minus the envelope pass — the delta must already have
/// passed [`check_delta`]. Structural bounds (page table, payload
/// lengths) are still validated here.
pub(crate) fn apply_delta_verified(parent: &[u8], delta: &[u8]) -> Result<Vec<u8>, CkptError> {
    let body = &delta[..delta.len() - 4];
    let page_bytes = u32::from_le_bytes(delta[20..24].try_into().unwrap()) as usize;
    if page_bytes == 0 {
        return Err(CkptError::Corrupt(
            "delta file declares zero page size".into(),
        ));
    }
    let full_len = u64::from_le_bytes(delta[24..32].try_into().unwrap()) as usize;
    let npages = u64::from_le_bytes(delta[32..40].try_into().unwrap()) as usize;

    let mut out = vec![0u8; full_len];
    let keep = parent.len().min(full_len);
    out[..keep].copy_from_slice(&parent[..keep]);

    let mut pos = HEADER_LEN;
    for _ in 0..npages {
        if pos + 8 > body.len() {
            return Err(CkptError::Corrupt("delta page table truncated".into()));
        }
        let id = u64::from_le_bytes(body[pos..pos + 8].try_into().unwrap()) as usize;
        pos += 8;
        let start = id
            .checked_mul(page_bytes)
            .filter(|&s| s < full_len)
            .ok_or_else(|| CkptError::Corrupt(format!("delta page {id} lies beyond the image")))?;
        let len = page_bytes.min(full_len - start);
        if pos + len > body.len() {
            return Err(CkptError::Corrupt("delta page payload truncated".into()));
        }
        copy_page(&mut out[start..start + len], &body[pos..pos + len]);
        pos += len;
    }
    if pos != body.len() {
        return Err(CkptError::Corrupt(format!(
            "delta file has {} trailing bytes after its page table",
            body.len() - pos
        )));
    }
    Ok(out)
}

pub(crate) fn is_not_found(e: &CkptError) -> bool {
    matches!(e, CkptError::Io(io) if io.kind() == std::io::ErrorKind::NotFound)
}

/// The full image a delta chain anchors on, as discovered by
/// [`walk_chain`].
pub(crate) enum ChainBase {
    /// One `ckpt_v.data` object, fetched whole.
    Monolithic(Vec<u8>),
    /// A parsed `ckpt_v.smf` manifest; the shards themselves are not yet
    /// fetched — the caller decides whether to read them serially or on
    /// a worker pool.
    Sharded {
        /// Version holding the manifest (the chain's anchor).
        version: u64,
        /// Its parsed, CRC-verified manifest.
        manifest: ShardManifest,
    },
}

/// Walk `version`'s parent pointers newest-first until a full
/// (monolithic or sharded) image anchors the chain; returns the base and
/// the delta files in walk order (newest first, **not** yet
/// CRC-verified). One discovery routine shared by the serial
/// [`read_data_image`] and the parallel
/// [`crate::restore::read_data_image_parallel`], so layout probing,
/// cycle rejection, and the chain-length bound cannot drift between the
/// two readers. Objects stored inside `SCRUTCZB` compression containers
/// are decoded transparently here, so both readers (and everything above
/// them: store loads, engine recovery, the daemon) handle compressed and
/// raw checkpoints interchangeably.
pub(crate) fn walk_chain(
    version: u64,
    mut fetch: impl FnMut(&str) -> Result<Vec<u8>, CkptError>,
) -> Result<(ChainBase, Vec<Vec<u8>>), CkptError> {
    let mut fetch = |name: &str| fetch(name).and_then(crate::compress::maybe_decompress);
    let mut deltas: Vec<Vec<u8>> = Vec::new();
    let mut v = version;
    let base = loop {
        match fetch(&names::data(v)) {
            Ok(data) => break ChainBase::Monolithic(data),
            Err(e) if is_not_found(&e) => {}
            Err(e) => return Err(e),
        }
        match fetch(&names::manifest(v)) {
            Ok(m) => {
                break ChainBase::Sharded {
                    version: v,
                    manifest: ShardManifest::from_bytes(&m)?,
                }
            }
            Err(e) if is_not_found(&e) => {}
            Err(e) => return Err(e),
        }
        let delta = fetch(&names::delta(v))?;
        let parent = parent_version(&delta)?;
        if parent >= v {
            return Err(CkptError::Corrupt(format!(
                "delta {v} names parent {parent}, which is not older"
            )));
        }
        deltas.push(delta);
        if deltas.len() > MAX_CHAIN_LEN {
            return Err(CkptError::Corrupt(format!(
                "delta chain from {version} exceeds {MAX_CHAIN_LEN} links"
            )));
        }
        v = parent;
    };
    Ok((base, deltas))
}

/// Fetch the data-file image of checkpoint `version` in **any** layout:
/// monolithic (`ckpt_v.data`), sharded (`ckpt_v.smf` + shards), or delta
/// (`ckpt_v.delta`, walking the parent chain back to a full image and
/// replaying the deltas forward). `fetch` resolves an object name (see
/// [`crate::names`]) to its bytes — a directory read for the on-disk
/// store, a backend `get` for the async engine. Every layer is
/// CRC-verified: shards against their manifest, deltas against their own
/// trailer, and the final image still carries the data file's envelope.
pub fn read_data_image(
    version: u64,
    mut fetch: impl FnMut(&str) -> Result<Vec<u8>, CkptError>,
) -> Result<Vec<u8>, CkptError> {
    let (base, deltas) = walk_chain(version, &mut fetch)?;
    let mut image = match base {
        ChainBase::Monolithic(data) => data,
        ChainBase::Sharded { version, manifest } => {
            let shards: Vec<Vec<u8>> = (0..manifest.shard_count())
                .map(|i| {
                    fetch(&names::shard(version, i)).and_then(crate::compress::maybe_decompress)
                })
                .collect::<Result<_, _>>()?;
            manifest.assemble(&shards)?
        }
    };
    for delta in deltas.iter().rev() {
        image = apply_delta(&image, delta)?;
    }
    Ok(image)
}

/// Publish one epoch of a base+delta chain through `put` (a backend
/// `put` or an atomic file write): decides base-vs-delta from the chain
/// state, writes the auxiliary object first and the commit marker (data
/// or delta) last, and returns the epoch's byte accounting plus the new
/// consecutive-delta count. Shared by [`crate::CheckpointStore::save_delta`]
/// and the async engine's delta finisher, so the two writers cannot
/// drift in layout, rebase cadence, or accounting.
///
/// `image`/`image_payload_bytes` are the epoch's serialized data file
/// and its element-payload share; `aux`/`aux_pair_bytes` likewise for
/// the auxiliary file; `prev` is the last published epoch's image.
#[allow(clippy::too_many_arguments)]
pub fn publish_epoch(
    version: u64,
    policy: &DeltaPolicy,
    prev: Option<&(u64, Vec<u8>)>,
    deltas_since_base: usize,
    image: &[u8],
    image_payload_bytes: usize,
    aux: &[u8],
    aux_pair_bytes: usize,
    mut put: impl FnMut(&str, &[u8]) -> Result<(), CkptError>,
) -> Result<(StorageBreakdown, usize), CkptError> {
    let aux_header = aux.len() - aux_pair_bytes;
    if let Some((parent_version, parent)) = prev.filter(|_| deltas_since_base < policy.rebase_every)
    {
        let (delta, stats) = diff_images(parent, image, *parent_version, policy.page_bytes)?;
        put(&names::aux(version), aux)?;
        put(&names::delta(version), &delta)?;
        Ok((
            StorageBreakdown {
                payload_bytes: stats.payload_bytes,
                aux_bytes: aux_pair_bytes,
                header_bytes: delta.len() - stats.payload_bytes + aux_header,
            },
            deltas_since_base + 1,
        ))
    } else {
        put(&names::aux(version), aux)?;
        put(&names::data(version), image)?;
        Ok((
            StorageBreakdown {
                payload_bytes: image_payload_bytes,
                aux_bytes: aux_pair_bytes,
                header_bytes: image.len() - image_payload_bytes + aux_header,
            },
            0,
        ))
    }
}

/// Classify a listing of object/file names into committed versions and
/// their kind — `(version, is_delta)`, ascending — the input
/// [`live_versions`] expects. A version holding both a full image
/// (data file or shard manifest) and a delta file counts as full:
/// readers probe the full image first, so the delta is dead weight there.
pub fn committed_kinds<S: AsRef<str>>(names_list: impl IntoIterator<Item = S>) -> Vec<(u64, bool)> {
    use std::collections::BTreeMap;
    let mut kinds: BTreeMap<u64, bool> = BTreeMap::new();
    for name in names_list {
        match names::classify(name.as_ref()) {
            crate::names::CkptName::Data(v) | crate::names::CkptName::Manifest(v) => {
                kinds.insert(v, false);
            }
            crate::names::CkptName::Delta(v) => {
                kinds.entry(v).or_insert(true);
            }
            _ => {}
        }
    }
    kinds.into_iter().collect()
}

/// Chain-aware retention: which versions must stay on disk when keeping
/// the newest `keep` checkpoints. `committed` is every committed version,
/// ascending, flagged `true` when its commit marker is a delta file;
/// `parent_of` resolves a delta version to its parent (called only for
/// deltas). The newest `keep` versions are live, and so is every ancestor
/// a live delta transitively patches — a base is never pruned out from
/// under a live chain.
pub fn live_versions(
    committed: &[(u64, bool)],
    keep: usize,
    mut parent_of: impl FnMut(u64) -> Result<u64, CkptError>,
) -> Result<std::collections::BTreeSet<u64>, CkptError> {
    use std::collections::{BTreeMap, BTreeSet};
    let kinds: BTreeMap<u64, bool> = committed.iter().copied().collect();
    let mut live: BTreeSet<u64> = committed.iter().rev().take(keep).map(|&(v, _)| v).collect();
    let mut frontier: Vec<u64> = live.iter().copied().collect();
    while let Some(v) = frontier.pop() {
        if kinds.get(&v) != Some(&true) {
            continue; // full checkpoint (or unknown): chain ends here
        }
        let parent = parent_of(v)?;
        if parent >= v {
            return Err(CkptError::Corrupt(format!(
                "delta {v} names parent {parent}, which is not older"
            )));
        }
        if live.insert(parent) {
            frontier.push(parent);
        }
    }
    Ok(live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn image(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31) ^ seed)
            .collect()
    }

    #[test]
    fn word_compare_and_copy_match_scalar_at_every_length_and_position() {
        // Lengths straddling the 16-byte word size, the 8-byte prefix,
        // and both tails; a flipped byte at every position.
        for len in 0..48usize {
            let a = image(len, 7);
            assert_eq!(pages_equal(&a, &a), pages_equal_scalar(&a, &a));
            assert!(pages_equal(&a, &a));
            for at in 0..len {
                let mut b = a.clone();
                b[at] ^= 0x10;
                assert_eq!(pages_equal(&a, &b), pages_equal_scalar(&a, &b));
                assert!(!pages_equal(&a, &b), "len={len} at={at}");
            }
            let mut b = a.clone();
            b.push(0);
            assert!(!pages_equal(&a, &b));

            let mut dst_v = vec![0xAAu8; len];
            let mut dst_s = vec![0xAAu8; len];
            copy_page(&mut dst_v, &a);
            copy_page_scalar(&mut dst_s, &a);
            assert_eq!(dst_v, a);
            assert_eq!(dst_v, dst_s);
        }
    }

    #[test]
    fn identical_images_produce_no_pages() {
        let a = image(1000, 3);
        let (delta, stats) = diff_images(&a, &a, 7, 64).unwrap();
        assert_eq!(stats.dirty_pages, 0);
        assert_eq!(stats.payload_bytes, 0);
        assert_eq!(stats.total_pages, 16);
        assert_eq!(parent_version(&delta).unwrap(), 7);
        assert_eq!(apply_delta(&a, &delta).unwrap(), a);
    }

    #[test]
    fn localized_change_stores_one_page() {
        let a = image(1024, 0);
        let mut b = a.clone();
        b[200] ^= 0xFF;
        let (delta, stats) = diff_images(&a, &b, 0, 128).unwrap();
        assert_eq!(stats.dirty_pages, 1);
        assert_eq!(stats.payload_bytes, 128);
        assert_eq!(apply_delta(&a, &delta).unwrap(), b);
        assert!(delta.len() < b.len() / 2, "delta should be much smaller");
    }

    #[test]
    fn growth_and_shrink_roundtrip() {
        let a = image(300, 1);
        let grown = image(500, 1); // same prefix pattern, longer
        let (d, s) = diff_images(&a, &grown, 0, 64).unwrap();
        assert_eq!(apply_delta(&a, &d).unwrap(), grown);
        // Pages fully inside the old image and unchanged stay clean.
        assert!(s.dirty_pages < s.total_pages);

        let shrunk = image(100, 1);
        let (d, _) = diff_images(&grown, &shrunk, 0, 64).unwrap();
        assert_eq!(apply_delta(&grown, &d).unwrap(), shrunk);
    }

    #[test]
    fn tail_partial_page_diffs_exactly() {
        let a = image(130, 9); // 64 + 64 + 2
        let mut b = a.clone();
        b[129] ^= 1;
        let (d, s) = diff_images(&a, &b, 0, 64).unwrap();
        assert_eq!(s.total_pages, 3);
        assert_eq!(s.dirty_pages, 1);
        assert_eq!(s.payload_bytes, 2);
        assert_eq!(apply_delta(&a, &d).unwrap(), b);
    }

    #[test]
    fn corruption_detected_on_apply() {
        let a = image(256, 2);
        let mut b = a.clone();
        b[0] ^= 1;
        let (mut d, _) = diff_images(&a, &b, 0, 64).unwrap();
        let mid = d.len() / 2;
        d[mid] ^= 0xFF;
        assert!(matches!(
            apply_delta(&a, &d),
            Err(CkptError::ChecksumMismatch { .. })
        ));
        let (d, _) = diff_images(&a, &b, 0, 64).unwrap();
        assert!(apply_delta(&a, &d[..d.len() - 6]).is_err());
    }

    #[test]
    fn zero_page_size_is_invalid_config() {
        assert!(matches!(
            diff_images(b"a", b"b", 0, 0),
            Err(CkptError::InvalidConfig(_))
        ));
        // A page size beyond the header's u32 field must be rejected up
        // front, not silently truncated into an unappliable delta.
        #[cfg(target_pointer_width = "64")]
        assert!(matches!(
            diff_images(b"a", b"b", 0, u32::MAX as usize + 1),
            Err(CkptError::InvalidConfig(_))
        ));
        assert!(DeltaPolicy {
            page_bytes: 0,
            rebase_every: 4
        }
        .validate()
        .is_err());
        assert!(DeltaPolicy {
            page_bytes: 64,
            rebase_every: 0
        }
        .validate()
        .is_err());
        DeltaPolicy::default().validate().unwrap();
    }

    fn mem_fetch(
        objects: &HashMap<String, Vec<u8>>,
    ) -> impl FnMut(&str) -> Result<Vec<u8>, CkptError> + '_ {
        |name| {
            objects.get(name).cloned().ok_or_else(|| {
                CkptError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    name.to_string(),
                ))
            })
        }
    }

    #[test]
    fn chain_reconstruction_is_bit_identical() {
        // Base at 0, deltas at 1..=3, each mutating a different page.
        let mut objects = HashMap::new();
        let mut img = image(2000, 5);
        objects.insert(names::data(0), img.clone());
        for v in 1u64..=3 {
            let mut next = img.clone();
            let at = (v as usize * 311) % next.len();
            next[at] = next[at].wrapping_add(v as u8);
            let (d, _) = diff_images(&img, &next, v - 1, 128).unwrap();
            objects.insert(names::delta(v), d);
            img = next;
        }
        let got = read_data_image(3, mem_fetch(&objects)).unwrap();
        assert_eq!(got, img);
        // Intermediate versions reconstruct too.
        assert!(read_data_image(1, mem_fetch(&objects)).is_ok());
    }

    #[test]
    fn missing_base_surfaces_not_found() {
        let mut objects = HashMap::new();
        let a = image(100, 0);
        let (d, _) = diff_images(&a, &a, 0, 64).unwrap();
        objects.insert(names::delta(1), d);
        // Parent 0 has no image at all.
        assert!(read_data_image(1, mem_fetch(&objects)).is_err());
    }

    #[test]
    fn cyclic_parent_rejected() {
        let a = image(100, 0);
        let (d, _) = diff_images(&a, &a, 5, 64).unwrap();
        let mut objects = HashMap::new();
        objects.insert(names::delta(5), d);
        match read_data_image(5, mem_fetch(&objects)) {
            Err(CkptError::Corrupt(m)) => assert!(m.contains("not older"), "{m}"),
            other => panic!("expected corrupt-cycle error, got {other:?}"),
        }
    }

    #[test]
    fn committed_kinds_classifies_and_prefers_full() {
        let kinds = committed_kinds([
            names::data(0),
            names::aux(0),
            names::delta(1),
            names::aux(1),
            names::manifest(2),
            names::shard(2, 0),
            // Version 3 has both a full image and a delta: counts full.
            names::data(3),
            names::delta(3),
            "notes.txt".to_string(),
        ]);
        assert_eq!(kinds, vec![(0, false), (1, true), (2, false), (3, false)]);
    }

    #[test]
    fn parent_version_at_reads_only_the_header() {
        let dir = std::env::temp_dir().join(format!("scrutiny_dlt_hdr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = image(5000, 4);
        let mut b = a.clone();
        b[0] ^= 1;
        let (d, _) = diff_images(&a, &b, 41, 64).unwrap();
        let path = dir.join(names::delta(42));
        std::fs::write(&path, &d).unwrap();
        assert_eq!(parent_version_at(&path).unwrap(), 41);
        assert!(parent_version_at(&dir.join(names::delta(7))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_set_pins_chain_ancestors() {
        // 0 full, 1..=3 deltas (parent = v-1), 4 full, 5 delta (parent 4).
        let committed = [
            (0, false),
            (1, true),
            (2, true),
            (3, true),
            (4, false),
            (5, true),
        ];
        let live = live_versions(&committed, 2, |v| Ok(v - 1)).unwrap();
        // Newest two are 4 and 5; 5 is a delta whose parent 4 is already
        // live, so the old chain 0..=3 may go.
        assert_eq!(live.into_iter().collect::<Vec<_>>(), vec![4, 5]);

        let live = live_versions(&committed[..4], 1, |v| Ok(v - 1)).unwrap();
        // Keeping only delta 3 pins its whole ancestry.
        assert_eq!(live.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }
}
