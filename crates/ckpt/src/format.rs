//! Checkpoint format primitives: typed payloads, plans, errors, CRC32,
//! storage accounting and restore fill policies.

use crate::Regions;
use std::fmt;

/// Element type of a checkpoint variable (Table I's data structures).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DType {
    /// IEEE-754 double — NPB's `double` arrays and scalars.
    F64,
    /// NPB's custom `dcomplex` (two doubles). One *element* = one complex.
    C128,
    /// Integer control state (loop indices, sort keys).
    I64,
}

impl DType {
    /// Stored size of one element in bytes.
    pub fn elem_bytes(self) -> usize {
        match self {
            DType::F64 => 8,
            DType::C128 => 16,
            DType::I64 => 8,
        }
    }

    /// Wire tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            DType::F64 => 0,
            DType::C128 => 1,
            DType::I64 => 2,
        }
    }

    pub(crate) fn from_tag(t: u8) -> Result<Self, CkptError> {
        match t {
            0 => Ok(DType::F64),
            1 => Ok(DType::C128),
            2 => Ok(DType::I64),
            _ => Err(CkptError::Corrupt(format!("unknown dtype tag {t}"))),
        }
    }
}

/// Typed payload of one checkpoint variable.
#[derive(Clone, Debug, PartialEq)]
pub enum VarData {
    /// Double-precision array (or scalar of length 1).
    F64(Vec<f64>),
    /// Complex array: `(re, im)` pairs.
    C128(Vec<(f64, f64)>),
    /// Integer array/scalar.
    I64(Vec<i64>),
}

impl VarData {
    /// Element count (complex counts as one element, as in the paper).
    pub fn len(&self) -> usize {
        match self {
            VarData::F64(v) => v.len(),
            VarData::C128(v) => v.len(),
            VarData::I64(v) => v.len(),
        }
    }

    /// True for a zero-length payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element type.
    pub fn dtype(&self) -> DType {
        match self {
            VarData::F64(_) => DType::F64,
            VarData::C128(_) => DType::C128,
            VarData::I64(_) => DType::I64,
        }
    }

    /// Full (unpruned) payload size in bytes.
    pub fn full_bytes(&self) -> usize {
        self.len() * self.dtype().elem_bytes()
    }
}

/// One named checkpoint variable.
#[derive(Clone, Debug, PartialEq)]
pub struct VarRecord {
    /// Variable name (matching the application's checkpoint spec).
    pub name: String,
    /// Payload.
    pub data: VarData,
}

impl VarRecord {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, data: VarData) -> Self {
        VarRecord {
            name: name.into(),
            data,
        }
    }
}

/// Per-variable storage decision produced by the planner.
#[derive(Clone, Debug, PartialEq)]
pub enum VarPlan {
    /// Store every element (the baseline the paper compares against).
    Full,
    /// Store only the critical regions; the auxiliary file records them.
    Pruned(Regions),
    /// Precision-tiered storage (§VII future work): `hi` regions keep f64,
    /// `lo` regions are downcast to f32, everything else is dropped.
    /// Only valid for [`DType::F64`] variables.
    Tiered {
        /// Full-precision regions (large gradient magnitude).
        hi: Regions,
        /// Reduced-precision regions (small but non-zero gradient).
        lo: Regions,
    },
}

impl VarPlan {
    /// Number of elements this plan persists.
    pub fn stored_elems(&self, total: u64) -> u64 {
        match self {
            VarPlan::Full => total,
            VarPlan::Pruned(r) => r.covered(),
            VarPlan::Tiered { hi, lo } => hi.covered() + lo.covered(),
        }
    }
}

/// Byte-exact storage accounting for one written checkpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// Element payload bytes in the data file.
    pub payload_bytes: usize,
    /// Auxiliary (region table) file bytes.
    pub aux_bytes: usize,
    /// Headers, names, lengths, CRCs in both files.
    pub header_bytes: usize,
}

impl StorageBreakdown {
    /// Everything on disk for this checkpoint.
    pub fn total(&self) -> usize {
        self.payload_bytes + self.aux_bytes + self.header_bytes
    }

    /// Payload-only kilobytes (KiB), the unit Table III reports.
    pub fn payload_kib(&self) -> f64 {
        self.payload_bytes as f64 / 1024.0
    }

    /// Total kilobytes including the auxiliary file.
    pub fn total_kib(&self) -> f64 {
        self.total() as f64 / 1024.0
    }
}

/// How restore fills elements the checkpoint did not store.
///
/// The paper's §IV.C argument: uncritical elements "should not impact the
/// computation correctness even if their values are altered by system
/// failures" — so tests fill them with garbage and require the run to
/// still verify.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FillPolicy {
    /// Zero-fill (what a fresh allocation would give).
    Zero,
    /// A recognizable poison value; makes accidental reads obvious.
    Sentinel(f64),
    /// Deterministic pseudo-random garbage from a seed.
    Garbage(u64),
}

impl FillPolicy {
    /// Fill value for element `i`.
    pub fn value(self, i: usize) -> f64 {
        match self {
            FillPolicy::Zero => 0.0,
            FillPolicy::Sentinel(v) => v,
            FillPolicy::Garbage(seed) => {
                // splitmix64 → uniform in [-1e6, 1e6): garbage that stays
                // finite so IEEE traps don't mask a criticality error.
                let mut z = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z as f64 / u64::MAX as f64 - 0.5) * 2e6
            }
        }
    }
}

/// Errors from the checkpoint reader/writer.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid or truncated file.
    Corrupt(String),
    /// CRC mismatch — the file was damaged after being written.
    ChecksumMismatch {
        /// CRC recorded in the file.
        expected: u32,
        /// CRC of the bytes actually read.
        actual: u32,
    },
    /// A requested variable is not in the checkpoint.
    MissingVar(String),
    /// Plan/payload disagreement (e.g. tiered plan on a complex variable).
    PlanMismatch(String),
    /// The caller's configuration is unusable (e.g. a store asked to
    /// retain zero checkpoints).
    InvalidConfig(String),
    /// A storage service refused the operation by policy — quota,
    /// backpressure, or drain — rather than failure. The string starts
    /// with a stable lower-snake reason code (e.g. `version_quota: ...`;
    /// see `docs/PROTOCOL.md`). The stored bytes are *not* suspect:
    /// recovery treats this as environmental, never as corruption.
    Rejected(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CkptError::ChecksumMismatch { expected, actual } => {
                write!(f, "checkpoint CRC mismatch: file says {expected:#010x}, data hashes to {actual:#010x}")
            }
            CkptError::MissingVar(n) => write!(f, "variable {n:?} not present in checkpoint"),
            CkptError::PlanMismatch(m) => write!(f, "plan mismatch: {m}"),
            CkptError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            CkptError::Rejected(m) => write!(f, "rejected by storage service: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// The 8 slicing tables. `t[0]` is the classic byte-at-a-time table;
/// `t[j][b]` is the CRC of byte `b` followed by `j` zero bytes, so eight
/// input bytes can be folded per iteration with independent lookups.
const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB88320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = t[0][(t[j - 1][i] & 0xFF) as usize] ^ (t[j - 1][i] >> 8);
            i += 1;
        }
        j += 1;
    }
    t
}

const CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// Streaming IEEE CRC-32 (reflected, poly 0xEDB88320 — same polynomial as
/// zip/png). Lets the sharded writer checksum a data file that exists only
/// as separately produced segments, without concatenating them first.
///
/// [`Crc32::update`] consumes eight bytes per step (slice-by-8); the
/// byte-at-a-time reference lives on as [`Crc32::update_scalar`], and the
/// two are proven identical by the round-trip property suite. Every CRC in
/// the workspace — writer trailers, shard seals, delta envelopes, restore
/// verification, the compression container — streams through this one
/// implementation.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed `bytes` into the running checksum (slice-by-8).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // One unaligned little-endian load pair, eight table lookups;
            // the XOR tree has no loop-carried dependency besides `c`.
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            c = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The pre-slicing byte-at-a-time loop, kept as the reference the
    /// vectorized [`Crc32::update`] is checked (and benchmarked) against.
    pub fn update_scalar(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final CRC value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// IEEE CRC-32 of a complete buffer (one-shot form of [`Crc32`]).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// One-shot byte-at-a-time CRC-32 ([`Crc32::update_scalar`]): the baseline
/// the benches compare the slice-by-8 path against.
pub fn crc32_scalar(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update_scalar(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_scalar(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn sliced_crc_matches_scalar_at_every_length_and_split() {
        // Deterministic pseudo-random buffer; exercise every remainder
        // length around the 8-byte fold plus uneven streaming splits.
        let mut z = 0x1234_5678_9ABC_DEF0u64;
        let buf: Vec<u8> = (0..257)
            .map(|_| {
                z = z
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (z >> 33) as u8
            })
            .collect();
        for len in 0..buf.len() {
            assert_eq!(crc32(&buf[..len]), crc32_scalar(&buf[..len]), "len {len}");
            // Streaming across an arbitrary split must match too.
            let mut a = Crc32::new();
            a.update(&buf[..len / 3]);
            a.update(&buf[len / 3..len]);
            let mut b = Crc32::new();
            b.update_scalar(&buf[..len]);
            assert_eq!(a.finish(), b.finish(), "split at {} of {len}", len / 3);
        }
    }

    #[test]
    fn dtype_roundtrip() {
        for d in [DType::F64, DType::C128, DType::I64] {
            assert_eq!(DType::from_tag(d.tag()).unwrap(), d);
        }
        assert!(DType::from_tag(9).is_err());
    }

    #[test]
    fn var_data_sizes() {
        assert_eq!(VarData::F64(vec![0.0; 10]).full_bytes(), 80);
        assert_eq!(VarData::C128(vec![(0.0, 0.0); 10]).full_bytes(), 160);
        assert_eq!(VarData::I64(vec![0; 3]).full_bytes(), 24);
    }

    #[test]
    fn fill_policies_are_deterministic() {
        assert_eq!(FillPolicy::Zero.value(42), 0.0);
        assert_eq!(FillPolicy::Sentinel(9.5).value(0), 9.5);
        let a = FillPolicy::Garbage(7).value(3);
        let b = FillPolicy::Garbage(7).value(3);
        assert_eq!(a, b);
        assert!(a.is_finite());
        assert_ne!(
            FillPolicy::Garbage(7).value(3),
            FillPolicy::Garbage(7).value(4)
        );
    }

    #[test]
    fn storage_breakdown_totals() {
        let s = StorageBreakdown {
            payload_bytes: 1024,
            aux_bytes: 512,
            header_bytes: 64,
        };
        assert_eq!(s.total(), 1600);
        assert!((s.payload_kib() - 1.0).abs() < 1e-12);
    }
}
