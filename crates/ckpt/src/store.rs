//! Versioned checkpoint store: the operational wrapper HPC users expect
//! ("save several versions of checkpoint files to make the data more
//! durable" — paper §II.A), with keep-last-k retention.
//!
//! Retention is *chain-aware*: a delta checkpoint (see [`crate::delta`])
//! only restores through its ancestors, so pruning keeps every version a
//! retained delta transitively patches — a base is never deleted out from
//! under a live chain; old chains fall away wholesale once a newer full
//! checkpoint ages them out.

use crate::compress::{AtRest, CodecConfig};
use crate::delta::{self, DeltaPolicy};
use crate::format::{CkptError, StorageBreakdown, VarPlan, VarRecord};
use crate::names::{classify, CkptName};
use crate::reader::Checkpoint;
use crate::writer::{
    rebalance_breakdown, serialize_with, write_checkpoint_with, write_file_atomic,
};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// A directory of numbered checkpoints with bounded retention.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    next_version: u64,
    /// Delta-chain state: the last saved data-file image and its version,
    /// plus how many consecutive deltas the chain has grown since its
    /// base. Per-open: the first [`CheckpointStore::save_delta`] after
    /// `open` always writes a full base (chains never span reopens).
    /// The cached image is always the *raw* (uncompressed) serialized
    /// bytes — deltas diff canonical images, never stored containers.
    chain: Option<(u64, Vec<u8>)>,
    deltas_since_base: usize,
    codec: CodecConfig,
}

impl CheckpointStore {
    /// Open (or create) a store; keeps at most `keep` newest checkpoints.
    ///
    /// Opening also sweeps debris left by interrupted writes: `.tmp`
    /// files, auxiliary files with no surviving data file, and data
    /// shards whose manifest was never published.
    ///
    /// The sweep cannot distinguish a crashed writer's debris from a
    /// *live* writer's in-flight files, so do not open a store on a
    /// directory an async engine is concurrently publishing into —
    /// `drain()` the engine (or wait its tickets) first.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, CkptError> {
        if keep == 0 {
            return Err(CkptError::InvalidConfig(
                "a store must retain at least one checkpoint (keep >= 1)".into(),
            ));
        }
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Self::sweep_orphans(&dir)?;
        let next_version = Self::scan_versions(&dir)?.last().map_or(0, |v| v + 1);
        Ok(CheckpointStore {
            dir,
            keep,
            next_version,
            chain: None,
            deltas_since_base: 0,
            codec: CodecConfig::default(),
        })
    }

    /// Set the storage codec for subsequent saves (builder style). The
    /// default [`CodecConfig`] is a strict passthrough — every byte
    /// stream identical to a store without compression. Reads are
    /// codec-oblivious either way: the loaders sniff the `SCRUTCZB`
    /// container magic per object, so one store can hold a mix of
    /// compressed and raw checkpoints (e.g. after changing the codec
    /// mid-run, or when readers predate the writer's config).
    pub fn with_codec(mut self, codec: CodecConfig) -> Result<Self, CkptError> {
        codec.validate()?;
        self.codec = codec;
        Ok(self)
    }

    /// The codec applied to subsequent saves.
    pub fn codec(&self) -> &CodecConfig {
        &self.codec
    }

    /// Open (or create) `tenant`'s store inside a shared pool directory:
    /// the store rooted at `<pool>/<tenant>`, where the tenant's objects
    /// live under the pool-level names `<tenant>/ckpt_v...` (see
    /// [`crate::names`], "Tenant namespaces"). The open-time orphan
    /// sweep, retention, and version scans all operate on that
    /// subdirectory only — one tenant's sweep can never touch a
    /// sibling's files, and the pool root (the default tenant) never
    /// descends into tenant subdirectories.
    pub fn open_tenant(
        pool: impl AsRef<Path>,
        tenant: &crate::names::Tenant,
        keep: usize,
    ) -> Result<Self, CkptError> {
        Self::open(pool.as_ref().join(tenant.as_str()), keep)
    }

    /// A version exists once its data file (monolithic layout) or shard
    /// manifest (sharded layout) is published.
    fn scan_versions(dir: &Path) -> Result<Vec<u64>, CkptError> {
        let mut versions = BTreeSet::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            if let Some(v) = crate::names::committed_version(&name.to_string_lossy()) {
                versions.insert(v);
            }
        }
        Ok(versions.into_iter().collect())
    }

    /// Delete files interrupted writes leave behind. Writers publish
    /// `.tmp` → rename, data/shards before the manifest, and data before
    /// aux is *read*, so: `.tmp` files are always debris, an `.aux` with
    /// no commit marker (data file, manifest, or delta) is unreachable,
    /// and shards with no manifest were never committed.
    fn sweep_orphans(dir: &Path) -> Result<(), CkptError> {
        let mut committed = BTreeSet::new();
        let mut manifests = BTreeSet::new();
        let mut entries = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            match classify(&name) {
                CkptName::Data(v) | CkptName::Delta(v) => {
                    committed.insert(v);
                }
                CkptName::Manifest(v) => {
                    manifests.insert(v);
                    committed.insert(v);
                }
                _ => {}
            }
            entries.push((name, entry.path()));
        }
        for (name, path) in entries {
            let doomed = match classify(&name) {
                CkptName::Tmp => true,
                CkptName::Aux(v) => !committed.contains(&v),
                CkptName::Shard { version, .. } => !manifests.contains(&version),
                _ => false,
            };
            if doomed {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write the next checkpoint version; prunes old versions beyond the
    /// retention limit. Returns `(version, storage)`.
    pub fn save(
        &mut self,
        vars: &[VarRecord],
        plans: &[VarPlan],
    ) -> Result<(u64, StorageBreakdown), CkptError> {
        let version = self.next_version;
        let breakdown = write_checkpoint_with(&self.dir, version, vars, plans, &self.codec)?;
        self.next_version += 1;
        // A full save outside the delta API breaks the in-memory chain
        // state; the next save_delta starts a fresh base.
        self.chain = None;
        self.deltas_since_base = 0;
        self.prune()?;
        Ok((version, breakdown))
    }

    /// Write the next checkpoint version as part of a base+delta chain:
    /// the first call (and every call after `policy.rebase_every`
    /// consecutive deltas) writes a full base; the calls in between write
    /// only the pages of the serialized (AD-pruned) data file that
    /// changed since the previous epoch, as a `ckpt_v.delta` file (see
    /// [`crate::delta`]). Every version — base or delta — loads through
    /// [`CheckpointStore::load`] like any other checkpoint.
    pub fn save_delta(
        &mut self,
        vars: &[VarRecord],
        plans: &[VarPlan],
        policy: &DeltaPolicy,
    ) -> Result<(u64, StorageBreakdown), CkptError> {
        policy.validate()?;
        let version = self.next_version;
        let ser = serialize_with(vars, plans, self.codec.lo)?;
        fs::create_dir_all(&self.dir)?;
        // Diffing happens on raw serialized images inside publish_epoch;
        // at-rest compression is applied here, per stored object, so the
        // delta machinery never sees a container. Aux files stay raw.
        let at_rest = self.codec.at_rest;
        let saved = std::cell::Cell::new((0usize, 0usize)); // (raw, stored)
        let (breakdown, deltas_since_base) = delta::publish_epoch(
            version,
            policy,
            self.chain.as_ref(),
            self.deltas_since_base,
            &ser.data,
            ser.breakdown.payload_bytes,
            &ser.aux,
            ser.breakdown.aux_bytes,
            |name, bytes| {
                let stored;
                let bytes = match (at_rest, classify(name)) {
                    (AtRest::None, _) | (_, CkptName::Aux(_)) => bytes,
                    _ => {
                        stored = crate::compress::compress(bytes, at_rest);
                        let (r, s) = saved.get();
                        saved.set((r + bytes.len(), s + stored.len()));
                        stored.as_slice()
                    }
                };
                write_file_atomic(&self.dir.join(name), bytes)
            },
        )?;
        let (raw, stored) = saved.get();
        let breakdown = rebalance_breakdown(breakdown, raw, stored);
        self.deltas_since_base = deltas_since_base;
        self.chain = Some((version, ser.data));
        self.next_version += 1;
        self.prune()?;
        Ok((version, breakdown))
    }

    /// Remove every file of each version beyond the retention limit, in
    /// any layout, with a single directory scan — except versions a
    /// retained delta chain still depends on (computed by
    /// [`crate::delta::live_versions`]). Commit markers go first (newest
    /// version first) so a crash mid-removal leaves orphans the next
    /// `open` sweeps, not a committed-looking checkpoint that is half
    /// gone or whose chain ancestors are gone.
    fn prune(&self) -> Result<(), CkptError> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            entries.push((name, entry.path()));
        }
        let committed = delta::committed_kinds(entries.iter().map(|(n, _)| n.as_str()));
        if committed.len() <= self.keep {
            return Ok(());
        }
        let live = delta::live_versions(&committed, self.keep, |v| {
            delta::parent_version_at(&self.dir.join(crate::names::delta(v)))
        })?;
        let doomed: BTreeSet<u64> = committed
            .iter()
            .map(|&(v, _)| v)
            .filter(|v| !live.contains(v))
            .collect();
        if doomed.is_empty() {
            return Ok(());
        }
        // Commit markers first, newest version first: a doomed chain's
        // child deltas must stop looking committed before their base
        // disappears, so a crash mid-prune leaves (at worst) an intact,
        // still-loadable prefix of the chain plus orphans the next
        // `open` sweeps — never a committed-looking version whose
        // ancestors are gone.
        for &v in doomed.iter().rev() {
            let _ = fs::remove_file(self.dir.join(crate::names::delta(v)));
            let _ = fs::remove_file(crate::writer::manifest_file_name(&self.dir, v));
            let _ = fs::remove_file(self.dir.join(crate::names::data(v)));
        }
        for (name, path) in &entries {
            let version = match classify(name) {
                CkptName::Data(v)
                | CkptName::Aux(v)
                | CkptName::Manifest(v)
                | CkptName::Delta(v) => Some(v),
                CkptName::Shard { version, .. } => Some(version),
                CkptName::Tmp | CkptName::Foreign | CkptName::Other => None,
            };
            if version.is_some_and(|v| doomed.contains(&v)) {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Versions currently on disk, oldest first.
    pub fn versions(&self) -> Result<Vec<u64>, CkptError> {
        Self::scan_versions(&self.dir)
    }

    /// Newest version, if any checkpoint exists.
    pub fn latest(&self) -> Result<Option<u64>, CkptError> {
        Ok(Self::scan_versions(&self.dir)?.last().copied())
    }

    /// Load a specific version.
    pub fn load(&self, version: u64) -> Result<Checkpoint, CkptError> {
        Checkpoint::load(&self.dir, version)
    }

    /// Load the newest checkpoint (the restart path after a failure).
    pub fn load_latest(&self) -> Result<Checkpoint, CkptError> {
        let v = self
            .latest()?
            .ok_or_else(|| CkptError::Corrupt("store holds no checkpoints".into()))?;
        self.load(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FillPolicy, VarData};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("scrutiny_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn var(v: f64) -> Vec<VarRecord> {
        vec![VarRecord::new("x", VarData::F64(vec![v; 4]))]
    }

    #[test]
    fn save_load_latest() {
        let dir = tmpdir("sll");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        for i in 0..3 {
            store.save(&var(i as f64), &[VarPlan::Full]).unwrap();
        }
        let ck = store.load_latest().unwrap();
        let x = ck
            .var("x")
            .unwrap()
            .materialize_f64(FillPolicy::Zero)
            .unwrap();
        assert_eq!(x, vec![2.0; 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_old_versions() {
        let dir = tmpdir("ret");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for i in 0..5 {
            store.save(&var(i as f64), &[VarPlan::Full]).unwrap();
        }
        assert_eq!(store.versions().unwrap(), vec![3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_numbering() {
        let dir = tmpdir("reopen");
        {
            let mut store = CheckpointStore::open(&dir, 5).unwrap();
            store.save(&var(1.0), &[VarPlan::Full]).unwrap();
        }
        let mut store = CheckpointStore::open(&dir, 5).unwrap();
        let (v, _) = store.save(&var(2.0), &[VarPlan::Full]).unwrap();
        assert_eq!(v, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_retention_is_an_error_not_a_panic() {
        let dir = tmpdir("keep0");
        match CheckpointStore::open(&dir, 0) {
            Err(CkptError::InvalidConfig(msg)) => assert!(msg.contains("at least one")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_tmp_aux_and_shard_files() {
        let dir = tmpdir("sweep");
        // A valid checkpoint that must survive the sweep.
        {
            let mut store = CheckpointStore::open(&dir, 3).unwrap();
            store.save(&var(1.0), &[VarPlan::Full]).unwrap();
        }
        // Plant debris from interrupted writes.
        fs::write(dir.join("ckpt_000009.data.tmp"), b"half").unwrap();
        fs::write(dir.join("ckpt_000009.aux.tmp"), b"half").unwrap();
        fs::write(dir.join("ckpt_000007.aux"), b"orphan aux").unwrap();
        fs::write(dir.join("ckpt_000008.data.s000"), b"orphan shard").unwrap();
        fs::write(dir.join("ckpt_000008.data.s001"), b"orphan shard").unwrap();
        fs::write(dir.join("ckpt_000008.aux"), b"aux of unpublished").unwrap();
        fs::write(dir.join("notes.txt"), b"unrelated").unwrap();

        let store = CheckpointStore::open(&dir, 3).unwrap();
        assert_eq!(store.versions().unwrap(), vec![0]);
        let left: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        for gone in [
            "ckpt_000009.data.tmp",
            "ckpt_000009.aux.tmp",
            "ckpt_000007.aux",
            "ckpt_000008.data.s000",
            "ckpt_000008.data.s001",
            "ckpt_000008.aux",
        ] {
            assert!(
                !left.iter().any(|n| n == gone),
                "{gone} not swept: {left:?}"
            );
        }
        assert!(left.iter().any(|n| n == "ckpt_000000.data"));
        assert!(left.iter().any(|n| n == "ckpt_000000.aux"));
        assert!(
            left.iter().any(|n| n == "notes.txt"),
            "sweep must not touch foreign files"
        );
        // The surviving checkpoint still loads.
        assert!(store.load_latest().is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_delta_writes_base_then_deltas_and_rebases() {
        use crate::names;
        let dir = tmpdir("delta_chain");
        let mut store = CheckpointStore::open(&dir, 16).unwrap();
        let policy = DeltaPolicy {
            page_bytes: 64,
            rebase_every: 2,
        };
        let mut vals = vec![0.5f64; 64];
        for i in 0..5u64 {
            vals[0] = i as f64; // localized change: first page only
            let vars = vec![VarRecord::new("x", VarData::F64(vals.clone()))];
            let (v, bd) = store.save_delta(&vars, &[VarPlan::Full], &policy).unwrap();
            assert_eq!(v, i);
            // Every version restores through the ordinary reader.
            let got = store
                .load(v)
                .unwrap()
                .var("x")
                .unwrap()
                .materialize_f64(FillPolicy::Zero)
                .unwrap();
            assert_eq!(got, vals, "version {v}");
            // rebase_every = 2 → epochs 1, 2 and 4 are deltas (0 and 3
            // are full); a one-page delta is far smaller than the payload.
            if matches!(i, 1 | 2 | 4) {
                assert!(
                    bd.total() < 64 * 8,
                    "epoch {i}: delta wrote {} bytes",
                    bd.total()
                );
            }
        }
        // rebase_every = 2 → versions 0 and 3 are full, the rest deltas.
        for (v, is_delta) in [(0, false), (1, true), (2, true), (3, false), (4, true)] {
            assert_eq!(
                dir.join(names::delta(v)).exists(),
                is_delta,
                "version {v} delta marker"
            );
            assert_eq!(
                dir.join(names::data(v)).exists(),
                !is_delta,
                "version {v} data marker"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chain_aware_prune_never_orphans_a_live_delta() {
        let dir = tmpdir("delta_ret");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        let policy = DeltaPolicy {
            page_bytes: 64,
            rebase_every: 3,
        };
        let mut vals = vec![1.0f64; 32];
        for i in 0..4u64 {
            vals[0] = i as f64;
            let vars = vec![VarRecord::new("x", VarData::F64(vals.clone()))];
            store.save_delta(&vars, &[VarPlan::Full], &policy).unwrap();
        }
        // Versions: 0 full, 1..=3 deltas. keep=2 would naively leave
        // {2, 3}, but both chain back to base 0 — everything must stay.
        assert_eq!(store.versions().unwrap(), vec![0, 1, 2, 3]);
        assert!(store.load(3).unwrap().var("x").is_ok());

        // Two more epochs: 4 is a rebase (full), 5 a delta on 4. Now the
        // newest two {4, 5} only need 4, so the old chain 0..=3 goes.
        for i in 4..6u64 {
            vals[0] = i as f64;
            let vars = vec![VarRecord::new("x", VarData::F64(vals.clone()))];
            store.save_delta(&vars, &[VarPlan::Full], &policy).unwrap();
        }
        assert_eq!(store.versions().unwrap(), vec![4, 5]);
        let got = store
            .load(5)
            .unwrap()
            .var("x")
            .unwrap()
            .materialize_f64(FillPolicy::Zero)
            .unwrap();
        assert_eq!(got, vals);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_delta_rejects_invalid_policy() {
        let dir = tmpdir("delta_cfg");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        let bad = DeltaPolicy {
            page_bytes: 0,
            rebase_every: 2,
        };
        assert!(matches!(
            store.save_delta(&var(1.0), &[VarPlan::Full], &bad),
            Err(CkptError::InvalidConfig(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_keeps_aux_of_delta_committed_versions() {
        let dir = tmpdir("delta_sweep");
        let policy = DeltaPolicy {
            page_bytes: 64,
            rebase_every: 4,
        };
        {
            let mut store = CheckpointStore::open(&dir, 4).unwrap();
            store
                .save_delta(&var(1.0), &[VarPlan::Full], &policy)
                .unwrap();
            store
                .save_delta(&var(2.0), &[VarPlan::Full], &policy)
                .unwrap();
        }
        // Reopen: version 1's only data marker is its .delta file — the
        // sweep must not treat its aux as an orphan.
        let store = CheckpointStore::open(&dir, 4).unwrap();
        assert_eq!(store.versions().unwrap(), vec![0, 1]);
        assert!(store.load(1).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_store_roundtrips_and_shrinks_on_disk() {
        use crate::compress::{AtRest, LoCodec};
        let dir = tmpdir("codec");
        let dir_raw = tmpdir("codec_raw");
        let codec = CodecConfig {
            at_rest: AtRest::Auto,
            lo: LoCodec::F32,
        };
        let mut store = CheckpointStore::open(&dir, 8)
            .unwrap()
            .with_codec(codec)
            .unwrap();
        let mut raw_store = CheckpointStore::open(&dir_raw, 8).unwrap();
        let policy = DeltaPolicy {
            page_bytes: 64,
            rebase_every: 3,
        };
        // Smooth data compresses well under the bit-plane codec.
        let mut vals: Vec<f64> = (0..512).map(|i| 1.0 + i as f64 * 1e-6).collect();
        for i in 0..4u64 {
            vals[0] = i as f64;
            let vars = vec![VarRecord::new("x", VarData::F64(vals.clone()))];
            let (v, bd) = store.save_delta(&vars, &[VarPlan::Full], &policy).unwrap();
            let (_, raw_bd) = raw_store
                .save_delta(&vars, &[VarPlan::Full], &policy)
                .unwrap();
            // Breakdown totals equal actually-stored bytes, which shrink.
            assert!(
                bd.total() < raw_bd.total(),
                "epoch {i}: {} !< {}",
                bd.total(),
                raw_bd.total()
            );
            // Every version — compressed base or compressed delta —
            // restores bit-identically through the ordinary reader.
            let got = store
                .load(v)
                .unwrap()
                .var("x")
                .unwrap()
                .materialize_f64(FillPolicy::Zero)
                .unwrap();
            assert_eq!(got, vals, "version {v}");
        }
        // The base data file on disk is an SCRUTCZB container.
        let base = fs::read(dir.join(crate::names::data(0))).unwrap();
        assert!(crate::compress::is_container(&base));
        // Aux files are never compressed.
        let aux = fs::read(dir.join(crate::names::aux(0))).unwrap();
        assert!(!crate::compress::is_container(&aux));
        // Chain-aware prune still works across compressed deltas (it
        // must read parent pointers through the container).
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir_raw).unwrap();
    }

    #[test]
    fn empty_store_latest_is_none() {
        let dir = tmpdir("empty");
        let store = CheckpointStore::open(&dir, 1).unwrap();
        assert_eq!(store.latest().unwrap(), None);
        assert!(store.load_latest().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
