//! Versioned checkpoint store: the operational wrapper HPC users expect
//! ("save several versions of checkpoint files to make the data more
//! durable" — paper §II.A), with keep-last-k retention.

use crate::format::{CkptError, StorageBreakdown, VarPlan, VarRecord};
use crate::names::{classify, CkptName};
use crate::reader::Checkpoint;
use crate::writer::write_checkpoint;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// A directory of numbered checkpoints with bounded retention.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    next_version: u64,
}

impl CheckpointStore {
    /// Open (or create) a store; keeps at most `keep` newest checkpoints.
    ///
    /// Opening also sweeps debris left by interrupted writes: `.tmp`
    /// files, auxiliary files with no surviving data file, and data
    /// shards whose manifest was never published.
    ///
    /// The sweep cannot distinguish a crashed writer's debris from a
    /// *live* writer's in-flight files, so do not open a store on a
    /// directory an async engine is concurrently publishing into —
    /// `drain()` the engine (or wait its tickets) first.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, CkptError> {
        if keep == 0 {
            return Err(CkptError::InvalidConfig(
                "a store must retain at least one checkpoint (keep >= 1)".into(),
            ));
        }
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Self::sweep_orphans(&dir)?;
        let next_version = Self::scan_versions(&dir)?.last().map_or(0, |v| v + 1);
        Ok(CheckpointStore {
            dir,
            keep,
            next_version,
        })
    }

    /// A version exists once its data file (monolithic layout) or shard
    /// manifest (sharded layout) is published.
    fn scan_versions(dir: &Path) -> Result<Vec<u64>, CkptError> {
        let mut versions = BTreeSet::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            if let Some(v) = crate::names::committed_version(&name.to_string_lossy()) {
                versions.insert(v);
            }
        }
        Ok(versions.into_iter().collect())
    }

    /// Delete files interrupted writes leave behind. Writers publish
    /// `.tmp` → rename, data/shards before the manifest, and data before
    /// aux is *read*, so: `.tmp` files are always debris, an `.aux` with
    /// no data file or manifest is unreachable, and shards with no
    /// manifest were never committed.
    fn sweep_orphans(dir: &Path) -> Result<(), CkptError> {
        let mut data = BTreeSet::new();
        let mut manifests = BTreeSet::new();
        let mut entries = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            match classify(&name) {
                CkptName::Data(v) => {
                    data.insert(v);
                }
                CkptName::Manifest(v) => {
                    manifests.insert(v);
                }
                _ => {}
            }
            entries.push((name, entry.path()));
        }
        for (name, path) in entries {
            let doomed = match classify(&name) {
                CkptName::Tmp => true,
                CkptName::Aux(v) => !data.contains(&v) && !manifests.contains(&v),
                CkptName::Shard { version, .. } => !manifests.contains(&version),
                _ => false,
            };
            if doomed {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write the next checkpoint version; prunes old versions beyond the
    /// retention limit. Returns `(version, storage)`.
    pub fn save(
        &mut self,
        vars: &[VarRecord],
        plans: &[VarPlan],
    ) -> Result<(u64, StorageBreakdown), CkptError> {
        let version = self.next_version;
        let breakdown = write_checkpoint(&self.dir, version, vars, plans)?;
        self.next_version += 1;
        self.prune()?;
        Ok((version, breakdown))
    }

    /// Remove every file of each version beyond the retention limit, in
    /// either layout, with a single directory scan. Manifests go first so
    /// a crash mid-removal leaves orphans the next `open` sweeps, not a
    /// half checkpoint that still looks committed.
    fn prune(&self) -> Result<(), CkptError> {
        let versions = Self::scan_versions(&self.dir)?;
        if versions.len() <= self.keep {
            return Ok(());
        }
        let doomed: BTreeSet<u64> = versions[..versions.len() - self.keep]
            .iter()
            .copied()
            .collect();
        for &v in &doomed {
            let _ = fs::remove_file(crate::writer::manifest_file_name(&self.dir, v));
        }
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let version = match classify(&name) {
                CkptName::Data(v) | CkptName::Aux(v) | CkptName::Manifest(v) => Some(v),
                CkptName::Shard { version, .. } => Some(version),
                CkptName::Tmp | CkptName::Other => None,
            };
            if version.is_some_and(|v| doomed.contains(&v)) {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// Versions currently on disk, oldest first.
    pub fn versions(&self) -> Result<Vec<u64>, CkptError> {
        Self::scan_versions(&self.dir)
    }

    /// Newest version, if any checkpoint exists.
    pub fn latest(&self) -> Result<Option<u64>, CkptError> {
        Ok(Self::scan_versions(&self.dir)?.last().copied())
    }

    /// Load a specific version.
    pub fn load(&self, version: u64) -> Result<Checkpoint, CkptError> {
        Checkpoint::load(&self.dir, version)
    }

    /// Load the newest checkpoint (the restart path after a failure).
    pub fn load_latest(&self) -> Result<Checkpoint, CkptError> {
        let v = self
            .latest()?
            .ok_or_else(|| CkptError::Corrupt("store holds no checkpoints".into()))?;
        self.load(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FillPolicy, VarData};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("scrutiny_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn var(v: f64) -> Vec<VarRecord> {
        vec![VarRecord::new("x", VarData::F64(vec![v; 4]))]
    }

    #[test]
    fn save_load_latest() {
        let dir = tmpdir("sll");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        for i in 0..3 {
            store.save(&var(i as f64), &[VarPlan::Full]).unwrap();
        }
        let ck = store.load_latest().unwrap();
        let x = ck
            .var("x")
            .unwrap()
            .materialize_f64(FillPolicy::Zero)
            .unwrap();
        assert_eq!(x, vec![2.0; 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_old_versions() {
        let dir = tmpdir("ret");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for i in 0..5 {
            store.save(&var(i as f64), &[VarPlan::Full]).unwrap();
        }
        assert_eq!(store.versions().unwrap(), vec![3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_numbering() {
        let dir = tmpdir("reopen");
        {
            let mut store = CheckpointStore::open(&dir, 5).unwrap();
            store.save(&var(1.0), &[VarPlan::Full]).unwrap();
        }
        let mut store = CheckpointStore::open(&dir, 5).unwrap();
        let (v, _) = store.save(&var(2.0), &[VarPlan::Full]).unwrap();
        assert_eq!(v, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_retention_is_an_error_not_a_panic() {
        let dir = tmpdir("keep0");
        match CheckpointStore::open(&dir, 0) {
            Err(CkptError::InvalidConfig(msg)) => assert!(msg.contains("at least one")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_tmp_aux_and_shard_files() {
        let dir = tmpdir("sweep");
        // A valid checkpoint that must survive the sweep.
        {
            let mut store = CheckpointStore::open(&dir, 3).unwrap();
            store.save(&var(1.0), &[VarPlan::Full]).unwrap();
        }
        // Plant debris from interrupted writes.
        fs::write(dir.join("ckpt_000009.data.tmp"), b"half").unwrap();
        fs::write(dir.join("ckpt_000009.aux.tmp"), b"half").unwrap();
        fs::write(dir.join("ckpt_000007.aux"), b"orphan aux").unwrap();
        fs::write(dir.join("ckpt_000008.data.s000"), b"orphan shard").unwrap();
        fs::write(dir.join("ckpt_000008.data.s001"), b"orphan shard").unwrap();
        fs::write(dir.join("ckpt_000008.aux"), b"aux of unpublished").unwrap();
        fs::write(dir.join("notes.txt"), b"unrelated").unwrap();

        let store = CheckpointStore::open(&dir, 3).unwrap();
        assert_eq!(store.versions().unwrap(), vec![0]);
        let left: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        for gone in [
            "ckpt_000009.data.tmp",
            "ckpt_000009.aux.tmp",
            "ckpt_000007.aux",
            "ckpt_000008.data.s000",
            "ckpt_000008.data.s001",
            "ckpt_000008.aux",
        ] {
            assert!(
                !left.iter().any(|n| n == gone),
                "{gone} not swept: {left:?}"
            );
        }
        assert!(left.iter().any(|n| n == "ckpt_000000.data"));
        assert!(left.iter().any(|n| n == "ckpt_000000.aux"));
        assert!(
            left.iter().any(|n| n == "notes.txt"),
            "sweep must not touch foreign files"
        );
        // The surviving checkpoint still loads.
        assert!(store.load_latest().is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_latest_is_none() {
        let dir = tmpdir("empty");
        let store = CheckpointStore::open(&dir, 1).unwrap();
        assert_eq!(store.latest().unwrap(), None);
        assert!(store.load_latest().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
