//! Versioned checkpoint store: the operational wrapper HPC users expect
//! ("save several versions of checkpoint files to make the data more
//! durable" — paper §II.A), with keep-last-k retention.

use crate::format::{CkptError, StorageBreakdown, VarPlan, VarRecord};
use crate::reader::Checkpoint;
use crate::writer::{file_names, write_checkpoint};
use std::fs;
use std::path::{Path, PathBuf};

/// A directory of numbered checkpoints with bounded retention.
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    next_version: u64,
}

impl CheckpointStore {
    /// Open (or create) a store; keeps at most `keep` newest checkpoints.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, CkptError> {
        assert!(keep >= 1, "a store must retain at least one checkpoint");
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let next_version = Self::scan_versions(&dir)?.last().map_or(0, |v| v + 1);
        Ok(CheckpointStore {
            dir,
            keep,
            next_version,
        })
    }

    fn scan_versions(dir: &Path) -> Result<Vec<u64>, CkptError> {
        let mut versions = Vec::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("ckpt_")
                .and_then(|s| s.strip_suffix(".data"))
            {
                if let Ok(v) = num.parse::<u64>() {
                    versions.push(v);
                }
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// Directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write the next checkpoint version; prunes old versions beyond the
    /// retention limit. Returns `(version, storage)`.
    pub fn save(
        &mut self,
        vars: &[VarRecord],
        plans: &[VarPlan],
    ) -> Result<(u64, StorageBreakdown), CkptError> {
        let version = self.next_version;
        let breakdown = write_checkpoint(&self.dir, version, vars, plans)?;
        self.next_version += 1;
        self.prune()?;
        Ok((version, breakdown))
    }

    fn prune(&self) -> Result<(), CkptError> {
        let versions = Self::scan_versions(&self.dir)?;
        if versions.len() > self.keep {
            for &v in &versions[..versions.len() - self.keep] {
                let (d, a) = file_names(&self.dir, v);
                let _ = fs::remove_file(d);
                let _ = fs::remove_file(a);
            }
        }
        Ok(())
    }

    /// Versions currently on disk, oldest first.
    pub fn versions(&self) -> Result<Vec<u64>, CkptError> {
        Self::scan_versions(&self.dir)
    }

    /// Newest version, if any checkpoint exists.
    pub fn latest(&self) -> Result<Option<u64>, CkptError> {
        Ok(Self::scan_versions(&self.dir)?.last().copied())
    }

    /// Load a specific version.
    pub fn load(&self, version: u64) -> Result<Checkpoint, CkptError> {
        Checkpoint::load(&self.dir, version)
    }

    /// Load the newest checkpoint (the restart path after a failure).
    pub fn load_latest(&self) -> Result<Checkpoint, CkptError> {
        let v = self
            .latest()?
            .ok_or_else(|| CkptError::Corrupt("store holds no checkpoints".into()))?;
        self.load(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FillPolicy, VarData};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("scrutiny_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn var(v: f64) -> Vec<VarRecord> {
        vec![VarRecord::new("x", VarData::F64(vec![v; 4]))]
    }

    #[test]
    fn save_load_latest() {
        let dir = tmpdir("sll");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        for i in 0..3 {
            store.save(&var(i as f64), &[VarPlan::Full]).unwrap();
        }
        let ck = store.load_latest().unwrap();
        let x = ck
            .var("x")
            .unwrap()
            .materialize_f64(FillPolicy::Zero)
            .unwrap();
        assert_eq!(x, vec![2.0; 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_old_versions() {
        let dir = tmpdir("ret");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for i in 0..5 {
            store.save(&var(i as f64), &[VarPlan::Full]).unwrap();
        }
        assert_eq!(store.versions().unwrap(), vec![3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_numbering() {
        let dir = tmpdir("reopen");
        {
            let mut store = CheckpointStore::open(&dir, 5).unwrap();
            store.save(&var(1.0), &[VarPlan::Full]).unwrap();
        }
        let mut store = CheckpointStore::open(&dir, 5).unwrap();
        let (v, _) = store.save(&var(2.0), &[VarPlan::Full]).unwrap();
        assert_eq!(v, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_latest_is_none() {
        let dir = tmpdir("empty");
        let store = CheckpointStore::open(&dir, 1).unwrap();
        assert_eq!(store.latest().unwrap(), None);
        assert!(store.load_latest().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
