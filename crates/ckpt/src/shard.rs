//! Shard-aware checkpoint serialization.
//!
//! The monolithic [`crate::writer::serialize_data`] walks every stored
//! element on one thread. For large variables that serialization *is* the
//! checkpoint stall the paper's storage reduction is meant to shrink, so
//! the async engine splits the data file into independently serializable
//! byte segments ("shards") that worker threads produce concurrently:
//!
//! * [`plan_shards`] — deterministically partition the data file into
//!   roughly equal payload segments, splitting *inside* large variables at
//!   stored-element granularity (via [`crate::Regions::covered_range`]) so one
//!   big array does not serialize on a single core.
//! * [`serialize_shard`] — produce the bytes of one segment. The
//!   concatenation of all segments plus the CRC trailer is **bit-identical**
//!   to the monolithic writer's output, so the existing reader accepts it
//!   unchanged.
//! * [`seal_shards`] — append the CRC trailer and compute a
//!   [`ShardManifest`]: the shard-aware format metadata (per-shard length
//!   and CRC) that lets a reader or a striped storage backend reassemble
//!   and verify the segments.
//!
//! A checkpoint may be *stored* sharded too (`ckpt_v.data.sNNN` files plus
//! a `ckpt_v.smf` manifest); [`crate::reader::Checkpoint::load`] accepts
//! both layouts.

use crate::compress::LoCodec;
use crate::format::{crc32, CkptError, Crc32, VarData, VarPlan, VarRecord};
use crate::writer::{
    plan_mode, put_u16, put_u32, put_u64, validate, write_elements, DATA_MAGIC, FORMAT_VERSION,
    FORMAT_VERSION_TIERED,
};

const MANIFEST_MAGIC: &[u8; 8] = b"SCRUTSHM";
const MANIFEST_VERSION: u32 = 1;

/// Which payload section of a variable an element range draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Section {
    /// The single section of a Full/Pruned variable.
    Main,
    /// Tiered full-precision (f64) section.
    Hi,
    /// Tiered reduced-precision (f32) section.
    Lo,
}

/// One serialization instruction; a shard is a sequence of these.
#[derive(Clone, Debug)]
enum Op {
    /// File magic + format version + variable count.
    FileHeader,
    /// Variable name, dtype, mode, total, and the first section's count.
    VarHeader(usize),
    /// The `lo` section count of a tiered variable (sits between the hi
    /// and lo payloads in the wire format).
    LoCount(usize),
    /// Stored-order elements `k0..k1` of one section of one variable.
    Elems {
        var: usize,
        section: Section,
        k0: u64,
        k1: u64,
    },
}

/// A deterministic split of one checkpoint's data file into independently
/// serializable segments. Produced by [`plan_shards`]; consumed shard by
/// shard via [`serialize_shard`].
#[derive(Clone, Debug)]
pub struct ShardPlan {
    chunks: Vec<Vec<Op>>,
    /// Lo-tier element codec the shards serialize with; carried in the
    /// plan so every worker emits the same format version and widths.
    lo_codec: LoCodec,
}

impl ShardPlan {
    /// Number of shards in the plan (≥ 1; close to the requested target —
    /// the greedy split may exceed it by a few when element widths don't
    /// divide the per-shard byte budget evenly).
    pub fn shard_count(&self) -> usize {
        self.chunks.len()
    }
}

fn section_elem_bytes(dtype: crate::DType, section: Section, lo_codec: LoCodec) -> u64 {
    match section {
        Section::Main => dtype.elem_bytes() as u64,
        Section::Hi => 8,
        Section::Lo => lo_codec.width() as u64,
    }
}

fn section_covered(plan: &VarPlan, section: Section, total: u64) -> u64 {
    match (plan, section) {
        (VarPlan::Full, Section::Main) => total,
        (VarPlan::Pruned(r), Section::Main) => r.covered(),
        (VarPlan::Tiered { hi, .. }, Section::Hi) => hi.covered(),
        (VarPlan::Tiered { lo, .. }, Section::Lo) => lo.covered(),
        _ => unreachable!("section does not exist for this plan"),
    }
}

/// Partition the data file for `vars`/`plans` into roughly
/// `target_shards` segments of roughly equal payload size (rounding at
/// element boundaries can produce a few more than the target — see
/// [`ShardPlan::shard_count`]). Validates the plans exactly as the
/// monolithic writer does.
pub fn plan_shards(
    vars: &[VarRecord],
    plans: &[VarPlan],
    target_shards: usize,
) -> Result<ShardPlan, CkptError> {
    plan_shards_with(vars, plans, target_shards, LoCodec::F32)
}

/// [`plan_shards`] with an explicit lo-tier codec: the codec changes the
/// lo section's element width (and the emitted format version), so it
/// must shape the split too — the shards stay bit-identical to
/// [`crate::writer::serialize_data_with`] of the same codec.
pub fn plan_shards_with(
    vars: &[VarRecord],
    plans: &[VarPlan],
    target_shards: usize,
    lo_codec: LoCodec,
) -> Result<ShardPlan, CkptError> {
    if target_shards == 0 {
        return Err(CkptError::InvalidConfig(
            "a shard plan needs at least one shard".into(),
        ));
    }
    validate(vars, plans)?;
    lo_codec.validate()?;

    // Flatten the file into ops, tracking payload bytes per element op.
    struct SizedOp {
        op: Op,
        elem_bytes: u64, // 0 for header ops
        elems: u64,
    }
    let mut ops: Vec<SizedOp> = vec![SizedOp {
        op: Op::FileHeader,
        elem_bytes: 0,
        elems: 0,
    }];
    let mut total_payload = 0u64;
    for (i, (v, p)) in vars.iter().zip(plans).enumerate() {
        ops.push(SizedOp {
            op: Op::VarHeader(i),
            elem_bytes: 0,
            elems: 0,
        });
        let sections: &[Section] = match p {
            VarPlan::Tiered { .. } => &[Section::Hi, Section::Lo],
            _ => &[Section::Main],
        };
        for &s in sections {
            if s == Section::Lo {
                ops.push(SizedOp {
                    op: Op::LoCount(i),
                    elem_bytes: 0,
                    elems: 0,
                });
            }
            let covered = section_covered(p, s, v.data.len() as u64);
            let eb = section_elem_bytes(v.data.dtype(), s, lo_codec);
            total_payload += covered * eb;
            if covered > 0 {
                ops.push(SizedOp {
                    op: Op::Elems {
                        var: i,
                        section: s,
                        k0: 0,
                        k1: covered,
                    },
                    elem_bytes: eb,
                    elems: covered,
                });
            }
        }
    }

    // Greedy fill: close a chunk once it holds ~total/target payload bytes.
    // Floor of 16 bytes guarantees progress for the widest element (c128).
    let target = (total_payload.div_ceil(target_shards as u64)).max(16);
    let mut chunks: Vec<Vec<Op>> = Vec::new();
    let mut cur: Vec<Op> = Vec::new();
    let mut cur_payload = 0u64;
    for sized in ops {
        if sized.elem_bytes == 0 {
            cur.push(sized.op);
            continue;
        }
        let Op::Elems { var, section, .. } = sized.op else {
            unreachable!("payload op is always Elems")
        };
        let mut k = 0u64;
        while k < sized.elems {
            let room = (target.saturating_sub(cur_payload)) / sized.elem_bytes;
            if room == 0 {
                chunks.push(std::mem::take(&mut cur));
                cur_payload = 0;
                continue;
            }
            let take = room.min(sized.elems - k);
            cur.push(Op::Elems {
                var,
                section,
                k0: k,
                k1: k + take,
            });
            cur_payload += take * sized.elem_bytes;
            k += take;
        }
    }
    if !cur.is_empty() || chunks.is_empty() {
        chunks.push(cur);
    }
    Ok(ShardPlan { chunks, lo_codec })
}

/// Serialize shard `idx` of `plan`. Returns `(bytes, payload_bytes)`;
/// concatenating all shards in order and appending the [`seal_shards`]
/// CRC trailer reproduces [`crate::writer::serialize_data`] byte for byte.
pub fn serialize_shard(
    vars: &[VarRecord],
    plans: &[VarPlan],
    plan: &ShardPlan,
    idx: usize,
) -> (Vec<u8>, usize) {
    let mut out = Vec::new();
    let mut payload = 0usize;
    for op in &plan.chunks[idx] {
        match *op {
            Op::FileHeader => {
                out.extend_from_slice(DATA_MAGIC);
                if plan.lo_codec == LoCodec::F32 {
                    put_u32(&mut out, FORMAT_VERSION);
                } else {
                    put_u32(&mut out, FORMAT_VERSION_TIERED);
                    out.push(plan.lo_codec.tag());
                }
                put_u32(&mut out, vars.len() as u32);
            }
            Op::VarHeader(i) => {
                let (v, p) = (&vars[i], &plans[i]);
                let name = v.name.as_bytes();
                assert!(name.len() <= u16::MAX as usize, "variable name too long");
                put_u16(&mut out, name.len() as u16);
                out.extend_from_slice(name);
                out.push(v.data.dtype().tag());
                out.push(plan_mode(p));
                put_u64(&mut out, v.data.len() as u64);
                let first_count = match p {
                    VarPlan::Full => v.data.len() as u64,
                    VarPlan::Pruned(r) => r.covered(),
                    VarPlan::Tiered { hi, .. } => hi.covered(),
                };
                put_u64(&mut out, first_count);
            }
            Op::LoCount(i) => {
                let VarPlan::Tiered { lo, .. } = &plans[i] else {
                    unreachable!("LoCount only planned for tiered variables")
                };
                put_u64(&mut out, lo.covered());
            }
            Op::Elems {
                var,
                section,
                k0,
                k1,
            } => {
                let (v, p) = (&vars[var], &plans[var]);
                match (p, section) {
                    (VarPlan::Full, Section::Main) => {
                        payload += write_elements(&mut out, &v.data, k0..k1);
                    }
                    (VarPlan::Pruned(r), Section::Main) => {
                        payload +=
                            write_elements(&mut out, &v.data, r.covered_range(k0, k1).indices());
                    }
                    (VarPlan::Tiered { hi, .. }, Section::Hi) => {
                        let VarData::F64(vals) = &v.data else {
                            unreachable!("validated: tiered requires f64")
                        };
                        for i in hi.covered_range(k0, k1).indices() {
                            out.extend_from_slice(&vals[i as usize].to_le_bytes());
                            payload += 8;
                        }
                    }
                    (VarPlan::Tiered { lo, .. }, Section::Lo) => {
                        let VarData::F64(vals) = &v.data else {
                            unreachable!("validated: tiered requires f64")
                        };
                        let width = plan.lo_codec.width();
                        for i in lo.covered_range(k0, k1).indices() {
                            plan.lo_codec.encode_into(&mut out, vals[i as usize]);
                            payload += width;
                        }
                    }
                    _ => unreachable!("planned section matches the plan"),
                }
            }
        }
    }
    (out, payload)
}

/// Shard-aware format metadata: how a data file was split, so segments can
/// be verified and reassembled by any storage backend or the reader.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Total data-file length (including the CRC trailer) in bytes.
    pub total_len: u64,
    /// Per-shard byte lengths, in order; sums to `total_len`.
    pub shard_lens: Vec<u64>,
    /// Per-shard CRC-32, so a damaged shard is identified individually.
    pub shard_crcs: Vec<u32>,
}

impl ShardManifest {
    /// Number of shards described.
    pub fn shard_count(&self) -> usize {
        self.shard_lens.len()
    }

    /// Serialize (magic, version, counts, per-shard entries, CRC trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        put_u32(&mut out, MANIFEST_VERSION);
        put_u32(&mut out, self.shard_lens.len() as u32);
        put_u64(&mut out, self.total_len);
        for (&len, &crc) in self.shard_lens.iter().zip(&self.shard_crcs) {
            put_u64(&mut out, len);
            put_u32(&mut out, crc);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Parse and checksum-verify a manifest.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CkptError> {
        if buf.len() < 8 + 4 + 4 + 8 + 4 {
            return Err(CkptError::Corrupt("shard manifest too short".into()));
        }
        if &buf[..8] != MANIFEST_MAGIC {
            return Err(CkptError::Corrupt("shard manifest has wrong magic".into()));
        }
        let body = &buf[..buf.len() - 4];
        let expected = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
        let actual = crc32(body);
        if expected != actual {
            return Err(CkptError::ChecksumMismatch { expected, actual });
        }
        let nshards = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let total_len = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let need = 24 + nshards * 12 + 4;
        if buf.len() != need {
            return Err(CkptError::Corrupt(format!(
                "shard manifest declares {nshards} shards but is {} bytes (expected {need})",
                buf.len()
            )));
        }
        let mut shard_lens = Vec::with_capacity(nshards);
        let mut shard_crcs = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let off = 24 + i * 12;
            shard_lens.push(u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()));
            shard_crcs.push(u32::from_le_bytes(
                buf[off + 8..off + 12].try_into().unwrap(),
            ));
        }
        if shard_lens.iter().sum::<u64>() != total_len {
            return Err(CkptError::Corrupt(
                "shard manifest lengths do not sum to the total".into(),
            ));
        }
        Ok(ShardManifest {
            total_len,
            shard_lens,
            shard_crcs,
        })
    }

    /// Verify each segment against the manifest and concatenate them back
    /// into the monolithic data file the reader parses.
    pub fn assemble(&self, shards: &[Vec<u8>]) -> Result<Vec<u8>, CkptError> {
        if shards.len() != self.shard_count() {
            return Err(CkptError::Corrupt(format!(
                "manifest describes {} shards, {} provided",
                self.shard_count(),
                shards.len()
            )));
        }
        let mut out = Vec::with_capacity(self.total_len as usize);
        for (i, shard) in shards.iter().enumerate() {
            if shard.len() as u64 != self.shard_lens[i] {
                return Err(CkptError::Corrupt(format!(
                    "shard {i} is {} bytes, manifest says {}",
                    shard.len(),
                    self.shard_lens[i]
                )));
            }
            let actual = crc32(shard);
            if actual != self.shard_crcs[i] {
                return Err(CkptError::ChecksumMismatch {
                    expected: self.shard_crcs[i],
                    actual,
                });
            }
            out.extend_from_slice(shard);
        }
        Ok(out)
    }
}

/// Reassemble the sharded data file of checkpoint `version` into the
/// monolithic byte image the parser consumes. `fetch` resolves an object
/// name (see [`crate::names`]) to its bytes — a directory read for the
/// on-disk layout, a backend `get` for the async engine's stores. Every
/// shard is length- and CRC-verified against the manifest.
pub fn read_sharded_data(
    version: u64,
    mut fetch: impl FnMut(&str) -> Result<Vec<u8>, CkptError>,
) -> Result<Vec<u8>, CkptError> {
    let manifest = ShardManifest::from_bytes(&fetch(&crate::names::manifest(version))?)?;
    let shards: Vec<Vec<u8>> = (0..manifest.shard_count())
        .map(|i| {
            fetch(&crate::names::shard(version, i)).and_then(crate::compress::maybe_decompress)
        })
        .collect::<Result<_, _>>()?;
    manifest.assemble(&shards)
}

/// Append the whole-file CRC trailer to the last shard and describe the
/// result in a [`ShardManifest`]. `shards` must be every
/// [`serialize_shard`] output in plan order.
pub fn seal_shards(mut shards: Vec<Vec<u8>>) -> (Vec<Vec<u8>>, ShardManifest) {
    assert!(
        !shards.is_empty(),
        "a sealed checkpoint has at least one shard"
    );
    let mut rolling = Crc32::new();
    for s in &shards {
        rolling.update(s);
    }
    let file_crc = rolling.finish();
    put_u32(shards.last_mut().unwrap(), file_crc);
    let shard_lens: Vec<u64> = shards.iter().map(|s| s.len() as u64).collect();
    let shard_crcs: Vec<u32> = shards.iter().map(|s| crc32(s)).collect();
    let manifest = ShardManifest {
        total_len: shard_lens.iter().sum(),
        shard_lens,
        shard_crcs,
    };
    (shards, manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::serialize_data;
    use crate::{Bitmap, Region, Regions};

    fn sample() -> (Vec<VarRecord>, Vec<VarPlan>) {
        let vars = vec![
            VarRecord::new("u", VarData::F64((0..200).map(f64::from).collect())),
            VarRecord::new(
                "y",
                VarData::C128((0..40).map(|i| (i as f64, -(i as f64))).collect()),
            ),
            VarRecord::new("t", VarData::F64((0..64).map(|i| i as f64 * 0.5).collect())),
            VarRecord::new("it", VarData::I64(vec![7, 8, 9])),
        ];
        let crit = Bitmap::from_fn(200, |i| i % 3 != 0);
        let plans = vec![
            VarPlan::Pruned(Regions::from_bitmap(&crit)),
            VarPlan::Full,
            VarPlan::Tiered {
                hi: Regions::from_runs(vec![Region { start: 0, end: 20 }]),
                lo: Regions::from_runs(vec![Region { start: 30, end: 64 }]),
            },
            VarPlan::Full,
        ];
        (vars, plans)
    }

    #[test]
    fn sharded_serialization_is_bit_identical() {
        let (vars, plans) = sample();
        let (mono, mono_payload) = serialize_data(&vars, &plans).unwrap();
        for target in [1usize, 2, 3, 5, 8, 64] {
            let plan = plan_shards(&vars, &plans, target).unwrap();
            assert!(plan.shard_count() >= 1);
            let mut payload = 0;
            let shards: Vec<Vec<u8>> = (0..plan.shard_count())
                .map(|i| {
                    let (bytes, p) = serialize_shard(&vars, &plans, &plan, i);
                    payload += p;
                    bytes
                })
                .collect();
            let (sealed, manifest) = seal_shards(shards);
            let assembled = manifest.assemble(&sealed).unwrap();
            assert_eq!(assembled, mono, "target {target} shards");
            assert_eq!(payload, mono_payload, "target {target} payload bytes");
        }
    }

    #[test]
    fn sharded_v2_tiered_codec_is_bit_identical_to_monolithic() {
        use crate::writer::serialize_data_with;
        let (vars, plans) = sample();
        for keep in [2u8, 5, 7] {
            let lo_codec = LoCodec::Trunc { keep };
            let (mono, mono_payload) = serialize_data_with(&vars, &plans, lo_codec).unwrap();
            for target in [1usize, 3, 8] {
                let plan = plan_shards_with(&vars, &plans, target, lo_codec).unwrap();
                let mut payload = 0;
                let shards: Vec<Vec<u8>> = (0..plan.shard_count())
                    .map(|i| {
                        let (bytes, p) = serialize_shard(&vars, &plans, &plan, i);
                        payload += p;
                        bytes
                    })
                    .collect();
                let (sealed, manifest) = seal_shards(shards);
                let assembled = manifest.assemble(&sealed).unwrap();
                assert_eq!(assembled, mono, "keep={keep} target={target}");
                assert_eq!(payload, mono_payload, "keep={keep} target={target}");
            }
        }
    }

    #[test]
    fn multiple_shards_actually_split_large_vars() {
        let (vars, plans) = sample();
        let plan = plan_shards(&vars, &plans, 4).unwrap();
        assert!(
            plan.shard_count() >= 3,
            "expected a real split, got {} shard(s)",
            plan.shard_count()
        );
    }

    #[test]
    fn manifest_roundtrip_and_verification() {
        let (vars, plans) = sample();
        let plan = plan_shards(&vars, &plans, 3).unwrap();
        let shards: Vec<Vec<u8>> = (0..plan.shard_count())
            .map(|i| serialize_shard(&vars, &plans, &plan, i).0)
            .collect();
        let (sealed, manifest) = seal_shards(shards);
        let parsed = ShardManifest::from_bytes(&manifest.to_bytes()).unwrap();
        assert_eq!(parsed, manifest);

        // A flipped byte in any shard is pinned to that shard.
        let mut bad = sealed.clone();
        bad[1][0] ^= 0xFF;
        assert!(matches!(
            manifest.assemble(&bad),
            Err(CkptError::ChecksumMismatch { .. })
        ));
        // A truncated manifest is rejected.
        let bytes = manifest.to_bytes();
        assert!(ShardManifest::from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn zero_target_shards_rejected() {
        let (vars, plans) = sample();
        assert!(matches!(
            plan_shards(&vars, &plans, 0),
            Err(CkptError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_checkpoint_plans_one_shard() {
        let plan = plan_shards(&[], &[], 8).unwrap();
        assert_eq!(plan.shard_count(), 1);
        let (bytes, payload) = serialize_shard(&[], &[], &plan, 0);
        assert_eq!(payload, 0);
        let (sealed, manifest) = seal_shards(vec![bytes]);
        let assembled = manifest.assemble(&sealed).unwrap();
        let (mono, _) = serialize_data(&[], &[]).unwrap();
        assert_eq!(assembled, mono);
    }
}
