//! Checkpoint serialization: data file + auxiliary region file.
//!
//! Layout (all little-endian, lengths explicit, CRC-32 trailer):
//!
//! ```text
//! data file: "SCRUTCKP" | version u32 | [v2 only: lo_codec u8] | nvars u32
//!            per var: name_len u16 | name | dtype u8 | mode u8 | total u64
//!                     Full/Pruned: count u64 | raw elements
//!                     Tiered:      hi u64 | f64 elems | lo u64 | lo elems
//!            crc32 u32
//! aux file:  "SCRUTAUX" | version u32 | nvars u32
//!            per var: name_len u16 | name | mode u8
//!                     Pruned: nruns u64 | (start u64, end u64)*
//!                     Tiered: hi nruns+runs | lo nruns+runs
//!            crc32 u32
//! ```
//!
//! Version 1 stores tiered lo elements as f32; version 2 carries an
//! explicit [`LoCodec`] tag byte and is emitted **only** when the codec
//! is not `F32`, so every pre-compression byte stream is still produced
//! bit-identically and old files parse unchanged.
//!
//! The auxiliary file is exactly the paper's §III.B structure: start/end of
//! every contiguous critical region, so restart can place each stored
//! element at its original offset.

use crate::compress::{AtRest, CodecConfig, LoCodec};
use crate::format::{crc32, CkptError, StorageBreakdown, VarData, VarPlan, VarRecord};
use crate::Regions;
use std::fs;
use std::path::{Path, PathBuf};

pub(crate) const DATA_MAGIC: &[u8; 8] = b"SCRUTCKP";
const AUX_MAGIC: &[u8; 8] = b"SCRUTAUX";
pub(crate) const FORMAT_VERSION: u32 = 1;
pub(crate) const FORMAT_VERSION_TIERED: u32 = 2;

pub(crate) const MODE_FULL: u8 = 0;
pub(crate) const MODE_PRUNED: u8 = 1;
pub(crate) const MODE_TIERED: u8 = 2;

/// A fully serialized checkpoint (both files) plus byte accounting.
pub struct SerializedCheckpoint {
    /// The data file bytes.
    pub data: Vec<u8>,
    /// The auxiliary (region table) file bytes.
    pub aux: Vec<u8>,
    /// Byte-exact breakdown for storage reports (Table III).
    pub breakdown: StorageBreakdown,
}

pub(crate) fn plan_mode(plan: &VarPlan) -> u8 {
    match plan {
        VarPlan::Full => MODE_FULL,
        VarPlan::Pruned(_) => MODE_PRUNED,
        VarPlan::Tiered { .. } => MODE_TIERED,
    }
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_runs(out: &mut Vec<u8>, regions: &Regions) -> usize {
    put_u64(out, regions.run_count() as u64);
    for r in regions.runs() {
        put_u64(out, r.start);
        put_u64(out, r.end);
    }
    regions.run_count() * 16
}

pub(crate) fn validate(vars: &[VarRecord], plans: &[VarPlan]) -> Result<(), CkptError> {
    if vars.len() != plans.len() {
        return Err(CkptError::PlanMismatch(format!(
            "{} variables but {} plans",
            vars.len(),
            plans.len()
        )));
    }
    for (v, p) in vars.iter().zip(plans) {
        let total = v.data.len() as u64;
        match p {
            VarPlan::Full => {}
            VarPlan::Pruned(r) => {
                if let Some(last) = r.runs().last() {
                    if last.end > total {
                        return Err(CkptError::PlanMismatch(format!(
                            "regions for {:?} end at {} but the variable has {} elements",
                            v.name, last.end, total
                        )));
                    }
                }
            }
            VarPlan::Tiered { hi, lo } => {
                if v.data.dtype() != crate::DType::F64 {
                    return Err(CkptError::PlanMismatch(format!(
                        "tiered plan requires an f64 variable, {:?} is {:?}",
                        v.name,
                        v.data.dtype()
                    )));
                }
                if !hi.intersect(lo).is_empty() {
                    return Err(CkptError::PlanMismatch(format!(
                        "tiered plan for {:?} has overlapping hi/lo regions",
                        v.name
                    )));
                }
                for (which, r) in [("hi", hi), ("lo", lo)] {
                    if let Some(last) = r.runs().last() {
                        if last.end > total {
                            return Err(CkptError::PlanMismatch(format!(
                                "{which} regions for {:?} exceed its {} elements",
                                v.name, total
                            )));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Serialize the data file; returns `(bytes, payload_bytes)`.
pub fn serialize_data(
    vars: &[VarRecord],
    plans: &[VarPlan],
) -> Result<(Vec<u8>, usize), CkptError> {
    serialize_data_with(vars, plans, LoCodec::F32)
}

/// [`serialize_data`] with an explicit lo-tier codec. `LoCodec::F32`
/// emits format version 1 bit-identically; any other codec emits
/// version 2 with its tag byte in the header.
pub fn serialize_data_with(
    vars: &[VarRecord],
    plans: &[VarPlan],
    lo_codec: LoCodec,
) -> Result<(Vec<u8>, usize), CkptError> {
    validate(vars, plans)?;
    lo_codec.validate()?;
    let mut out = Vec::new();
    out.extend_from_slice(DATA_MAGIC);
    if lo_codec == LoCodec::F32 {
        put_u32(&mut out, FORMAT_VERSION);
    } else {
        put_u32(&mut out, FORMAT_VERSION_TIERED);
        out.push(lo_codec.tag());
    }
    put_u32(&mut out, vars.len() as u32);
    let mut payload = 0usize;
    for (v, p) in vars.iter().zip(plans) {
        let name = v.name.as_bytes();
        assert!(name.len() <= u16::MAX as usize, "variable name too long");
        put_u16(&mut out, name.len() as u16);
        out.extend_from_slice(name);
        out.push(v.data.dtype().tag());
        out.push(plan_mode(p));
        put_u64(&mut out, v.data.len() as u64);
        match p {
            VarPlan::Full => {
                let n = v.data.len();
                put_u64(&mut out, n as u64);
                payload += write_elements(&mut out, &v.data, 0..n as u64);
            }
            VarPlan::Pruned(r) => {
                put_u64(&mut out, r.covered());
                payload += write_elements(&mut out, &v.data, r.indices());
            }
            VarPlan::Tiered { hi, lo } => {
                let VarData::F64(ref vals) = v.data else {
                    unreachable!("validated above")
                };
                put_u64(&mut out, hi.covered());
                for i in hi.indices() {
                    out.extend_from_slice(&vals[i as usize].to_le_bytes());
                    payload += 8;
                }
                put_u64(&mut out, lo.covered());
                let width = lo_codec.width();
                for i in lo.indices() {
                    lo_codec.encode_into(&mut out, vals[i as usize]);
                    payload += width;
                }
            }
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    Ok((out, payload))
}

pub(crate) fn write_elements(
    out: &mut Vec<u8>,
    data: &VarData,
    indices: impl Iterator<Item = u64>,
) -> usize {
    let mut bytes = 0;
    match data {
        VarData::F64(v) => {
            for i in indices {
                out.extend_from_slice(&v[i as usize].to_le_bytes());
                bytes += 8;
            }
        }
        VarData::C128(v) => {
            for i in indices {
                let (re, im) = v[i as usize];
                out.extend_from_slice(&re.to_le_bytes());
                out.extend_from_slice(&im.to_le_bytes());
                bytes += 16;
            }
        }
        VarData::I64(v) => {
            for i in indices {
                out.extend_from_slice(&v[i as usize].to_le_bytes());
                bytes += 8;
            }
        }
    }
    bytes
}

/// Serialize the auxiliary region file; returns `(bytes, region_pair_bytes)`.
pub fn serialize_aux(vars: &[VarRecord], plans: &[VarPlan]) -> (Vec<u8>, usize) {
    let mut out = Vec::new();
    out.extend_from_slice(AUX_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, vars.len() as u32);
    let mut pair_bytes = 0usize;
    for (v, p) in vars.iter().zip(plans) {
        let name = v.name.as_bytes();
        put_u16(&mut out, name.len() as u16);
        out.extend_from_slice(name);
        out.push(plan_mode(p));
        match p {
            VarPlan::Full => {}
            VarPlan::Pruned(r) => pair_bytes += put_runs(&mut out, r),
            VarPlan::Tiered { hi, lo } => {
                pair_bytes += put_runs(&mut out, hi);
                pair_bytes += put_runs(&mut out, lo);
            }
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    (out, pair_bytes)
}

/// Serialize both files with storage accounting.
pub fn serialize(vars: &[VarRecord], plans: &[VarPlan]) -> Result<SerializedCheckpoint, CkptError> {
    serialize_with(vars, plans, LoCodec::F32)
}

/// [`serialize`] with an explicit lo-tier codec (see
/// [`serialize_data_with`]).
pub fn serialize_with(
    vars: &[VarRecord],
    plans: &[VarPlan],
    lo_codec: LoCodec,
) -> Result<SerializedCheckpoint, CkptError> {
    let (data, payload_bytes) = serialize_data_with(vars, plans, lo_codec)?;
    let (aux, pair_bytes) = serialize_aux(vars, plans);
    let header_bytes = data.len() - payload_bytes + (aux.len() - pair_bytes);
    Ok(SerializedCheckpoint {
        breakdown: StorageBreakdown {
            payload_bytes,
            aux_bytes: pair_bytes,
            header_bytes,
        },
        data,
        aux,
    })
}

/// Rebalance a [`StorageBreakdown`] after at-rest compression changed a
/// stored object from `raw_len` to `stored_len` bytes, keeping the
/// invariant that `total()` equals the bytes actually stored. Savings
/// come out of the header share first (it is the non-element share of
/// the object), then out of the payload share; growth (a pathological
/// codec on incompressible input) lands on the header share.
pub fn rebalance_breakdown(
    bd: StorageBreakdown,
    raw_len: usize,
    stored_len: usize,
) -> StorageBreakdown {
    let mut bd = bd;
    if stored_len >= raw_len {
        bd.header_bytes += stored_len - raw_len;
    } else {
        let mut saving = raw_len - stored_len;
        let from_header = saving.min(bd.header_bytes);
        bd.header_bytes -= from_header;
        saving -= from_header;
        bd.payload_bytes = bd.payload_bytes.saturating_sub(saving);
    }
    bd
}

/// File names used for checkpoint `version` inside a store directory.
pub fn file_names(dir: &Path, version: u64) -> (PathBuf, PathBuf) {
    (
        dir.join(crate::names::data(version)),
        dir.join(crate::names::aux(version)),
    )
}

/// Shard-manifest file name for a checkpoint stored in sharded layout.
pub fn manifest_file_name(dir: &Path, version: u64) -> PathBuf {
    dir.join(crate::names::manifest(version))
}

/// Name of data shard `shard` of checkpoint `version` in sharded layout.
pub fn shard_file_name(dir: &Path, version: u64, shard: usize) -> PathBuf {
    dir.join(crate::names::shard(version, shard))
}

/// Durably publish `bytes` at `path`: write a `.tmp` sibling, `fsync` it,
/// rename it over `path`, then best-effort `fsync` the directory so the
/// rename itself survives a crash. Without the file `fsync`, a crash after
/// the rename could publish a name whose *contents* never reached disk —
/// a checkpoint that exists but does not parse.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    use std::io::Write;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Write checkpoint `version` (data + aux files) into `dir`.
pub fn write_checkpoint(
    dir: &Path,
    version: u64,
    vars: &[VarRecord],
    plans: &[VarPlan],
) -> Result<StorageBreakdown, CkptError> {
    write_checkpoint_with(dir, version, vars, plans, &CodecConfig::default())
}

/// [`write_checkpoint`] with an explicit [`CodecConfig`]: the lo-tier
/// codec shapes the serialized data file, and an at-rest codec wraps the
/// data file in a `SCRUTCZB` container on disk (the aux file is never
/// compressed — it is the tiny region table restart needs first). The
/// returned breakdown accounts the bytes actually stored.
pub fn write_checkpoint_with(
    dir: &Path,
    version: u64,
    vars: &[VarRecord],
    plans: &[VarPlan],
    codec: &CodecConfig,
) -> Result<StorageBreakdown, CkptError> {
    let ser = serialize_with(vars, plans, codec.lo)?;
    fs::create_dir_all(dir)?;
    let (data_path, aux_path) = file_names(dir, version);
    // Write-then-fsync-then-rename so a crash mid-write never leaves a
    // checkpoint that parses: the reader only ever sees complete files,
    // and a renamed file is guaranteed to hold its full contents.
    let mut breakdown = ser.breakdown;
    if codec.at_rest == AtRest::None {
        write_file_atomic(&data_path, &ser.data)?;
    } else {
        let stored = crate::compress::compress(&ser.data, codec.at_rest);
        breakdown = rebalance_breakdown(breakdown, ser.data.len(), stored.len());
        write_file_atomic(&data_path, &stored)?;
    }
    write_file_atomic(&aux_path, &ser.aux)?;
    Ok(breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bitmap, DType};

    fn sample_vars() -> Vec<VarRecord> {
        vec![
            VarRecord::new("u", VarData::F64((0..20).map(f64::from).collect())),
            VarRecord::new("y", VarData::C128(vec![(1.0, -1.0), (2.0, -2.0)])),
            VarRecord::new("step", VarData::I64(vec![7])),
        ]
    }

    #[test]
    fn full_plan_payload_bytes() {
        let vars = sample_vars();
        let plans = vec![VarPlan::Full, VarPlan::Full, VarPlan::Full];
        let ser = serialize(&vars, &plans).unwrap();
        assert_eq!(ser.breakdown.payload_bytes, 20 * 8 + 2 * 16 + 8);
        assert_eq!(ser.breakdown.aux_bytes, 0);
        assert!(ser.breakdown.header_bytes > 0);
    }

    #[test]
    fn pruned_plan_stores_fewer_bytes() {
        let vars = sample_vars();
        let crit = Bitmap::from_fn(20, |i| i < 15);
        let plans = vec![
            VarPlan::Pruned(Regions::from_bitmap(&crit)),
            VarPlan::Full,
            VarPlan::Full,
        ];
        let ser = serialize(&vars, &plans).unwrap();
        assert_eq!(ser.breakdown.payload_bytes, 15 * 8 + 2 * 16 + 8);
        assert_eq!(ser.breakdown.aux_bytes, 16); // one region pair
    }

    #[test]
    fn tiered_requires_f64() {
        let vars = vec![VarRecord::new("y", VarData::C128(vec![(0.0, 0.0)]))];
        let plans = vec![VarPlan::Tiered {
            hi: Regions::all(1),
            lo: Regions::empty(),
        }];
        assert!(matches!(
            serialize(&vars, &plans),
            Err(CkptError::PlanMismatch(_))
        ));
    }

    #[test]
    fn plan_count_mismatch_rejected() {
        let vars = sample_vars();
        assert!(serialize(&vars, &[VarPlan::Full]).is_err());
    }

    #[test]
    fn regions_out_of_bounds_rejected() {
        let vars = vec![VarRecord::new("u", VarData::F64(vec![0.0; 4]))];
        let plans = vec![VarPlan::Pruned(Regions::all(9))];
        assert!(serialize(&vars, &plans).is_err());
    }

    #[test]
    fn write_creates_both_files() {
        let dir = std::env::temp_dir().join(format!("scrutiny_ckpt_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let vars = sample_vars();
        let plans = vec![VarPlan::Full, VarPlan::Full, VarPlan::Full];
        let bd = write_checkpoint(&dir, 3, &vars, &plans).unwrap();
        let (d, a) = file_names(&dir, 3);
        assert_eq!(
            fs::metadata(&d).unwrap().len() as usize + fs::metadata(&a).unwrap().len() as usize,
            bd.total()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_lo_codec_is_bit_identical_to_v1() {
        let vars = sample_vars();
        let crit = Bitmap::from_fn(20, |i| i % 2 == 0);
        let hi = Regions::from_bitmap(&crit);
        let plans = vec![
            VarPlan::Tiered {
                lo: hi.complement(20),
                hi,
            },
            VarPlan::Full,
            VarPlan::Full,
        ];
        let v1 = serialize(&vars, &plans).unwrap();
        let with = serialize_with(&vars, &plans, LoCodec::F32).unwrap();
        assert_eq!(v1.data, with.data);
        assert_eq!(v1.aux, with.aux);
        assert_eq!(u32::from_le_bytes(v1.data[8..12].try_into().unwrap()), 1);

        // A truncating codec emits version 2 and a smaller lo payload.
        let t3 = serialize_with(&vars, &plans, LoCodec::Trunc { keep: 3 }).unwrap();
        assert_eq!(u32::from_le_bytes(t3.data[8..12].try_into().unwrap()), 2);
        assert_eq!(t3.data[12], 3);
        assert!(t3.data.len() < v1.data.len());
        assert!(t3.breakdown.payload_bytes < v1.breakdown.payload_bytes);
        assert_eq!(t3.aux, v1.aux, "aux is codec-independent");
    }

    #[test]
    fn rebalance_keeps_total_equal_to_stored_bytes() {
        let bd = StorageBreakdown {
            payload_bytes: 1000,
            aux_bytes: 50,
            header_bytes: 30,
        };
        // Saving smaller than the header share.
        let r = rebalance_breakdown(bd, 1030, 1010);
        assert_eq!((r.payload_bytes, r.header_bytes), (1000, 10));
        // Saving spilling into the payload share.
        let r = rebalance_breakdown(bd, 1030, 400);
        assert_eq!((r.payload_bytes, r.header_bytes), (400, 0));
        assert_eq!(r.total(), 400 + 50);
        // Growth lands on the header share.
        let r = rebalance_breakdown(bd, 1030, 1060);
        assert_eq!((r.payload_bytes, r.header_bytes), (1000, 60));
    }

    #[test]
    fn dtype_sizes_consistent() {
        assert_eq!(DType::F64.elem_bytes(), 8);
        assert_eq!(DType::C128.elem_bytes(), 16);
    }
}
