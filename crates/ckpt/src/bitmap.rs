//! A compact criticality bitmap: one bit per checkpoint element.
//!
//! Bit `i` set ⇔ element `i` is critical (has non-zero impact on the
//! output, per the paper's definition in §III.A).

/// Fixed-length bit vector over element indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-clear bitmap of `len` elements.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-set bitmap (everything critical — the conservative default).
    pub fn full(len: usize) -> Self {
        let mut b = Self::new(len);
        for i in 0..len {
            b.set(i, true);
        }
        b
    }

    /// Build from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Self::new(bits.len());
        for (i, &v) in bits.iter().enumerate() {
            if v {
                b.set(i, true);
            }
        }
        b
    }

    /// Build from a predicate over element indices.
    pub fn from_fn(len: usize, mut pred: impl FnMut(usize) -> bool) -> Self {
        let mut b = Self::new(len);
        for i in 0..len {
            if pred(i) {
                b.set(i, true);
            }
        }
        b
    }

    /// Number of elements (bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length bitmap.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Number of set (critical) bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear (uncritical) bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Fraction of clear bits — the paper's "uncritical rate" (Table II).
    pub fn uncritical_rate(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_zeros() as f64 / self.len as f64
        }
    }

    /// Element-wise OR with another bitmap of the same length.
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Element-wise AND with another bitmap of the same length.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Indices whose bits differ from `other`.
    pub fn diff_indices(&self, other: &Bitmap) -> Vec<usize> {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        (0..self.len)
            .filter(|&i| self.get(i) != other.get(i))
            .collect()
    }

    /// Iterator over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterator over indices of set bits.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Iterator over indices of clear bits.
    pub fn zeros(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(130);
        for i in (0..130).step_by(3) {
            b.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn counts_and_rate() {
        let b = Bitmap::from_fn(100, |i| i < 85);
        assert_eq!(b.count_ones(), 85);
        assert_eq!(b.count_zeros(), 15);
        assert!((b.uncritical_rate() - 0.15).abs() < 1e-15);
    }

    #[test]
    fn full_is_all_ones() {
        let b = Bitmap::full(77);
        assert_eq!(b.count_ones(), 77);
        assert_eq!(b.uncritical_rate(), 0.0);
    }

    #[test]
    fn or_and_combinators() {
        let a = Bitmap::from_fn(64, |i| i % 2 == 0);
        let b = Bitmap::from_fn(64, |i| i % 3 == 0);
        let mut or = a.clone();
        or.or_with(&b);
        let mut and = a.clone();
        and.and_with(&b);
        for i in 0..64 {
            assert_eq!(or.get(i), i % 2 == 0 || i % 3 == 0);
            assert_eq!(and.get(i), i % 6 == 0);
        }
    }

    #[test]
    fn diff_indices_finds_mismatches() {
        let a = Bitmap::from_fn(10, |i| i < 5);
        let b = Bitmap::from_fn(10, |i| i < 7);
        assert_eq!(a.diff_indices(&b), vec![5, 6]);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.uncritical_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Bitmap::new(8).get(8);
    }
}
