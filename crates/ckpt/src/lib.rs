//! # scrutiny-ckpt — criticality-pruned checkpoint/restart
//!
//! The paper verifies its AD analysis with a "homemade checkpointing
//! library that saves only critical elements to checkpoints", plus an
//! *auxiliary file* that "only records the start and end locations of the
//! region of continuous critical elements" (§III.B). This crate is that
//! library, production-grade:
//!
//! * [`Bitmap`] — one bit per element: critical / uncritical.
//! * [`Regions`] — run-length encoding of a bitmap: the auxiliary file's
//!   in-memory form. Conversions both ways, set algebra, index iteration.
//! * [`VarData`] / [`VarRecord`] — typed checkpoint payloads (`f64`,
//!   `dcomplex`, `i64`), matching the NPB variable types of Table I.
//! * [`VarPlan`] — what to store per variable: everything, only critical
//!   regions, or precision-tiered regions (f64 / f32 / dropped — the
//!   paper's §VII future-work idea).
//! * [`writer`] / [`reader`] — a versioned binary format (magic, CRC32,
//!   explicit lengths) with byte-exact storage accounting, written either
//!   to memory or to disk; restore materializes full-size buffers, filling
//!   uncritical holes according to a [`FillPolicy`].
//! * [`store`] — a versioned multi-checkpoint directory (keep-last-k), the
//!   usual operational shape of application-level C/R, with chain-aware
//!   retention for delta checkpoints.
//! * [`delta`] — base+delta checkpoints (`SCRUTDLT`): epoch N stores a
//!   full image, epochs N+1… store only the dirty pages of the AD-pruned
//!   data file, so temporal and semantic pruning compose; reconstruction
//!   is bit-identical to a monolithic save.
//! * [`compress`] — the optional `SCRUTCZB` at-rest compression
//!   container (self-written RLE and bit-plane codecs, byte-exact) and
//!   the lossy lo-tier element codec ([`LoCodec`]) that turns the
//!   paper's uncritical verdict into truncated-mantissa storage,
//!   gated by §IV.C restart-verification.
//! * [`incremental`] — a page-granularity incremental *accounting*
//!   baseline (à la dirty-page tracking, cf. Vasavada et al. in the
//!   paper's related work) for storage comparisons.
//! * [`restore`] — the read-side mirror of the sharded writer: a
//!   parallel restore pipeline that fetches and CRC-verifies shards and
//!   delta-chain links concurrently, assembling an image bit-identical
//!   to the serial reader's.

#![warn(missing_docs)]

pub mod bitmap;
pub mod compress;
pub mod delta;
pub mod format;
pub mod incremental;
pub mod names;
pub mod reader;
pub mod regions;
pub mod restore;
pub mod shard;
pub mod store;
pub mod writer;

pub use bitmap::Bitmap;
pub use compress::{AtRest, CodecConfig, LoCodec};
pub use delta::{DeltaPolicy, DeltaStats};
pub use format::{
    CkptError, Crc32, DType, FillPolicy, StorageBreakdown, VarData, VarPlan, VarRecord,
};
pub use names::Tenant;
pub use reader::Checkpoint;
pub use regions::{Region, Regions};
pub use restore::{
    read_data_image_parallel, read_data_image_parallel_obs, RestoreOptions, RestoreStats,
};
pub use shard::{
    plan_shards, plan_shards_with, seal_shards, serialize_shard, ShardManifest, ShardPlan,
};
pub use store::CheckpointStore;
pub use writer::{
    rebalance_breakdown, serialize, serialize_aux, serialize_data, serialize_data_with,
    serialize_with, write_checkpoint, write_checkpoint_with, write_file_atomic,
    SerializedCheckpoint,
};
