//! Criticality-tiered compression: the `SCRUTCZB` at-rest container and
//! the lossy lo-tier element codec.
//!
//! The paper's analysis splits state into critical/uncritical (§IV), but
//! until this module the uncritical verdict only ever *dropped* bytes
//! (prune, delta). Compression turns the verdict into smaller stored
//! bytes two independent ways:
//!
//! 1. **At-rest containers** ([`AtRest`]): any stored object (monolithic
//!    data file, shard, delta file) may be wrapped in a `SCRUTCZB`
//!    container holding a byte-exact encoding of the raw object. Two
//!    self-written codecs — run-length ([`AtRest::Rle`]) and bit-plane
//!    transpose + RLE ([`AtRest::BitPlane`], effective on f64 payloads
//!    whose exponent bytes are near-constant) — plus a stored fallback so
//!    the container never expands pathologically under [`AtRest::Auto`].
//!    Decoding is *sniffed*: readers call [`maybe_decompress`] on fetched
//!    bytes, so compressed and uncompressed objects coexist in one store
//!    and old uncompressed files remain readable unchanged.
//! 2. **Lossy lo tiers** ([`LoCodec`]): `VarPlan::Tiered` lo elements are
//!    stored as f32 in format version 1; [`LoCodec::Trunc`] keeps only
//!    the top `keep` bytes of the little-endian f64 instead (sign +
//!    exponent + leading mantissa bits), emitted as format version 2 —
//!    the §IV.C garbage-fill restart-verification is the correctness
//!    gate for every such tier.
//!
//! Container layout (little-endian, like every `scrutiny-ckpt` format):
//!
//! ```text
//! "SCRUTCZB" | version u32 (= 1) | method u8 | raw_len u64 | raw_crc u32
//!            | payload … | crc32 u32
//! ```
//!
//! The trailing CRC-32 is over the **stored** bytes (everything before
//! the trailer): a flipped byte anywhere in the container is detected
//! before any decoding runs and surfaces as the same typed
//! [`CkptError::ChecksumMismatch`] every other format uses. `raw_crc`
//! additionally pins the decoded bytes, so a codec bug cannot silently
//! hand back a wrong image.

use crate::format::{crc32, CkptError};

/// Magic prefix of an at-rest compression container.
pub const CONTAINER_MAGIC: &[u8; 8] = b"SCRUTCZB";
const CONTAINER_VERSION: u32 = 1;
/// magic 8 + version 4 + method 1 + raw_len 8 + raw_crc 4.
const CONTAINER_HEADER: usize = 8 + 4 + 1 + 8 + 4;

const METHOD_STORED: u8 = 0;
const METHOD_RLE: u8 = 1;
const METHOD_BITPLANE: u8 = 2;

/// At-rest byte-exact compression applied to stored objects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AtRest {
    /// No container: objects are stored raw, bit-identical to every
    /// release before compression existed. The default.
    #[default]
    None,
    /// Run-length encode the object.
    Rle,
    /// Transpose the object's 8-byte words into byte planes, then
    /// run-length encode — exponent and sign bytes of f64 arrays
    /// compress far better contiguously.
    BitPlane,
    /// Try every codec (including stored) and keep the smallest payload.
    Auto,
}

/// How `VarPlan::Tiered` lo-tier elements are encoded on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoCodec {
    /// 4-byte IEEE f32 — format version 1, bit-identical to every
    /// release before tier codecs existed. The default.
    #[default]
    F32,
    /// Keep only the top `keep` bytes of the little-endian f64 (sign,
    /// exponent, leading mantissa); the dropped low bytes read back as
    /// zero. Valid `keep` is 2..=7. Emitted as format version 2.
    Trunc {
        /// Stored bytes per lo element (2..=7).
        keep: u8,
    },
}

impl LoCodec {
    /// Stored bytes per lo-tier element.
    pub fn width(self) -> usize {
        match self {
            LoCodec::F32 => 4,
            LoCodec::Trunc { keep } => keep as usize,
        }
    }

    /// Reject unusable truncation widths. `keep = 8` would be a slower
    /// `Full`; `keep < 2` cannot even hold the exponent.
    pub fn validate(self) -> Result<(), CkptError> {
        match self {
            LoCodec::F32 => Ok(()),
            LoCodec::Trunc { keep } if (2..=7).contains(&keep) => Ok(()),
            LoCodec::Trunc { keep } => Err(CkptError::InvalidConfig(format!(
                "lo-tier truncation must keep 2..=7 bytes, not {keep}"
            ))),
        }
    }

    /// The on-disk tag byte (format version 2 header).
    pub(crate) fn tag(self) -> u8 {
        match self {
            LoCodec::F32 => 0,
            LoCodec::Trunc { keep } => keep,
        }
    }

    /// Parse a tag byte back into a codec.
    pub(crate) fn from_tag(tag: u8) -> Result<Self, CkptError> {
        match tag {
            0 => Ok(LoCodec::F32),
            2..=7 => Ok(LoCodec::Trunc { keep: tag }),
            _ => Err(CkptError::Corrupt(format!(
                "unknown lo-tier codec tag {tag}"
            ))),
        }
    }

    /// Append one lo-tier element's stored bytes.
    pub(crate) fn encode_into(self, out: &mut Vec<u8>, v: f64) {
        match self {
            LoCodec::F32 => out.extend_from_slice(&(v as f32).to_le_bytes()),
            LoCodec::Trunc { keep } => {
                let b = v.to_le_bytes();
                out.extend_from_slice(&b[8 - keep as usize..]);
            }
        }
    }

    /// Decode one lo-tier element from exactly [`LoCodec::width`] bytes.
    pub(crate) fn decode(self, bytes: &[u8]) -> f64 {
        match self {
            LoCodec::F32 => f32::from_le_bytes(bytes.try_into().expect("4 bytes")) as f64,
            LoCodec::Trunc { keep } => {
                let mut b = [0u8; 8];
                b[8 - keep as usize..].copy_from_slice(bytes);
                f64::from_le_bytes(b)
            }
        }
    }

    /// The value an element reads back as after an encode/decode round
    /// trip — what restart-verification tolerances are measured against.
    pub fn apply(self, v: f64) -> f64 {
        let mut buf = Vec::with_capacity(8);
        self.encode_into(&mut buf, v);
        self.decode(&buf)
    }
}

/// The full codec selection for one checkpoint stream: at-rest container
/// compression plus the lo-tier element encoding. The default is a
/// passthrough — every byte stream is bit-identical to a build without
/// this module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodecConfig {
    /// Container compression for stored objects (data, shards, deltas;
    /// never aux or manifests — they are tiny commit-path metadata).
    pub at_rest: AtRest,
    /// Lo-tier element encoding (format version 2 when not `F32`).
    pub lo: LoCodec,
}

impl CodecConfig {
    /// Reject invalid tier widths.
    pub fn validate(&self) -> Result<(), CkptError> {
        self.lo.validate()
    }

    /// True when this config changes no stored byte.
    pub fn is_passthrough(&self) -> bool {
        self.at_rest == AtRest::None && self.lo == LoCodec::F32
    }
}

/// Does `bytes` start with the `SCRUTCZB` container magic?
///
/// Readers use this to sniff compressed objects; every other
/// `scrutiny-ckpt` file starts with its own distinct magic, so the only
/// theoretical collision is a *mid-file* shard whose first eight payload
/// bytes happen to spell the magic — such a shard would be rejected as
/// corrupt by the container CRC and recovery falls back, never silently
/// misread.
pub fn is_container(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && &bytes[..8] == CONTAINER_MAGIC
}

/// Wrap `raw` in a `SCRUTCZB` container using `method`.
/// [`AtRest::None`] is rejected by returning the bytes unmodified is
/// *not* done here — callers gate on `at_rest != None` and this function
/// always produces a container (with [`AtRest::Auto`] falling back to a
/// stored payload when neither codec helps).
pub fn compress(raw: &[u8], method: AtRest) -> Vec<u8> {
    let (tag, payload) = match method {
        AtRest::None => (METHOD_STORED, raw.to_vec()),
        AtRest::Rle => (METHOD_RLE, rle_compress(raw)),
        AtRest::BitPlane => (METHOD_BITPLANE, bitplane_compress(raw)),
        AtRest::Auto => {
            let rle = rle_compress(raw);
            let bp = bitplane_compress(raw);
            if bp.len() < rle.len() && bp.len() < raw.len() {
                (METHOD_BITPLANE, bp)
            } else if rle.len() < raw.len() {
                (METHOD_RLE, rle)
            } else {
                (METHOD_STORED, raw.to_vec())
            }
        }
    };
    let mut out = Vec::with_capacity(CONTAINER_HEADER + payload.len() + 4);
    out.extend_from_slice(CONTAINER_MAGIC);
    out.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
    out.push(tag);
    out.extend_from_slice(&(raw.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(raw).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Unwrap a `SCRUTCZB` container back to the raw object bytes. The
/// trailer CRC (over the stored bytes) is checked before any decoding,
/// and the decoded bytes are checked against the recorded raw CRC — a
/// corrupted container always surfaces as a typed error, never as wrong
/// data.
pub fn decompress(stored: &[u8]) -> Result<Vec<u8>, CkptError> {
    if stored.len() < CONTAINER_HEADER + 4 {
        return Err(CkptError::Corrupt("compression container too short".into()));
    }
    if &stored[..8] != CONTAINER_MAGIC {
        return Err(CkptError::Corrupt(
            "compression container has wrong magic".into(),
        ));
    }
    let body = &stored[..stored.len() - 4];
    let expected = u32::from_le_bytes(stored[stored.len() - 4..].try_into().unwrap());
    let actual = crc32(body);
    if expected != actual {
        return Err(CkptError::ChecksumMismatch { expected, actual });
    }
    let version = u32::from_le_bytes(stored[8..12].try_into().unwrap());
    if version != CONTAINER_VERSION {
        return Err(CkptError::Corrupt(format!(
            "unsupported compression container version {version}"
        )));
    }
    let method = stored[12];
    let raw_len = u64::from_le_bytes(stored[13..21].try_into().unwrap()) as usize;
    let raw_crc = u32::from_le_bytes(stored[21..25].try_into().unwrap());
    let payload = &body[CONTAINER_HEADER..];
    let raw = match method {
        METHOD_STORED => {
            if payload.len() != raw_len {
                return Err(CkptError::Corrupt(
                    "stored container payload length mismatch".into(),
                ));
            }
            payload.to_vec()
        }
        METHOD_RLE => {
            let (raw, consumed) = rle_decompress(payload, raw_len)?;
            if consumed != payload.len() {
                return Err(CkptError::Corrupt(
                    "rle container has trailing bytes".into(),
                ));
            }
            raw
        }
        METHOD_BITPLANE => bitplane_decompress(payload, raw_len)?,
        other => {
            return Err(CkptError::Corrupt(format!(
                "unknown compression method {other}"
            )))
        }
    };
    let actual = crc32(&raw);
    if raw_crc != actual {
        return Err(CkptError::ChecksumMismatch {
            expected: raw_crc,
            actual,
        });
    }
    Ok(raw)
}

/// Decode `bytes` if (and only if) they are a `SCRUTCZB` container;
/// non-container bytes pass through untouched. The one call every
/// read path makes on fetched objects.
pub fn maybe_decompress(bytes: Vec<u8>) -> Result<Vec<u8>, CkptError> {
    if is_container(&bytes) {
        decompress(&bytes)
    } else {
        Ok(bytes)
    }
}

// ---------------------------------------------------------------------
// Run-length codec.
//
// Control byte `c < 128`: the next `c + 1` bytes are literals.
// Control byte `c ≥ 128`: the next byte repeats `c - 125` times
// (runs of 3..=130). Runs shorter than 3 are folded into literals, so
// worst-case expansion is 1 byte per 128 (incompressible input).
// ---------------------------------------------------------------------

const MAX_RUN: usize = 130;
const MAX_LIT: usize = 128;

fn run_len_at(src: &[u8], i: usize, cap: usize) -> usize {
    let b = src[i];
    let mut n = 1;
    while n < cap && i + n < src.len() && src[i + n] == b {
        n += 1;
    }
    n
}

fn rle_compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 4 + 16);
    let mut i = 0;
    while i < src.len() {
        let run = run_len_at(src, i, MAX_RUN);
        if run >= 3 {
            out.push((125 + run) as u8);
            out.push(src[i]);
            i += run;
            continue;
        }
        // Literal block: advance until a run of ≥ 3 starts or the block
        // fills.
        let start = i;
        i += run;
        while i < src.len() && i - start < MAX_LIT {
            let r = run_len_at(src, i, 3);
            if r >= 3 {
                break;
            }
            i += r;
        }
        let lit = (i - start).min(MAX_LIT);
        i = start + lit;
        out.push((lit - 1) as u8);
        out.extend_from_slice(&src[start..start + lit]);
    }
    out
}

/// Decode exactly `expected_len` bytes, returning them plus how many
/// input bytes were consumed. Malformed streams (truncation, overshoot)
/// are typed corruption, not panics.
fn rle_decompress(src: &[u8], expected_len: usize) -> Result<(Vec<u8>, usize), CkptError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0;
    while out.len() < expected_len {
        let Some(&c) = src.get(pos) else {
            return Err(CkptError::Corrupt("rle stream truncated".into()));
        };
        pos += 1;
        if c < 128 {
            let n = c as usize + 1;
            if pos + n > src.len() || out.len() + n > expected_len {
                return Err(CkptError::Corrupt("rle literal overruns".into()));
            }
            out.extend_from_slice(&src[pos..pos + n]);
            pos += n;
        } else {
            let n = c as usize - 125;
            let Some(&b) = src.get(pos) else {
                return Err(CkptError::Corrupt("rle run truncated".into()));
            };
            pos += 1;
            if out.len() + n > expected_len {
                return Err(CkptError::Corrupt("rle run overruns".into()));
            }
            out.resize(out.len() + n, b);
        }
    }
    Ok((out, pos))
}

// ---------------------------------------------------------------------
// Bit-plane transpose: regroup the k-th byte of every 8-byte word into
// contiguous planes (plane 7 holds f64 sign+exponent bytes, which are
// near-constant across an array), then RLE the planes. Bytes past the
// last full word are appended raw after the RLE stream.
// ---------------------------------------------------------------------

fn bitplane_compress(src: &[u8]) -> Vec<u8> {
    let words = src.len() / 8;
    let mut planes = vec![0u8; words * 8];
    for (j, w) in src.chunks_exact(8).enumerate() {
        for k in 0..8 {
            planes[k * words + j] = w[k];
        }
    }
    let mut out = rle_compress(&planes);
    out.extend_from_slice(&src[words * 8..]);
    out
}

fn bitplane_decompress(payload: &[u8], raw_len: usize) -> Result<Vec<u8>, CkptError> {
    let words = raw_len / 8;
    let tail = raw_len % 8;
    let (planes, consumed) = rle_decompress(payload, words * 8)?;
    if payload.len() - consumed != tail {
        return Err(CkptError::Corrupt(
            "bit-plane container tail length mismatch".into(),
        ));
    }
    let mut out = vec![0u8; raw_len];
    for j in 0..words {
        for k in 0..8 {
            out[j * 8 + k] = planes[k * words + j];
        }
    }
    out[words * 8..].copy_from_slice(&payload[consumed..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_bytes(n: usize, mut state: u64) -> Vec<u8> {
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn rle_roundtrips_edge_cases() {
        for src in [
            Vec::new(),
            vec![7u8],
            vec![0u8; 5000],                 // one long run, many chunks
            (0..=255u8).collect::<Vec<_>>(), // pure literals
            lcg_bytes(4097, 42),             // incompressible
            [vec![1u8; 2], vec![2u8; 300], vec![3u8, 4, 3, 4]].concat(),
        ] {
            let enc = rle_compress(&src);
            let (dec, consumed) = rle_decompress(&enc, src.len()).unwrap();
            assert_eq!(dec, src);
            assert_eq!(consumed, enc.len());
        }
    }

    #[test]
    fn bitplane_roundtrips_and_beats_rle_on_smooth_f64() {
        let mut raw = Vec::new();
        for i in 0..2000 {
            raw.extend_from_slice(&(1.0 + (i as f64) * 1e-9).to_le_bytes());
        }
        raw.extend_from_slice(&[9, 9, 9]); // non-word tail
        let bp = bitplane_compress(&raw);
        assert_eq!(bitplane_decompress(&bp, raw.len()).unwrap(), raw);
        let rle = rle_compress(&raw);
        assert!(
            bp.len() < rle.len() && bp.len() < raw.len() / 2,
            "bitplane {} vs rle {} vs raw {}",
            bp.len(),
            rle.len(),
            raw.len()
        );
    }

    #[test]
    fn container_roundtrips_every_method() {
        let raw = {
            let mut v = vec![0u8; 1000];
            v.extend(lcg_bytes(777, 9));
            v
        };
        for method in [AtRest::Rle, AtRest::BitPlane, AtRest::Auto] {
            let stored = compress(&raw, method);
            assert!(is_container(&stored));
            assert_eq!(decompress(&stored).unwrap(), raw, "{method:?}");
            assert_eq!(maybe_decompress(stored).unwrap(), raw);
        }
        // Auto never expands beyond the fixed container overhead.
        let hard = lcg_bytes(512, 3);
        let stored = compress(&hard, AtRest::Auto);
        assert!(stored.len() <= hard.len() + CONTAINER_HEADER + 4);
        assert_eq!(decompress(&stored).unwrap(), hard);
    }

    #[test]
    fn non_container_bytes_pass_through() {
        let raw = b"SCRUTCKP pretend data file".to_vec();
        assert!(!is_container(&raw));
        assert_eq!(maybe_decompress(raw.clone()).unwrap(), raw);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let raw = lcg_bytes(300, 11);
        let stored = compress(&raw, AtRest::Auto);
        for i in 0..stored.len() {
            let mut bad = stored.clone();
            bad[i] ^= 0x40;
            match decompress(&bad) {
                Err(_) => {}
                Ok(got) => panic!("flip at {i} went undetected (len {})", got.len()),
            }
        }
        // Truncation too.
        assert!(decompress(&stored[..stored.len() - 3]).is_err());
        assert!(decompress(&stored[..10]).is_err());
    }

    #[test]
    fn lo_codec_widths_and_roundtrip_error_bounds() {
        assert_eq!(LoCodec::F32.width(), 4);
        assert_eq!(LoCodec::Trunc { keep: 3 }.width(), 3);
        assert!(LoCodec::Trunc { keep: 1 }.validate().is_err());
        assert!(LoCodec::Trunc { keep: 8 }.validate().is_err());
        for keep in 2..=7u8 {
            let lo = LoCodec::Trunc { keep };
            lo.validate().unwrap();
            // Truncation drops the low 8*(8-keep) of the 52 mantissa
            // bits, so the relative error is below 2^(8*(8-keep) - 52).
            let tol = 2f64.powi(8 * (8 - keep as i32) - 52);
            for v in [1.0, -3.5, 1234.5678, 1e-12, -2.7e30] {
                let got = lo.apply(v);
                assert!(
                    (got - v).abs() < tol * v.abs(),
                    "keep={keep} v={v} got={got}"
                );
                // Truncation moves the value toward zero, never past it.
                assert!(got.abs() <= v.abs() && got.signum() == v.signum());
            }
            assert_eq!(lo.apply(0.0), 0.0);
            assert_eq!(LoCodec::from_tag(lo.tag()).unwrap(), lo);
        }
        assert_eq!(LoCodec::from_tag(0).unwrap(), LoCodec::F32);
        assert!(LoCodec::from_tag(1).is_err());
        assert!(LoCodec::from_tag(9).is_err());
        // F32 round trip matches a plain cast.
        assert_eq!(LoCodec::F32.apply(0.1), 0.1f32 as f64);
    }

    #[test]
    fn codec_config_default_is_passthrough() {
        let cfg = CodecConfig::default();
        assert!(cfg.is_passthrough());
        cfg.validate().unwrap();
        let on = CodecConfig {
            at_rest: AtRest::Auto,
            lo: LoCodec::Trunc { keep: 3 },
        };
        assert!(!on.is_passthrough());
        on.validate().unwrap();
    }
}
