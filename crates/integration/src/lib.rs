//! Integration-test host crate: the tests live in the repo-root `tests/`
//! directory and exercise the full pipeline across all workspace crates.
