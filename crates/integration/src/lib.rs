//! The differential analyzer harness: run the AD value criterion and the
//! static data-dependency analyzer over the same recording, prove the
//! safety invariant, and explain every disagreement.
//!
//! The invariant under test is directional: **datadep-critical ⊇
//! ad-critical**. The static analyzer (`scrutiny_ad::datadep`, surfaced
//! as `Analyzer::DataDep`) may keep elements the AD sweep would drop —
//! that costs checkpoint bytes — but it must never drop an element the
//! AD sweep keeps, because dropping a truly critical element breaks
//! restarts. [`assert_safety_invariant`] checks the superset relation
//! directly on the bitmaps (independently of the disagreement
//! classifier) *and* checks that the classifier accounted for every
//! differing element, so a disagreement can neither be unsafe nor
//! unexplained. The repo-root `tests/analyzer_differential.rs` drives
//! this over the NPB kernels; `tests/nonsmooth_pitfalls.rs` drives it
//! over the hand-built Hückelheim-style pitfall tapes.

#![warn(missing_docs)]

use scrutiny_core::{
    scrutinize_differential, AdError, AnalysisReport, DifferentialReport, DisagreementKind,
    ScrutinyApp, ScrutinyOptions,
};
use scrutiny_faultinj::{campaign_matrix, CampaignConfig, CampaignReport, Corruption, Target};

/// One application's differential run, labeled for failure messages.
#[derive(Debug)]
pub struct DifferentialCase {
    /// Application name (e.g. `CG`).
    pub name: String,
    /// Problem class (e.g. `S`).
    pub class: String,
    /// Both analyzers' reports plus the classified disagreements.
    pub report: DifferentialReport,
}

/// Run both analyzers over `app` and label the result.
pub fn differential_case(
    app: &dyn ScrutinyApp,
    opts: &ScrutinyOptions,
) -> Result<DifferentialCase, AdError> {
    let report = scrutinize_differential(app, opts)?;
    Ok(DifferentialCase {
        name: report.ad.app.name.clone(),
        class: report.ad.app.class.clone(),
        report,
    })
}

/// [`differential_case`] over a whole suite, stopping at the first
/// recording/sweep error.
pub fn differential_suite(
    apps: &[Box<dyn ScrutinyApp>],
    opts: &ScrutinyOptions,
) -> Result<Vec<DifferentialCase>, AdError> {
    apps.iter()
        .map(|app| differential_case(app.as_ref(), opts))
        .collect()
}

/// Assert everything the differential contract promises for one case:
///
/// 1. **Safety (bitmap-level):** every AD-critical element is
///    datadep-critical, checked directly on the per-variable maps —
///    not via the disagreement list, so a classifier bug cannot mask a
///    violation.
/// 2. **Safety (typed):** the classifier reported no
///    [`DisagreementKind::AdCriticalDataDepDead`] entries.
/// 3. **Completeness:** every element whose verdicts differ appears in
///    exactly one disagreement group, and nothing else does.
/// 4. **Witnesses:** every over-approximation group carries a witness
///    data-flow path with at least one hop.
///
/// Panics with [`explain`]-style context on any failure.
pub fn assert_safety_invariant(case: &DifferentialCase) {
    let label = format!("{} class {}", case.name, case.class);
    let rep = &case.report;
    assert_eq!(
        rep.ad.vars.len(),
        rep.datadep.vars.len(),
        "{label}: analyzer reports disagree on variable count"
    );
    for (va, vd) in rep.ad.vars.iter().zip(&rep.datadep.vars) {
        let expected: Vec<usize> = vd.value_map.diff_indices(&va.value_map);
        for &i in &expected {
            assert!(
                vd.value_map.get(i) && !va.value_map.get(i),
                "{label}: {}[{i}] is AD-critical but datadep-dead — the \
                 static analyzer under-approximated\n{}",
                va.spec.name,
                explain(rep)
            );
        }
        let claimed: Vec<usize> = rep
            .disagreements
            .iter()
            .filter(|d| d.var == va.spec.name)
            .flat_map(|d| d.elems.iter().copied())
            .collect();
        assert_eq!(
            claimed, expected,
            "{label}: disagreement list for {} does not match the maps",
            va.spec.name
        );
    }
    assert!(rep.is_safe(), "{label}:\n{}", explain(rep));
    for d in &rep.disagreements {
        assert_eq!(
            d.kind,
            DisagreementKind::ValueDeadStructurallyLive,
            "{label}: unexpected disagreement kind on {}",
            d.var
        );
        let w = d
            .witness
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: {} disagreement has no witness path", d.var));
        assert!(
            w.hops >= 1 && !w.nodes.is_empty(),
            "{label}: degenerate witness on {}",
            d.var
        );
    }
}

/// Render every disagreement of one differential run as a named,
/// human-readable line (one per variable × kind group), e.g.
///
/// ```text
/// CG class S: 2 disagreement group(s), 12 over-approximated element(s)
///   x: ValueDeadStructurallyLive ×12 [first elem 7, witness 5 hops: 120 -> 998 -> ...]
/// ```
pub fn explain(report: &DifferentialReport) -> String {
    let mut out = format!(
        "{} class {}: {} disagreement group(s), {} over-approximated element(s)\n",
        report.ad.app.name,
        report.ad.app.class,
        report.disagreements.len(),
        report.over_approximated_elems()
    );
    for d in &report.disagreements {
        let witness = match &d.witness {
            Some(w) => {
                let path: Vec<String> = w.nodes.iter().map(u64::to_string).collect();
                format!("witness {} hops: {}", w.hops, path.join(" -> "))
            }
            None => "no witness path".to_string(),
        };
        out.push_str(&format!(
            "  {}: {:?} ×{} [first elem {}, {}]\n",
            d.var,
            d.kind,
            d.elems.len(),
            d.elems.first().copied().unwrap_or(0),
            witness
        ));
    }
    out
}

/// The corruption models the differential campaigns sweep.
pub fn corruption_models() -> Vec<Corruption> {
    vec![
        Corruption::Zero,
        Corruption::BitFlip { bit: 63 },
        Corruption::BitFlip { bit: 1 },
        Corruption::Poison(1e30),
        Corruption::Scale(4.0),
        Corruption::Offset(-3.25),
    ]
}

/// Corrupt elements the *static* analyzer calls uncritical, across the
/// whole corruption-model matrix, and restart-verify each trial.
///
/// Because datadep-uncritical ⊆ ad-uncritical, every such element has a
/// zero adjoint and corruption must be harmless: each returned campaign
/// must report zero failures. This is the fault-injection face of the
/// safety invariant — the analyzer that never consulted a derivative
/// still only ever discards restart-irrelevant bytes.
pub fn datadep_uncritical_matrix(
    app: &dyn ScrutinyApp,
    datadep_report: &AnalysisReport,
    trials: usize,
) -> Vec<(Corruption, CampaignReport)> {
    let base = CampaignConfig {
        target: Target::Uncritical,
        trials,
        elems_per_trial: 16,
        ..CampaignConfig::default()
    };
    campaign_matrix(app, datadep_report, &base, &corruption_models())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::tiny::Heat1d;
    use scrutiny_core::Analyzer;

    #[test]
    fn heat1d_case_is_safe_and_explained() {
        let app = Heat1d::new(16, 8, 4);
        let case = differential_case(&app, &ScrutinyOptions::default()).unwrap();
        assert_safety_invariant(&case);
        let text = explain(&case.report);
        assert!(text.contains(&case.name), "{text}");
        assert!(text.contains("0 over-approximated"), "{text}");
    }

    #[test]
    fn datadep_matrix_on_heat1d_never_fails() {
        let app = Heat1d::new(16, 10, 5);
        let dd = scrutiny_core::scrutinize_with(
            &app,
            &ScrutinyOptions {
                analyzer: Analyzer::DataDep,
                ..ScrutinyOptions::default()
            },
        )
        .unwrap();
        for (model, report) in datadep_uncritical_matrix(&app, &dd, 2) {
            assert_eq!(report.failed, 0, "{model:?}");
            assert!(report.corrupted_elems > 0, "{model:?} corrupted nothing");
        }
    }
}
