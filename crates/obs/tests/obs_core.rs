//! Concurrency and round-trip suite for the obs core (ISSUE 7 satellite):
//! N-thread recording with consistent snapshots (no torn histogram
//! buckets), ring wraparound, JSONL round-trip, and disabled-recorder
//! no-op semantics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use scrutiny_obs::{point, span, EventKind, FieldValue, Recorder, Snapshot};

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn concurrent_recording_totals_are_exact() {
    let rec = Recorder::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = rec.clone();
            scope.spawn(move || {
                let counter = rec.counter("test.ops");
                let hist = rec.histogram("test.values");
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t as u64 * PER_THREAD + i);
                }
                rec.set_gauge("test.last_thread", t as i64);
            });
        }
    });
    let snap = rec.snapshot();
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.counter("test.ops"), Some(total));
    let hist = snap.histogram("test.values").unwrap();
    assert_eq!(hist.count, total);
    assert_eq!(hist.buckets.iter().sum::<u64>(), total);
    // Σ 0..total-1 = total*(total-1)/2 — every value accounted for.
    assert_eq!(hist.sum, total * (total - 1) / 2);
    assert_eq!(hist.min, 0);
    assert_eq!(hist.max, total - 1);
    let last = snap.gauge("test.last_thread").unwrap();
    assert!((0..THREADS as i64).contains(&last));
}

/// Snapshots taken *while* other threads hammer the histogram must be
/// internally consistent: the count always equals the bucket sum (it is
/// derived from the buckets, so a torn count/bucket pair is impossible),
/// and observed counts are monotone across successive snapshots.
#[test]
fn concurrent_snapshots_see_no_torn_histograms() {
    let rec = Recorder::new();
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        for t in 0..4 {
            let rec = rec.clone();
            let stop = &stop;
            scope.spawn(move || {
                let hist = rec.histogram("torn.check");
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    hist.record(i.wrapping_mul(2862933555777941757).wrapping_add(t));
                    i += 1;
                }
            });
        }
        let mut last_count = 0u64;
        for _ in 0..200 {
            let snap = rec.snapshot();
            if let Some(hist) = snap.histogram("torn.check") {
                assert_eq!(
                    hist.count,
                    hist.buckets.iter().sum::<u64>(),
                    "count must be derived from buckets"
                );
                assert!(hist.count >= last_count, "counts must be monotone");
                last_count = hist.count;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn ring_wraparound_keeps_newest_and_counts_dropped() {
    let rec = Recorder::with_capacity(16);
    for i in 0..100u64 {
        point!(rec, "tick", i = i);
    }
    let snap = rec.snapshot();
    assert_eq!(snap.events.len(), 16);
    assert_eq!(snap.dropped_events, 84);
    for (offset, event) in snap.events.iter().enumerate() {
        assert_eq!(event.fields[0].1, FieldValue::U64(84 + offset as u64));
    }
}

#[test]
fn concurrent_spans_have_consistent_parents() {
    let rec = Recorder::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = rec.clone();
            scope.spawn(move || {
                let _outer = span!(rec, "worker.outer", thread = t);
                let _inner = span!(rec, "worker.inner", thread = t);
                point!(rec, "worker.tick", thread = t);
            });
        }
    });
    let snap = rec.snapshot();
    let spans = snap.spans();
    assert_eq!(spans.len(), 2 * THREADS);
    for t in 0..THREADS as u64 {
        let outer = spans
            .iter()
            .find(|s| s.name == "worker.outer" && s.field_u64("thread") == Some(t))
            .expect("outer span per thread");
        let inner = spans
            .iter()
            .find(|s| s.name == "worker.inner" && s.field_u64("thread") == Some(t))
            .expect("inner span per thread");
        // Parent links never cross threads.
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert!(outer.end_us.is_some() && inner.end_us.is_some());
        let tick = snap
            .events
            .iter()
            .find(|e| {
                e.kind == EventKind::Point
                    && e.name == "worker.tick"
                    && e.fields
                        .iter()
                        .any(|(k, v)| k == "thread" && *v == FieldValue::U64(t))
            })
            .expect("tick per thread");
        assert_eq!(tick.parent, inner.id);
    }
}

#[test]
fn jsonl_round_trip_through_threads_and_all_field_types() {
    let rec = Recorder::new();
    rec.add("rt.counter", 41);
    rec.set_gauge("rt.gauge", -12);
    for v in [0u64, 1, 7, 4096, u64::MAX] {
        rec.record("rt.hist", v);
    }
    {
        let _s = span!(
            rec,
            "rt.span",
            a = 1u64,
            b = -2i64,
            c = 1.5f64,
            d = "text",
            e = true
        );
        point!(rec, "rt.point", msg = "with \"quotes\" and\nnewline");
    }
    let snap = rec.snapshot();
    let text = snap.to_jsonl();
    let back = Snapshot::from_jsonl(&text).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.to_jsonl(), text);
    scrutiny_obs::validate_jsonl(&text).unwrap();
}

#[test]
fn disabled_recorder_is_a_no_op_everywhere() {
    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());
    assert_eq!(rec.now_us(), 0);
    thread::scope(|scope| {
        for _ in 0..4 {
            let rec = rec.clone();
            scope.spawn(move || {
                for i in 0..1000u64 {
                    rec.counter("x").add(1);
                    rec.gauge("y").set(i as i64);
                    rec.histogram("z").record(i);
                    let _s = span!(rec, "s", i = i);
                    point!(rec, "p", i = i);
                }
            });
        }
    });
    let snap = rec.snapshot();
    assert_eq!(snap, Snapshot::empty());
    assert!(snap.to_jsonl().contains("\"meta\""));
    assert_eq!(Snapshot::from_jsonl(&snap.to_jsonl()).unwrap(), snap);
}

#[test]
fn clones_share_state() {
    let rec = Recorder::new();
    let clone = rec.clone();
    clone.add("shared", 5);
    assert_eq!(rec.snapshot().counter("shared"), Some(5));
}
