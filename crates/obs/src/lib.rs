//! # scrutiny-obs — tracing/metrics substrate for the scrutiny lifecycle
//!
//! Every layer of the checkpoint-scrutiny pipeline — tape record, AD
//! sweeps, analysis, engine submit → shard-serialize → diff → publish →
//! commit, recovery, restore — reports into one [`Recorder`]:
//!
//! * **Counters** ([`Recorder::counter`]) — monotonic totals
//!   (`engine.submissions`), one relaxed atomic add per update.
//! * **Gauges** ([`Recorder::gauge`]) — last-write-wins signed levels
//!   (`engine.queue_depth`), also used as the export surface for the
//!   per-run stats structs (`SweepStats`, `RestoreStats`).
//! * **Histograms** ([`Recorder::histogram`]) — power-of-two-bucket
//!   distributions for bytes and latency-µs; the snapshot count is derived
//!   from the buckets so concurrent reads can never tear.
//! * **Spans** ([`span!`]) — structured start/end events with monotonic
//!   µs timestamps and per-thread parent links, kept in a bounded ring.
//! * **Point events** ([`point!`]) — one-shot records (recovery rejects,
//!   fault injections).
//!
//! [`Recorder::snapshot`] freezes everything into a [`Snapshot`],
//! exportable as JSONL ([`Snapshot::to_jsonl`], round-tripped by
//! [`Snapshot::from_jsonl`]), as one JSON object for bench summaries
//! ([`Snapshot::to_json`]), or as a one-page text exposition
//! ([`Snapshot::render_text`]). [`schema::validate_jsonl`] (and the
//! `obs-schema-check` binary) enforce the documented JSONL schema in CI.
//!
//! The disabled recorder ([`Recorder::disabled`], also [`Recorder::default`])
//! holds no allocation; every operation is a branch on `None`. The
//! `obs_overhead` bench in `scrutiny-bench` pins this near zero.
//!
//! ```
//! use scrutiny_obs::{point, span, Recorder};
//!
//! let rec = Recorder::new();
//! {
//!     let _submit = span!(rec, "engine.submit", version = 0u64);
//!     rec.record("engine.commit_bytes", 4096);
//!     point!(rec, "engine.commit", version = 0u64);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.spans().len(), 1);
//! let log = snap.to_jsonl();
//! assert_eq!(scrutiny_obs::Snapshot::from_jsonl(&log).unwrap(), snap);
//! scrutiny_obs::schema::validate_jsonl(&log).unwrap();
//! ```

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod recorder;
pub mod schema;
pub mod snapshot;

pub use hist::{bucket_of, bucket_range, HistSnapshot, Histogram, HIST_BUCKETS};
pub use recorder::{
    Counter, Event, EventKind, FieldValue, Gauge, HistHandle, Recorder, SpanGuard,
    DEFAULT_RING_CAPACITY,
};
pub use schema::{validate_jsonl, SchemaSummary, SchemaViolation};
pub use snapshot::{Snapshot, SpanView, JSONL_VERSION};
