//! A minimal JSON value model, parser and encoder.
//!
//! The workspace is std-only (no serde), yet the observability layer must
//! round-trip its snapshots through JSONL and the bench harnesses must
//! write `BENCH_<name>.json` summaries. This module is the smallest JSON
//! subset that supports those uses:
//!
//! * Integers are kept exact: a non-negative integer literal parses to
//!   [`Json::U64`], a negative one to [`Json::I64`]. Anything with a
//!   fraction or exponent parses to [`Json::F64`].
//! * Floats are encoded with Rust's `{:?}` formatting, which is guaranteed
//!   to round-trip `f64` exactly. Non-finite floats have no JSON encoding;
//!   [`encode`] maps them to `null`.
//! * Object key order is preserved (objects are `Vec<(String, Json)>`),
//!   so encode ∘ parse is the identity on well-formed input.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// A number with a fraction or exponent part.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64` (accepting non-negative integers that fit).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (accepting any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

/// Encodes a value as compact JSON (no whitespace).
pub fn encode(value: &Json) -> String {
    let mut out = String::new();
    encode_into(value, &mut out);
    out
}

fn encode_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Json::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Json::F64(v) => {
            if v.is_finite() {
                // `{:?}` round-trips f64 exactly and always includes a
                // fraction or exponent, so the value re-parses as F64.
                let _ = write!(out, "{v:?}");
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => encode_str(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_str(k, out);
                out.push(':');
                encode_into(v, out);
            }
            out.push('}');
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_num(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    let mut integral = true;
    if bytes.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        integral = false;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if integral {
        if text.starts_with('-') {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed for our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar, not one byte.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "0", "42", "-7", "1.5", "-2.25", "1e300", "\"hi\"",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&encode(&v)).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integer_variants_are_exact() {
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(parse("-9223372036854775808").unwrap(), Json::I64(i64::MIN));
        assert_eq!(parse("2.0").unwrap(), Json::F64(2.0));
    }

    #[test]
    fn f64_debug_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e-300, 123456.789012345] {
            let enc = encode(&Json::F64(v));
            assert_eq!(parse(&enc).unwrap(), Json::F64(v), "{enc}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":"x\ny","c":null}],"d":true,"e":-1.5}"#;
        let v = parse(text).unwrap();
        assert_eq!(encode(&v), text.replace(" ", ""));
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""tab\there A \"q\"""#).unwrap();
        assert_eq!(v, Json::Str("tab\there A \"q\"".to_string()));
        let enc = encode(&Json::Str("a\u{1}b".to_string()));
        assert_eq!(enc, "\"a\\u0001b\"");
        assert_eq!(parse(&enc).unwrap(), Json::Str("a\u{1}b".to_string()));
    }
}
