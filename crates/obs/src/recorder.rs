//! The [`Recorder`]: counters, gauges, histograms, structured spans and a
//! bounded event ring.
//!
//! A `Recorder` is a cheaply clonable handle (`Option<Arc<…>>`). The
//! [`Recorder::disabled`] variant holds no allocation at all: every
//! operation on it reduces to a branch on `None`, which is what pins its
//! overhead near zero (measured by the `obs_overhead` bench).
//!
//! Metric handles ([`Counter`], [`Gauge`], [`HistHandle`]) are resolved
//! once by name and then shared atomics — hot paths pay one relaxed RMW
//! per update, no name lookup and no lock. Span and point events go
//! through a short mutex-guarded push into a bounded ring; when the ring
//! is full the **oldest** events are dropped and counted, so a
//! long-running burn-in keeps the most recent history.
//!
//! Span parent links are tracked per thread: a [`SpanGuard`] pushes its id
//! onto a thread-local stack keyed by recorder identity and pops it on
//! drop, so nested spans on one thread form a chain while concurrent
//! threads stay independent.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::Histogram;
use crate::snapshot::Snapshot;

/// Default bound on the in-memory event ring.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// A typed field value attached to spans and point events.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Non-negative integer. The canonical form for any integer ≥ 0.
    U64(u64),
    /// Negative integer (non-negative `i64`s canonicalize to [`FieldValue::U64`]).
    I64(i64),
    /// Floating-point value.
    F64(f64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        // Canonicalize: the JSONL encoding cannot distinguish a
        // non-negative i64 from a u64, so neither does the model.
        u64::try_from(v)
            .map(FieldValue::U64)
            .unwrap_or(FieldValue::I64(v))
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::from(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What kind of entry an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened: `id` is the span id, `parent` its enclosing span (0 = root).
    SpanStart,
    /// A span closed: `id` matches the corresponding [`EventKind::SpanStart`].
    SpanEnd,
    /// An instantaneous point event (`id`/`parent` follow span rules: the
    /// id is 0 and `parent` is the enclosing span, if any).
    Point,
}

/// One entry in the event ring.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Microseconds since the recorder was created (monotonic clock).
    pub t_us: u64,
    /// Entry kind.
    pub kind: EventKind,
    /// Span id (unique per recorder, starting at 1); 0 for point events.
    pub id: u64,
    /// Enclosing span id on the emitting thread, 0 when at top level.
    pub parent: u64,
    /// Dotted lowercase event name, e.g. `engine.submit`.
    pub name: String,
    /// Attached fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    hists: BTreeMap<String, Arc<Histogram>>,
}

struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
}

struct Inner {
    /// Unique identity for the thread-local span stack.
    id: u64,
    epoch: Instant,
    registry: Mutex<Registry>,
    ring: Mutex<Ring>,
    next_span: AtomicU64,
    dropped: AtomicU64,
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of (recorder id, span id) for the spans open on this thread.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The tracing/metrics recorder threaded through the scrutiny lifecycle.
///
/// Clones share the same underlying state. See the module docs for the
/// cost model; see [`Snapshot`] for export.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Default for Recorder {
    /// The default recorder is **disabled** — instrumented code paths pay
    /// (almost) nothing unless a caller opts in.
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(inner) => write!(f, "Recorder(enabled, id={})", inner.id),
        }
    }
}

impl Recorder {
    /// A live recorder with the [`DEFAULT_RING_CAPACITY`] event ring.
    pub fn new() -> Self {
        Recorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A live recorder whose event ring keeps at most `ring_capacity`
    /// events (oldest dropped first, counted in
    /// [`Snapshot::dropped_events`]).
    pub fn with_capacity(ring_capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                registry: Mutex::new(Registry::default()),
                ring: Mutex::new(Ring {
                    buf: VecDeque::new(),
                    cap: ring_capacity.max(1),
                }),
                next_span: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op recorder: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the recorder was created (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
        }
    }

    /// Resolves (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                let mut reg = inner.registry.lock().unwrap();
                Arc::clone(reg.counters.entry(name.to_string()).or_default())
            }),
        }
    }

    /// Adds `n` to the counter `name` (one-shot form of [`Recorder::counter`]).
    pub fn add(&self, name: &str, n: u64) {
        if self.inner.is_some() {
            self.counter(name).add(n);
        }
    }

    /// Resolves (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|inner| {
                let mut reg = inner.registry.lock().unwrap();
                Arc::clone(reg.gauges.entry(name.to_string()).or_default())
            }),
        }
    }

    /// Sets the gauge `name` to `v` (one-shot form of [`Recorder::gauge`]).
    pub fn set_gauge(&self, name: &str, v: i64) {
        if self.inner.is_some() {
            self.gauge(name).set(v);
        }
    }

    /// Resolves (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> HistHandle {
        HistHandle {
            hist: self.inner.as_ref().map(|inner| {
                let mut reg = inner.registry.lock().unwrap();
                Arc::clone(
                    reg.hists
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(Histogram::new())),
                )
            }),
        }
    }

    /// Records `value` into the histogram `name` (one-shot form of
    /// [`Recorder::histogram`]).
    pub fn record(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.histogram(name).record(value);
        }
    }

    /// Emits an instantaneous point event with fields.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        let parent = current_parent(inner.id);
        let event = Event {
            t_us: inner.epoch.elapsed().as_micros() as u64,
            kind: EventKind::Point,
            id: 0,
            parent,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        push_event(inner, event);
    }

    /// Opens a span with no fields; closed when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// Opens a span with fields; closed when the guard drops.
    ///
    /// Prefer the [`crate::span!`] macro, which builds the field slice with
    /// `key = value` syntax.
    pub fn span_with(&self, name: &str, fields: &[(&str, FieldValue)]) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { open: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = current_parent(inner.id);
        let event = Event {
            t_us: inner.epoch.elapsed().as_micros() as u64,
            kind: EventKind::SpanStart,
            id,
            parent,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        push_event(inner, event);
        SPAN_STACK.with(|stack| stack.borrow_mut().push((inner.id, id)));
        SpanGuard {
            open: Some(OpenSpan {
                inner: Arc::clone(inner),
                id,
                parent,
                name: name.to_string(),
            }),
        }
    }

    /// Emits an already-finished span retroactively: a
    /// [`EventKind::SpanStart`] stamped `start_us` and a matching
    /// [`EventKind::SpanEnd`] stamped now. Used where a span must exist
    /// only if its operation *succeeded* (e.g. the engine's commit span:
    /// measure, write the commit marker, emit on `Ok` only — so the log
    /// can never show a commit for an unpublished version). Returns the
    /// span id (0 when disabled).
    pub fn closed_span(&self, name: &str, start_us: u64, fields: &[(&str, FieldValue)]) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = current_parent(inner.id);
        let fields: Vec<(String, FieldValue)> = fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let end_us = inner.epoch.elapsed().as_micros() as u64;
        push_event(
            inner,
            Event {
                t_us: start_us.min(end_us),
                kind: EventKind::SpanStart,
                id,
                parent,
                name: name.to_string(),
                fields,
            },
        );
        push_event(
            inner,
            Event {
                t_us: end_us,
                kind: EventKind::SpanEnd,
                id,
                parent,
                name: name.to_string(),
                fields: Vec::new(),
            },
        );
        id
    }

    /// Snapshots every metric and the current event ring.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::empty();
        };
        let reg = inner.registry.lock().unwrap();
        let counters = reg
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = reg
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = reg
            .hists
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        drop(reg);
        let ring = inner.ring.lock().unwrap();
        let events: Vec<Event> = ring.buf.iter().cloned().collect();
        drop(ring);
        Snapshot {
            counters,
            gauges,
            histograms,
            events,
            dropped_events: inner.dropped.load(Ordering::Relaxed),
        }
    }
}

fn current_parent(recorder_id: u64) -> u64 {
    SPAN_STACK.with(|stack| {
        stack
            .borrow()
            .iter()
            .rev()
            .find(|(rid, _)| *rid == recorder_id)
            .map(|(_, sid)| *sid)
            .unwrap_or(0)
    })
}

fn push_event(inner: &Inner, event: Event) {
    let mut ring = inner.ring.lock().unwrap();
    if ring.buf.len() == ring.cap {
        ring.buf.pop_front();
        inner.dropped.fetch_add(1, Ordering::Relaxed);
    }
    ring.buf.push_back(event);
}

/// A counter handle: resolved once, updated with one relaxed RMW.
#[derive(Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A gauge handle: *set* semantics (last write wins), signed.
#[derive(Clone)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the gauge by `delta` and returns the new value (0 when
    /// disabled). Used for up/down quantities like queue depth.
    pub fn adjust(&self, delta: i64) -> i64 {
        match &self.cell {
            Some(cell) => cell.fetch_add(delta, Ordering::Relaxed) + delta,
            None => 0,
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A histogram handle: resolved once, recorded into lock-free.
#[derive(Clone)]
pub struct HistHandle {
    hist: Option<Arc<Histogram>>,
}

impl HistHandle {
    /// Records one value.
    pub fn record(&self, value: u64) {
        if let Some(hist) = &self.hist {
            hist.record(value);
        }
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }
}

struct OpenSpan {
    inner: Arc<Inner>,
    id: u64,
    parent: u64,
    name: String,
}

/// RAII guard for an open span; emits the matching
/// [`EventKind::SpanEnd`] event (and pops the thread-local parent stack)
/// on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl SpanGuard {
    /// The span id, 0 when the recorder is disabled.
    pub fn id(&self) -> u64 {
        self.open.as_ref().map(|o| o.id).unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally the top of stack; a linear scan keeps out-of-order
            // guard drops (e.g. spans stored in structs) correct.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(rid, sid)| rid == open.inner.id && sid == open.id)
            {
                stack.remove(pos);
            }
        });
        let event = Event {
            t_us: open.inner.epoch.elapsed().as_micros() as u64,
            kind: EventKind::SpanEnd,
            id: open.id,
            parent: open.parent,
            name: open.name,
            fields: Vec::new(),
        };
        push_event(&open.inner, event);
    }
}

/// Opens a span on a recorder with `key = value` fields:
///
/// ```
/// use scrutiny_obs::{span, Recorder};
/// let rec = Recorder::new();
/// let v = 3u64;
/// {
///     let _guard = span!(rec, "engine.submit", version = v, layout = "sharded");
/// }
/// let snap = rec.snapshot();
/// assert_eq!(snap.events.len(), 2); // start + end
/// ```
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $rec.span($name)
    };
    ($rec:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $rec.span_with(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),+],
        )
    };
}

/// Emits a point event on a recorder with `key = value` fields.
///
/// ```
/// use scrutiny_obs::{point, Recorder};
/// let rec = Recorder::new();
/// point!(rec, "engine.recovery.reject", version = 7u64, reason = "bad checksum");
/// assert_eq!(rec.snapshot().events.len(), 1);
/// ```
#[macro_export]
macro_rules! point {
    ($rec:expr, $name:expr) => {
        $rec.event($name, &[])
    };
    ($rec:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $rec.event(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists() {
        let rec = Recorder::new();
        let c = rec.counter("a.b");
        c.add(2);
        c.inc();
        rec.add("a.b", 1);
        rec.set_gauge("g", -5);
        rec.record("h", 100);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a.b"), Some(4));
        assert_eq!(snap.gauge("g"), Some(-5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn span_nesting_tracks_parents() {
        let rec = Recorder::new();
        let outer = span!(rec, "outer", version = 1u64);
        let outer_id = outer.id();
        {
            let inner = span!(rec, "inner");
            assert_ne!(inner.id(), outer_id);
            point!(rec, "leaf");
        }
        drop(outer);
        let snap = rec.snapshot();
        let starts: Vec<&Event> = snap
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart)
            .collect();
        assert_eq!(starts.len(), 2);
        assert_eq!(starts[0].parent, 0);
        assert_eq!(starts[1].parent, outer_id);
        let leaf = snap.events.iter().find(|e| e.name == "leaf").unwrap();
        assert_eq!(leaf.parent, starts[1].id);
        let ends = snap
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .count();
        assert_eq!(ends, 2);
    }

    #[test]
    fn two_recorders_keep_independent_stacks() {
        let a = Recorder::new();
        let b = Recorder::new();
        let _sa = a.span("a.root");
        let sb = b.span("b.root");
        point!(b, "b.leaf");
        drop(sb);
        let snap = b.snapshot();
        let leaf = snap.events.iter().find(|e| e.name == "b.leaf").unwrap();
        // b's leaf is parented to b's span, not a's.
        assert_eq!(
            leaf.parent,
            snap.events.iter().find(|e| e.name == "b.root").unwrap().id
        );
    }

    #[test]
    fn disabled_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.add("c", 1);
        rec.set_gauge("g", 1);
        rec.record("h", 1);
        point!(rec, "e", x = 1u64);
        let g = span!(rec, "s", v = 2u64);
        assert_eq!(g.id(), 0);
        drop(g);
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let rec = Recorder::with_capacity(4);
        for i in 0..10u64 {
            point!(rec, "tick", i = i);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped_events, 6);
        // The survivors are the four newest.
        assert_eq!(snap.events[0].fields[0].1, FieldValue::U64(6));
        assert_eq!(snap.events[3].fields[0].1, FieldValue::U64(9));
    }

    #[test]
    fn i64_fields_canonicalize_to_u64() {
        assert_eq!(FieldValue::from(5i64), FieldValue::U64(5));
        assert_eq!(FieldValue::from(-5i64), FieldValue::I64(-5));
        assert_eq!(FieldValue::from(-1i32), FieldValue::I64(-1));
    }
}
