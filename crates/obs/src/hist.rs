//! Fixed-bucket (power-of-two) histograms with lock-free recording.
//!
//! A [`Histogram`] holds one atomic counter per power-of-two bucket plus
//! atomic `sum`/`min`/`max` accumulators. Recording is a handful of
//! relaxed atomic RMWs — no locks, no allocation — so histograms are safe
//! to hit from the engine's worker pool and the AD sweep threads.
//!
//! The observable count is **derived** from the bucket array rather than
//! stored in a separate atomic: a concurrent snapshot can therefore never
//! see a count that disagrees with its buckets (no torn count/bucket
//! pairs). Each individual bucket is read atomically; a snapshot taken
//! mid-storm is some valid prefix of the recording history per bucket.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: value 0, plus one bucket per bit position 1..=64.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise `64 - leading_zeros`, so
/// bucket `b ≥ 1` covers the range `[2^(b-1), 2^b - 1]`.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` value range covered by bucket `index`.
pub fn bucket_range(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        b => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

/// A concurrent power-of-two-bucket histogram.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free; callable from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Snapshots the histogram. The returned count is the sum of the
    /// snapshotted buckets, so it can never disagree with them.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let min = self.min.load(Ordering::Relaxed);
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, indexed by [`bucket_of`]; always [`HIST_BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Total recordings — always `buckets.iter().sum()` by construction.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot (used when reconstructing from JSONL).
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Mean of the recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(bucket_index, count)` pairs for the non-empty buckets, the sparse
    /// form used by the JSONL encoding.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_range(b);
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0, 1, 1, 3, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1029);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.nonzero_buckets(), vec![(0, 1), (1, 2), (2, 1), (11, 1)]);
    }

    #[test]
    fn empty_min_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(s.mean(), 0.0);
    }
}
