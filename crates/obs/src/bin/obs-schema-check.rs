//! Self-contained checker for obs JSONL event logs.
//!
//! Usage: `obs-schema-check <log.jsonl>...` — validates each file against
//! the schema in `docs/OBSERVABILITY.md` and prints a per-file summary.
//! Exits non-zero on the first violation, so CI can gate on it.

use std::process::ExitCode;

use scrutiny_obs::schema::validate_jsonl;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: obs-schema-check <log.jsonl>...");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
                continue;
            }
        };
        match validate_jsonl(&text) {
            Ok(summary) => println!(
                "{path}: OK ({} lines: {} counters, {} gauges, {} histograms, {} spans, {} points)",
                summary.lines,
                summary.counters,
                summary.gauges,
                summary.histograms,
                summary.span_starts,
                summary.points
            ),
            Err(violation) => {
                eprintln!("{path}: SCHEMA VIOLATION at {violation}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
