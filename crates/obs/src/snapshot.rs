//! Point-in-time snapshots of a [`crate::Recorder`] and their exports:
//! JSONL event logs, a single-object JSON form (bench summaries), and a
//! one-page text exposition.
//!
//! The JSONL schema is documented in `docs/OBSERVABILITY.md` and enforced
//! by [`crate::schema::validate_jsonl`]; [`Snapshot::from_jsonl`] is its
//! exact inverse: `from_jsonl(to_jsonl(s)) == s` for every snapshot.

use std::io::Write as _;
use std::path::Path;

use crate::hist::{HistSnapshot, HIST_BUCKETS};
use crate::json::{encode, parse, Json, JsonError};
use crate::recorder::{Event, EventKind, FieldValue};

/// Version tag written on the `meta` line of every JSONL export.
pub const JSONL_VERSION: u64 = 1;

/// A point-in-time copy of every metric and the event ring.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistSnapshot)>,
    /// The event ring, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring before this snapshot was taken.
    pub dropped_events: u64,
}

/// A matched span reconstructed from start/end events.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanView {
    /// Span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Start timestamp, µs since recorder epoch.
    pub start_us: u64,
    /// End timestamp; `None` when the span was still open (or its end was
    /// evicted from the ring).
    pub end_us: Option<u64>,
    /// Fields attached at span start.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanView {
    /// Span duration in µs; `None` while unmatched.
    pub fn duration_us(&self) -> Option<u64> {
        self.end_us.map(|e| e.saturating_sub(self.start_us))
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a `u64` field by key.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(FieldValue::U64(v)) => Some(*v),
            _ => None,
        }
    }
}

impl Snapshot {
    /// The empty snapshot (what a disabled recorder reports).
    pub fn empty() -> Self {
        Snapshot::default()
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Events with a given name, in ring order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Matches span start/end events into [`SpanView`]s, in start order.
    pub fn spans(&self) -> Vec<SpanView> {
        let mut views: Vec<SpanView> = Vec::new();
        for event in &self.events {
            match event.kind {
                EventKind::SpanStart => views.push(SpanView {
                    id: event.id,
                    parent: event.parent,
                    name: event.name.clone(),
                    start_us: event.t_us,
                    end_us: None,
                    fields: event.fields.clone(),
                }),
                EventKind::SpanEnd => {
                    if let Some(open) = views
                        .iter_mut()
                        .rev()
                        .find(|v| v.id == event.id && v.end_us.is_none())
                    {
                        open.end_us = Some(event.t_us);
                    }
                }
                EventKind::Point => {}
            }
        }
        views
    }

    // ----- JSONL -----------------------------------------------------

    /// Encodes the snapshot as JSONL, one self-describing object per line.
    /// See `docs/OBSERVABILITY.md` for the schema.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&encode(&Json::Obj(vec![
            ("type".into(), Json::Str("meta".into())),
            ("version".into(), Json::U64(JSONL_VERSION)),
            ("dropped_events".into(), Json::U64(self.dropped_events)),
        ])));
        out.push('\n');
        for (name, value) in &self.counters {
            out.push_str(&encode(&Json::Obj(vec![
                ("type".into(), Json::Str("counter".into())),
                ("name".into(), Json::Str(name.clone())),
                ("value".into(), Json::U64(*value)),
            ])));
            out.push('\n');
        }
        for (name, value) in &self.gauges {
            out.push_str(&encode(&Json::Obj(vec![
                ("type".into(), Json::Str("gauge".into())),
                ("name".into(), Json::Str(name.clone())),
                (
                    "value".into(),
                    if *value >= 0 {
                        Json::U64(*value as u64)
                    } else {
                        Json::I64(*value)
                    },
                ),
            ])));
            out.push('\n');
        }
        for (name, hist) in &self.histograms {
            let buckets = hist
                .nonzero_buckets()
                .into_iter()
                .map(|(i, c)| Json::Arr(vec![Json::U64(i as u64), Json::U64(c)]))
                .collect();
            out.push_str(&encode(&Json::Obj(vec![
                ("type".into(), Json::Str("histogram".into())),
                ("name".into(), Json::Str(name.clone())),
                ("count".into(), Json::U64(hist.count)),
                ("sum".into(), Json::U64(hist.sum)),
                ("min".into(), Json::U64(hist.min)),
                ("max".into(), Json::U64(hist.max)),
                ("buckets".into(), Json::Arr(buckets)),
            ])));
            out.push('\n');
        }
        for event in &self.events {
            out.push_str(&encode(&event_to_json(event)));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL export back into a snapshot; exact inverse of
    /// [`Snapshot::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<Snapshot, JsonError> {
        let mut snap = Snapshot::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let obj = parse(line).map_err(|mut e| {
                e.message = format!("line {}: {}", lineno + 1, e.message);
                e
            })?;
            let bad = |message: &str| JsonError {
                offset: 0,
                message: format!("line {}: {}", lineno + 1, message),
            };
            let ty = obj
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing type"))?;
            match ty {
                "meta" => {
                    snap.dropped_events = obj
                        .get("dropped_events")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("meta missing dropped_events"))?;
                }
                "counter" => {
                    let name = obj
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("counter missing name"))?;
                    let value = obj
                        .get("value")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("counter missing value"))?;
                    snap.counters.push((name.to_string(), value));
                }
                "gauge" => {
                    let name = obj
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("gauge missing name"))?;
                    let value = obj
                        .get("value")
                        .and_then(Json::as_i64)
                        .ok_or_else(|| bad("gauge missing value"))?;
                    snap.gauges.push((name.to_string(), value));
                }
                "histogram" => {
                    let name = obj
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("histogram missing name"))?;
                    let mut hist = HistSnapshot::empty();
                    hist.count = obj
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("histogram missing count"))?;
                    hist.sum = obj
                        .get("sum")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("histogram missing sum"))?;
                    hist.min = obj.get("min").and_then(Json::as_u64).unwrap_or(0);
                    hist.max = obj.get("max").and_then(Json::as_u64).unwrap_or(0);
                    for pair in obj
                        .get("buckets")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| bad("histogram missing buckets"))?
                    {
                        let pair = pair.as_arr().ok_or_else(|| bad("bucket not a pair"))?;
                        let (idx, count) = match pair {
                            [i, c] => (
                                i.as_u64().ok_or_else(|| bad("bucket index"))? as usize,
                                c.as_u64().ok_or_else(|| bad("bucket count"))?,
                            ),
                            _ => return Err(bad("bucket not a pair")),
                        };
                        if idx >= HIST_BUCKETS {
                            return Err(bad("bucket index out of range"));
                        }
                        hist.buckets[idx] = count;
                    }
                    snap.histograms.push((name.to_string(), hist));
                }
                "span_start" | "span_end" | "event" => {
                    snap.events
                        .push(event_from_json(ty, &obj).map_err(|m| bad(&m))?);
                }
                other => return Err(bad(&format!("unknown type {other:?}"))),
            }
        }
        Ok(snap)
    }

    /// Writes [`Snapshot::to_jsonl`] to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())
    }

    // ----- single-object JSON (bench summaries) ----------------------

    /// Encodes the snapshot as one JSON object (`BENCH_<name>.json` form):
    /// `{"meta":…,"counters":{…},"gauges":{…},"histograms":{…},"events":[…]}`.
    pub fn to_json(&self, extra_meta: &[(&str, FieldValue)]) -> String {
        let mut meta = vec![
            ("jsonl_version".to_string(), Json::U64(JSONL_VERSION)),
            ("dropped_events".to_string(), Json::U64(self.dropped_events)),
        ];
        for (k, v) in extra_meta {
            meta.push((k.to_string(), field_to_json(v)));
        }
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::U64(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    if *v >= 0 {
                        Json::U64(*v as u64)
                    } else {
                        Json::I64(*v)
                    },
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::U64(h.count)),
                        ("sum".into(), Json::U64(h.sum)),
                        ("min".into(), Json::U64(h.min)),
                        ("max".into(), Json::U64(h.max)),
                        ("mean".into(), Json::F64(h.mean())),
                    ]),
                )
            })
            .collect();
        let events = self.events.iter().map(event_to_json).collect();
        encode(&Json::Obj(vec![
            ("meta".into(), Json::Obj(meta)),
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
            ("events".into(), Json::Arr(events)),
        ]))
    }

    // ----- text exposition -------------------------------------------

    /// Renders a one-page human-readable summary: counters, gauges,
    /// histogram digests, and per-name span aggregates.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== obs snapshot ==");
        if !self.counters.is_empty() {
            let _ = writeln!(out, "-- counters --");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<40} {value}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "-- gauges --");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "{name:<40} {value}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "-- histograms --");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:<40} n={} sum={} min={} mean={:.1} max={}",
                    h.count,
                    h.sum,
                    h.min,
                    h.mean(),
                    h.max
                );
            }
        }
        let spans = self.spans();
        if !spans.is_empty() {
            let _ = writeln!(out, "-- spans (aggregated by name) --");
            let mut names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            for name in names {
                let matched: Vec<u64> = spans
                    .iter()
                    .filter(|s| s.name == name)
                    .filter_map(|s| s.duration_us())
                    .collect();
                let open = spans
                    .iter()
                    .filter(|s| s.name == name && s.end_us.is_none())
                    .count();
                let total: u64 = matched.iter().sum();
                let mean = if matched.is_empty() {
                    0.0
                } else {
                    total as f64 / matched.len() as f64
                };
                let _ = writeln!(
                    out,
                    "{name:<40} n={} total_us={} mean_us={:.1} open={}",
                    matched.len(),
                    total,
                    mean,
                    open
                );
            }
        }
        let points = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Point)
            .count();
        let _ = writeln!(
            out,
            "-- events: {} in ring ({} point), {} dropped --",
            self.events.len(),
            points,
            self.dropped_events
        );
        out
    }
}

fn field_to_json(value: &FieldValue) -> Json {
    match value {
        FieldValue::U64(v) => Json::U64(*v),
        FieldValue::I64(v) => Json::I64(*v),
        FieldValue::F64(v) => Json::F64(*v),
        FieldValue::Str(s) => Json::Str(s.clone()),
        FieldValue::Bool(b) => Json::Bool(*b),
    }
}

fn field_from_json(value: &Json) -> Result<FieldValue, String> {
    Ok(match value {
        Json::U64(v) => FieldValue::U64(*v),
        Json::I64(v) => FieldValue::I64(*v),
        Json::F64(v) => FieldValue::F64(*v),
        Json::Str(s) => FieldValue::Str(s.clone()),
        Json::Bool(b) => FieldValue::Bool(*b),
        other => return Err(format!("unsupported field value {other:?}")),
    })
}

fn event_to_json(event: &Event) -> Json {
    let ty = match event.kind {
        EventKind::SpanStart => "span_start",
        EventKind::SpanEnd => "span_end",
        EventKind::Point => "event",
    };
    let mut pairs = vec![
        ("type".to_string(), Json::Str(ty.into())),
        ("t_us".to_string(), Json::U64(event.t_us)),
    ];
    if event.kind != EventKind::Point {
        pairs.push(("id".to_string(), Json::U64(event.id)));
    }
    if event.parent != 0 {
        pairs.push(("parent".to_string(), Json::U64(event.parent)));
    }
    pairs.push(("name".to_string(), Json::Str(event.name.clone())));
    if !event.fields.is_empty() {
        pairs.push((
            "fields".to_string(),
            Json::Obj(
                event
                    .fields
                    .iter()
                    .map(|(k, v)| (k.clone(), field_to_json(v)))
                    .collect(),
            ),
        ));
    }
    Json::Obj(pairs)
}

fn event_from_json(ty: &str, obj: &Json) -> Result<Event, String> {
    let kind = match ty {
        "span_start" => EventKind::SpanStart,
        "span_end" => EventKind::SpanEnd,
        "event" => EventKind::Point,
        _ => return Err(format!("not an event type: {ty}")),
    };
    let t_us = obj
        .get("t_us")
        .and_then(Json::as_u64)
        .ok_or("event missing t_us")?;
    let id = if kind == EventKind::Point {
        0
    } else {
        obj.get("id")
            .and_then(Json::as_u64)
            .ok_or("span missing id")?
    };
    let parent = obj.get("parent").and_then(Json::as_u64).unwrap_or(0);
    let name = obj
        .get("name")
        .and_then(Json::as_str)
        .ok_or("event missing name")?
        .to_string();
    let mut fields = Vec::new();
    if let Some(Json::Obj(pairs)) = obj.get("fields") {
        for (k, v) in pairs {
            fields.push((k.clone(), field_from_json(v)?));
        }
    }
    Ok(Event {
        t_us,
        kind,
        id,
        parent,
        name,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::{point, span};

    fn sample() -> Snapshot {
        let rec = Recorder::new();
        rec.add("c.one", 3);
        rec.set_gauge("g.neg", -7);
        rec.set_gauge("g.pos", 9);
        rec.record("h.bytes", 0);
        rec.record("h.bytes", 700);
        {
            let _s = span!(rec, "outer", version = 1u64, ratio = 0.5f64, on = true);
            point!(rec, "leaf", why = "because", delta = -3i64);
        }
        rec.snapshot()
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let snap = sample();
        let text = snap.to_jsonl();
        let back = Snapshot::from_jsonl(&text).unwrap();
        assert_eq!(back, snap);
        // And the re-encoding is byte-identical (stable ordering).
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn spans_match_starts_to_ends() {
        let snap = sample();
        let spans = snap.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "outer");
        assert!(spans[0].end_us.is_some());
        assert_eq!(spans[0].field_u64("version"), Some(1));
    }

    #[test]
    fn text_render_mentions_everything() {
        let text = sample().render_text();
        assert!(text.contains("c.one"));
        assert!(text.contains("g.neg"));
        assert!(text.contains("h.bytes"));
        assert!(text.contains("outer"));
    }

    #[test]
    fn to_json_is_parseable_single_object() {
        let snap = sample();
        let text = snap.to_json(&[("bench", FieldValue::Str("demo".into()))]);
        let obj = parse(&text).unwrap();
        assert_eq!(
            obj.get("meta")
                .and_then(|m| m.get("bench"))
                .and_then(Json::as_str),
            Some("demo")
        );
        assert!(obj.get("counters").is_some());
        assert!(obj.get("events").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(Snapshot::from_jsonl("{\"type\":\"nope\"}").is_err());
        assert!(Snapshot::from_jsonl("not json").is_err());
        assert!(Snapshot::from_jsonl("{\"type\":\"counter\",\"name\":\"x\"}").is_err());
    }
}
