//! Structural validation of JSONL event logs against the documented
//! schema (`docs/OBSERVABILITY.md`).
//!
//! [`validate_jsonl`] is intentionally stricter than
//! [`crate::Snapshot::from_jsonl`]: beyond parseability it checks the
//! metric/span **naming scheme** (lowercase dotted identifiers), that the
//! first line is a `meta` record with a known version, and that every
//! `span_end` refers to a previously started span. CI runs it over the
//! log emitted by `examples/observed_lifecycle.rs` via the
//! `obs-schema-check` binary.

use crate::hist::HIST_BUCKETS;
use crate::json::{parse, Json};
use crate::snapshot::JSONL_VERSION;

/// A schema violation: 1-based line number plus a description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaViolation {
    /// 1-based line number in the JSONL input.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SchemaViolation {}

/// Counts of what a valid log contained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemaSummary {
    /// Total non-empty lines.
    pub lines: usize,
    /// `counter` records.
    pub counters: usize,
    /// `gauge` records.
    pub gauges: usize,
    /// `histogram` records.
    pub histograms: usize,
    /// `span_start` records.
    pub span_starts: usize,
    /// `span_end` records.
    pub span_ends: usize,
    /// `event` (point) records.
    pub points: usize,
}

/// Whether `name` follows the naming scheme: dot-separated segments of
/// `[a-z0-9_]`, each starting with a letter, e.g. `engine.submit_us`.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg.starts_with(|c: char| c.is_ascii_lowercase())
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

fn fail(line: usize, message: impl Into<String>) -> SchemaViolation {
    SchemaViolation {
        line,
        message: message.into(),
    }
}

fn check_name(line: usize, obj: &Json) -> Result<(), SchemaViolation> {
    let name = obj
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(line, "missing string \"name\""))?;
    if !valid_name(name) {
        return Err(fail(line, format!("name {name:?} violates naming scheme")));
    }
    Ok(())
}

fn check_fields(line: usize, obj: &Json) -> Result<(), SchemaViolation> {
    match obj.get("fields") {
        None => Ok(()),
        Some(Json::Obj(pairs)) => {
            for (key, value) in pairs {
                if !valid_name(key) {
                    return Err(fail(
                        line,
                        format!("field key {key:?} violates naming scheme"),
                    ));
                }
                match value {
                    Json::U64(_) | Json::I64(_) | Json::F64(_) | Json::Str(_) | Json::Bool(_) => {}
                    other => {
                        return Err(fail(
                            line,
                            format!("field {key:?} has non-scalar value {other:?}"),
                        ))
                    }
                }
            }
            Ok(())
        }
        Some(_) => Err(fail(line, "\"fields\" must be an object")),
    }
}

fn req_u64(line: usize, obj: &Json, key: &str) -> Result<u64, SchemaViolation> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| fail(line, format!("missing non-negative integer {key:?}")))
}

/// Validates a JSONL export; returns counts on success, the **first**
/// violation otherwise.
pub fn validate_jsonl(text: &str) -> Result<SchemaSummary, SchemaViolation> {
    let mut summary = SchemaSummary::default();
    let mut started_spans = std::collections::HashSet::new();
    let mut saw_meta = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        summary.lines += 1;
        let obj = parse(raw).map_err(|e| fail(line, format!("not valid JSON: {}", e.message)))?;
        if !matches!(obj, Json::Obj(_)) {
            return Err(fail(line, "line is not a JSON object"));
        }
        let ty = obj
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| fail(line, "missing string \"type\""))?;
        if summary.lines == 1 && ty != "meta" {
            return Err(fail(line, "first record must have type \"meta\""));
        }
        match ty {
            "meta" => {
                if saw_meta {
                    return Err(fail(line, "duplicate meta record"));
                }
                saw_meta = true;
                let version = req_u64(line, &obj, "version")?;
                if version != JSONL_VERSION {
                    return Err(fail(line, format!("unsupported version {version}")));
                }
                req_u64(line, &obj, "dropped_events")?;
            }
            "counter" => {
                summary.counters += 1;
                check_name(line, &obj)?;
                req_u64(line, &obj, "value")?;
            }
            "gauge" => {
                summary.gauges += 1;
                check_name(line, &obj)?;
                obj.get("value")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| fail(line, "missing integer \"value\""))?;
            }
            "histogram" => {
                summary.histograms += 1;
                check_name(line, &obj)?;
                let count = req_u64(line, &obj, "count")?;
                req_u64(line, &obj, "sum")?;
                req_u64(line, &obj, "min")?;
                req_u64(line, &obj, "max")?;
                let buckets = obj
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| fail(line, "missing array \"buckets\""))?;
                let mut total = 0u64;
                for pair in buckets {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| fail(line, "bucket entries must be [index,count] pairs"))?;
                    let bucket_idx = pair[0]
                        .as_u64()
                        .ok_or_else(|| fail(line, "bucket index must be an integer"))?;
                    if bucket_idx >= HIST_BUCKETS as u64 {
                        return Err(fail(
                            line,
                            format!("bucket index {bucket_idx} out of range"),
                        ));
                    }
                    total += pair[1]
                        .as_u64()
                        .ok_or_else(|| fail(line, "bucket count must be an integer"))?;
                }
                if total != count {
                    return Err(fail(
                        line,
                        format!("bucket counts sum to {total} but count is {count}"),
                    ));
                }
            }
            "span_start" => {
                summary.span_starts += 1;
                check_name(line, &obj)?;
                check_fields(line, &obj)?;
                req_u64(line, &obj, "t_us")?;
                let id = req_u64(line, &obj, "id")?;
                if id == 0 {
                    return Err(fail(line, "span id must be non-zero"));
                }
                started_spans.insert(id);
            }
            "span_end" => {
                summary.span_ends += 1;
                check_name(line, &obj)?;
                req_u64(line, &obj, "t_us")?;
                let id = req_u64(line, &obj, "id")?;
                if !started_spans.contains(&id) {
                    return Err(fail(line, format!("span_end for unknown span id {id}")));
                }
            }
            "event" => {
                summary.points += 1;
                check_name(line, &obj)?;
                check_fields(line, &obj)?;
                req_u64(line, &obj, "t_us")?;
            }
            other => return Err(fail(line, format!("unknown type {other:?}"))),
        }
    }
    if !saw_meta && summary.lines > 0 {
        return Err(fail(1, "no meta record"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::{point, span};

    #[test]
    fn real_snapshots_validate() {
        let rec = Recorder::new();
        rec.add("engine.submissions", 2);
        rec.set_gauge("engine.queue_depth", 1);
        rec.record("engine.submit_us", 1234);
        {
            let _s = span!(rec, "engine.submit", version = 0u64);
            point!(rec, "engine.recovery.reject", reason = "bad checksum");
        }
        let text = rec.snapshot().to_jsonl();
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.gauges, 1);
        assert_eq!(summary.histograms, 1);
        assert_eq!(summary.span_starts, 1);
        assert_eq!(summary.span_ends, 1);
        assert_eq!(summary.points, 1);
    }

    #[test]
    fn naming_scheme() {
        assert!(valid_name("engine.submit_us"));
        assert!(valid_name("ad.sweep.value.cross_contribs"));
        assert!(!valid_name("Engine.submit"));
        assert!(!valid_name("engine..submit"));
        assert!(!valid_name("engine.3d"));
        assert!(!valid_name(""));
        assert!(!valid_name("engine.submit-us"));
    }

    #[test]
    fn violations_are_caught() {
        // Dangling span_end.
        let text = "{\"type\":\"meta\",\"version\":1,\"dropped_events\":0}\n{\"type\":\"span_end\",\"t_us\":1,\"id\":9,\"name\":\"x\"}\n";
        let err = validate_jsonl(text).unwrap_err();
        assert!(err.message.contains("unknown span id"), "{err}");
        // Torn histogram: bucket sum != count.
        let text = "{\"type\":\"meta\",\"version\":1,\"dropped_events\":0}\n{\"type\":\"histogram\",\"name\":\"h\",\"count\":3,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[[0,2]]}\n";
        let err = validate_jsonl(text).unwrap_err();
        assert!(err.message.contains("sum to 2"), "{err}");
        // First line must be meta.
        let err =
            validate_jsonl("{\"type\":\"counter\",\"name\":\"c\",\"value\":0}\n").unwrap_err();
        assert!(err.message.contains("meta"), "{err}");
        // Bad name.
        let text = "{\"type\":\"meta\",\"version\":1,\"dropped_events\":0}\n{\"type\":\"counter\",\"name\":\"BAD NAME\",\"value\":0}\n";
        assert!(validate_jsonl(text).is_err());
    }
}
