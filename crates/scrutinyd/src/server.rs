//! The `scrutinyd` daemon: N tenants' checkpoint traffic multiplexed
//! onto one [`StorageBackend`] pool.
//!
//! Each accepted connection is served by its own thread (std-only;
//! checkpoint traffic is few-connections/large-frames, where
//! thread-per-connection is the simple and fast shape). A connection
//! HELLOs into a tenant and from then on sees exactly that tenant's
//! namespace — a [`NamespacedBackend`] view of the pool, so isolation is
//! enforced by the same code path the embedded engines use, not by
//! daemon-side string checks.
//!
//! Admission control reuses the engine's double-buffered
//! [`StagingGate`], one per tenant: at most `admission` PUTs of a tenant
//! are against the pool at once, and further PUTs *block on the socket*
//! (natural backpressure) rather than failing. Hard quota violations —
//! inflight bytes, committed versions, object size — are refused with
//! typed [`Response::Rejected`] frames instead: the client sees
//! [`CkptError::Rejected`](scrutiny_ckpt::CkptError#variant.Rejected) and its
//! chain stays intact.
//!
//! Shutdown is a control frame ([`Request::Shutdown`]) or
//! [`Daemon::shutdown`]: the daemon stops accepting, lets in-flight
//! operations finish, closes idle connections at their next
//! between-frames poll, and [`Daemon::join`] then flushes the obs
//! [`Recorder`] snapshot to one JSONL log with every tenant's submit /
//! publish / marker history in it.

use crate::proto::{
    write_frame, RejectReason, Request, Response, TenantStats, MAX_FRAME, PROTO_VERSION,
};
use crate::sock::{Endpoint, Stream};
use scrutiny_ckpt::names::{self, Tenant};
use scrutiny_ckpt::CkptError;
use scrutiny_engine::{list_versions, NamespacedBackend, StagingGate, StorageBackend};
use scrutiny_obs::{point, span, Gauge, Recorder};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often idle connections poll the drain flag between frames.
const POLL: Duration = Duration::from_millis(25);
/// Once a frame has started arriving, how long the daemon waits for the
/// rest before declaring the connection torn. Bounds how long a stuck
/// client can delay [`Daemon::join`].
const FRAME_TIMEOUT: Duration = Duration::from_secs(5);

/// The obs segment used for the default tenant (the un-prefixed pool
/// root). A HELLO naming this id explicitly is refused so per-tenant
/// metric names cannot collide with the root's.
pub const DEFAULT_TENANT_OBS: &str = "default";

/// Daemon policy: admission width, quotas, observability sinks.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Per-tenant concurrent PUT admissions (the [`StagingGate`]
    /// capacity). 2 = double-buffered, matching the engine's staging:
    /// one submission writes while the next stages.
    pub admission: usize,
    /// Per-tenant cap on payload bytes concurrently being written;
    /// beyond it PUTs are refused with `inflight_bytes`. `None` = no cap.
    pub max_inflight_bytes: Option<u64>,
    /// Per-object payload cap; larger PUTs are refused with
    /// `object_too_large`. `None` = no cap (frames are still bounded by
    /// [`MAX_FRAME`]).
    pub max_object_bytes: Option<u64>,
    /// Per-tenant cap on *committed* checkpoint versions; a PUT that
    /// would commit a version beyond it is refused with `version_quota`.
    /// Overwrites of an existing version and non-committing objects
    /// (aux, shards) always pass. `None` = no cap.
    pub max_versions: Option<usize>,
    /// Where daemon spans/points/gauges land. Disabled by default.
    pub recorder: Recorder,
    /// If set, [`Daemon::join`] writes the recorder's final snapshot
    /// here as JSONL (the single log the per-tenant history is
    /// reconstructed from).
    pub obs_jsonl: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            admission: 2,
            max_inflight_bytes: None,
            max_object_bytes: None,
            max_versions: None,
            recorder: Recorder::disabled(),
            obs_jsonl: None,
        }
    }
}

/// Per-tenant daemon state: the admission gate, byte accounting, and
/// pre-resolved per-tenant obs handles.
struct TenantState {
    gate: StagingGate,
    inflight_bytes: AtomicU64,
    accepted_bytes: AtomicU64,
    /// `scrutinyd.queue_depth.<tenant>`: PUTs admitted or waiting.
    queue_depth: Gauge,
    /// `scrutinyd.inflight_bytes.<tenant>`.
    inflight_gauge: Gauge,
    obs_name: String,
}

struct Shared {
    pool: Arc<dyn StorageBackend>,
    cfg: DaemonConfig,
    rec: Recorder,
    draining: AtomicBool,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn tenant_state(&self, obs_name: &str) -> Arc<TenantState> {
        let mut map = self.tenants.lock().unwrap();
        map.entry(obs_name.to_string())
            .or_insert_with(|| {
                Arc::new(TenantState {
                    gate: StagingGate::new(self.cfg.admission.max(1)),
                    inflight_bytes: AtomicU64::new(0),
                    accepted_bytes: AtomicU64::new(0),
                    queue_depth: self.rec.gauge(&format!("scrutinyd.queue_depth.{obs_name}")),
                    inflight_gauge: self
                        .rec
                        .gauge(&format!("scrutinyd.inflight_bytes.{obs_name}")),
                    obs_name: obs_name.to_string(),
                })
            })
            .clone()
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
            #[cfg(unix)]
            Listener::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
        }
    }
}

/// A running daemon. Dropping it (or calling
/// [`Daemon::shutdown`] + [`Daemon::join`]) drains and stops it.
pub struct Daemon {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    endpoint: Endpoint,
}

impl Daemon {
    /// Bind a TCP listener on `addr` (e.g. `127.0.0.1:0` for an
    /// ephemeral port — [`Daemon::endpoint`] reports the bound address)
    /// and serve `pool` behind it.
    pub fn spawn_tcp(
        addr: &str,
        pool: Arc<dyn StorageBackend>,
        cfg: DaemonConfig,
    ) -> io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        let endpoint = Endpoint::Tcp(listener.local_addr()?.to_string());
        Self::spawn(Listener::Tcp(listener), endpoint, pool, cfg)
    }

    /// Bind a Unix-domain socket at `path` (removing any stale socket
    /// file first) and serve `pool` behind it.
    #[cfg(unix)]
    pub fn spawn_unix(
        path: impl Into<PathBuf>,
        pool: Arc<dyn StorageBackend>,
        cfg: DaemonConfig,
    ) -> io::Result<Daemon> {
        let path = path.into();
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path)?;
        Self::spawn(Listener::Unix(listener), Endpoint::Unix(path), pool, cfg)
    }

    fn spawn(
        listener: Listener,
        endpoint: Endpoint,
        pool: Arc<dyn StorageBackend>,
        cfg: DaemonConfig,
    ) -> io::Result<Daemon> {
        let rec = cfg.recorder.clone();
        let shared = Arc::new(Shared {
            pool,
            rec,
            cfg,
            draining: AtomicBool::new(false),
            tenants: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("scrutinyd-accept".into())
            .spawn(move || loop {
                let stream = match listener.accept() {
                    Ok(s) => s,
                    Err(_) => break,
                };
                if accept_shared.draining.load(Ordering::SeqCst) {
                    break; // the shutdown wake-up dial, or a late client
                }
                let conn_shared = accept_shared.clone();
                let handle = std::thread::Builder::new()
                    .name("scrutinyd-conn".into())
                    .spawn(move || serve(conn_shared, stream));
                if let Ok(h) = handle {
                    accept_shared.conns.lock().unwrap().push(h);
                }
            })?;
        Ok(Daemon {
            shared,
            accept: Some(accept),
            endpoint,
        })
    }

    /// The address clients dial.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    /// The daemon's recorder (e.g. to snapshot mid-run in tests).
    pub fn recorder(&self) -> &Recorder {
        &self.shared.rec
    }

    /// Begin draining: stop accepting, let in-flight operations finish,
    /// close connections at their next between-frames poll. Idempotent;
    /// also triggered by a [`Request::Shutdown`] control frame.
    pub fn shutdown(&self) {
        trigger_drain(&self.shared, &self.endpoint);
    }

    /// Block until a shutdown is requested — a [`Request::Shutdown`]
    /// control frame from any client, or [`Daemon::shutdown`] from
    /// another thread — then drain and [`Daemon::join`]. This is the
    /// daemon binary's main loop.
    pub fn wait(self) -> io::Result<()> {
        while !self.shared.draining.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
        self.join()
    }

    /// Drain (if not already draining) and wait for the accept loop and
    /// every connection to finish; then flush the obs snapshot to
    /// [`DaemonConfig::obs_jsonl`] and remove a Unix socket file.
    pub fn join(mut self) -> io::Result<()> {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let Some(h) = self.shared.conns.lock().unwrap().pop() else {
                break;
            };
            let _ = h.join();
        }
        if let Some(path) = &self.shared.cfg.obs_jsonl {
            std::fs::write(path, self.shared.rec.snapshot().to_jsonl())?;
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.accept.is_some() {
            trigger_drain(&self.shared, &self.endpoint);
            if let Some(h) = self.accept.take() {
                let _ = h.join();
            }
        }
    }
}

fn trigger_drain(shared: &Shared, endpoint: &Endpoint) {
    if !shared.draining.swap(true, Ordering::SeqCst) {
        point!(shared.rec, "scrutinyd.drain");
    }
    // Wake the accept loop: it only checks the flag after `accept`
    // returns, so dial it once. The connection is discarded immediately.
    let _ = Stream::connect(endpoint);
}

/// One HELLO'd connection's identity: the tenant's namespace view plus
/// its shared per-tenant state.
struct Session {
    view: NamespacedBackend,
    state: Arc<TenantState>,
}

fn serve(shared: Arc<Shared>, mut stream: Stream) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut session: Option<Session> = None;
    while let Some(payload) = read_frame_polled(&shared, &mut stream) {
        shared.rec.add("scrutinyd.requests", 1);
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // A malformed frame leaves the stream position
                // undefined; answer once, then close.
                let resp = Response::Err(format!("protocol error: {e}"));
                let _ = write_frame(&mut stream, &resp.encode());
                break;
            }
        };
        let shutdown_after = matches!(req, Request::Shutdown);
        let resp = handle(&shared, &mut session, req);
        if matches!(resp, Response::Rejected { .. }) {
            shared.rec.add("scrutinyd.rejections", 1);
        }
        if write_frame(&mut stream, &resp.encode()).is_err() {
            break;
        }
        if shutdown_after {
            trigger_drain(&shared, &daemon_endpoint_hint(&stream));
            break;
        }
    }
}

/// The drain wake-up needs *an* endpoint to dial; derive it from the
/// served connection's own socket so `serve` does not need the listener
/// address threaded through.
fn daemon_endpoint_hint(stream: &Stream) -> Endpoint {
    match stream {
        Stream::Tcp(s) => Endpoint::Tcp(
            s.local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "127.0.0.1:0".into()),
        ),
        #[cfg(unix)]
        Stream::Unix(s) => Endpoint::Unix(
            s.local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(PathBuf::from))
                .unwrap_or_default(),
        ),
    }
}

/// Read one frame, polling the drain flag between frames. `None` means
/// the connection is done (peer closed, torn frame, or drain).
fn read_frame_polled(shared: &Shared, stream: &mut Stream) -> Option<Vec<u8>> {
    // Between frames: wait for the first byte in short timeouts so a
    // drain closes idle connections promptly.
    let first = loop {
        if shared.draining.load(Ordering::SeqCst) {
            return None;
        }
        let mut b = [0u8; 1];
        match stream.read(&mut b) {
            Ok(0) => return None,
            Ok(_) => break b[0],
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => return None,
        }
    };
    // Committed to a frame: finish it under a bounded timeout.
    let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
    let result = (|| -> io::Result<Vec<u8>> {
        let mut rest = [0u8; 3];
        stream.read_exact(&mut rest)?;
        let n = u32::from_le_bytes([first, rest[0], rest[1], rest[2]]);
        if n > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {n:#x} exceeds cap"),
            ));
        }
        let mut payload = vec![0u8; n as usize];
        stream.read_exact(&mut payload)?;
        Ok(payload)
    })();
    let _ = stream.set_read_timeout(Some(POLL));
    result.ok()
}

fn reject(reason: RejectReason, message: impl Into<String>) -> Response {
    Response::Rejected {
        reason,
        message: message.into(),
    }
}

fn handle(shared: &Shared, session: &mut Option<Session>, req: Request) -> Response {
    if let Request::Hello { version, tenant } = &req {
        return handle_hello(shared, session, *version, tenant);
    }
    if matches!(req, Request::Shutdown) {
        // Control plane: allowed pre-HELLO (operational tooling).
        return Response::Ok;
    }
    let Some(sess) = session.as_ref() else {
        return reject(RejectReason::NoHello, "first frame must be HELLO");
    };
    match req {
        Request::Put { name, bytes } => handle_put(shared, sess, &name, &bytes),
        Request::Get { name } => handle_get(shared, sess, &name),
        Request::List => match sess.view.list() {
            Ok(names) => Response::Names(names),
            Err(e) => Response::Err(e.to_string()),
        },
        Request::Delete { name } => {
            if name.contains('/') {
                return reject(RejectReason::BadName, "object names must not contain '/'");
            }
            match sess.view.delete(&name) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e.to_string()),
            }
        }
        Request::Mark { label, fields } => handle_mark(shared, sess, &label, &fields),
        Request::Stats => handle_stats(sess),
        Request::Ping => Response::Ok,
        Request::Hello { .. } | Request::Shutdown => unreachable!("handled above"),
    }
}

fn handle_hello(
    shared: &Shared,
    session: &mut Option<Session>,
    version: u16,
    tenant: &str,
) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return reject(RejectReason::Draining, "daemon is shutting down");
    }
    if version != PROTO_VERSION {
        return reject(
            RejectReason::BadProto,
            format!("protocol version {version} unsupported; daemon speaks {PROTO_VERSION}"),
        );
    }
    let (view, obs_name) = if tenant.is_empty() {
        (
            NamespacedBackend::root(shared.pool.clone()),
            DEFAULT_TENANT_OBS.to_string(),
        )
    } else {
        if tenant == DEFAULT_TENANT_OBS {
            return reject(
                RejectReason::BadTenant,
                format!("tenant id {DEFAULT_TENANT_OBS:?} is reserved for the pool root"),
            );
        }
        let t = match Tenant::new(tenant) {
            Ok(t) => t,
            Err(e) => return reject(RejectReason::BadTenant, e.to_string()),
        };
        let obs = t.as_str().to_string();
        (NamespacedBackend::for_tenant(shared.pool.clone(), t), obs)
    };
    let state = shared.tenant_state(&obs_name);
    point!(shared.rec, "scrutinyd.hello", tenant = obs_name.as_str());
    *session = Some(Session { view, state });
    Response::Ok
}

fn handle_put(shared: &Shared, sess: &Session, name: &str, bytes: &[u8]) -> Response {
    if name.contains('/') {
        return reject(
            RejectReason::BadName,
            format!("object name {name:?} escapes the tenant namespace"),
        );
    }
    let len = bytes.len() as u64;
    if let Some(cap) = shared.cfg.max_object_bytes {
        if len > cap {
            return reject(
                RejectReason::ObjectTooLarge,
                format!("object is {len} bytes; per-object cap is {cap}"),
            );
        }
    }
    let st = &sess.state;
    // Queue depth counts waiters too: the gauge shows pressure building
    // *before* the gate, which is what capacity planning needs.
    st.queue_depth.adjust(1);
    st.gate.acquire();
    let resp = admitted_put(shared, sess, name, bytes, len);
    st.gate.release();
    st.queue_depth.adjust(-1);
    resp
}

/// The quota checks and the write itself, run while holding one of the
/// tenant's admission slots.
fn admitted_put(shared: &Shared, sess: &Session, name: &str, bytes: &[u8], len: u64) -> Response {
    let st = &sess.state;
    if let Some(cap) = shared.cfg.max_inflight_bytes {
        let prev = st.inflight_bytes.fetch_add(len, Ordering::SeqCst);
        if prev + len > cap {
            st.inflight_bytes.fetch_sub(len, Ordering::SeqCst);
            return reject(
                RejectReason::InflightBytes,
                format!("{prev} inflight + {len} new bytes exceeds the {cap}-byte budget"),
            );
        }
    } else {
        st.inflight_bytes.fetch_add(len, Ordering::SeqCst);
    }
    st.inflight_gauge.adjust(len as i64);
    let resp = (|| {
        if let Some(maxv) = shared.cfg.max_versions {
            if let Some(v) = names::committed_version(name) {
                let existing = match list_versions(&sess.view) {
                    Ok(vs) => vs,
                    Err(e) => return Response::Err(e.to_string()),
                };
                if !existing.contains(&v) && existing.len() >= maxv {
                    return reject(
                        RejectReason::VersionQuota,
                        format!(
                            "tenant holds {} committed versions; quota is {maxv}",
                            existing.len()
                        ),
                    );
                }
            }
        }
        let span = span!(
            shared.rec,
            "scrutinyd.submit",
            tenant = st.obs_name.as_str(),
            object = name,
            bytes = len
        );
        let result = sess.view.put(name, bytes);
        drop(span);
        match result {
            Ok(()) => {
                st.accepted_bytes.fetch_add(len, Ordering::Relaxed);
                if let Some(v) = names::committed_version(name) {
                    point!(
                        shared.rec,
                        "scrutinyd.publish",
                        tenant = st.obs_name.as_str(),
                        version = v,
                        object = name,
                        bytes = len
                    );
                }
                Response::Ok
            }
            Err(e) => Response::Err(e.to_string()),
        }
    })();
    st.inflight_bytes.fetch_sub(len, Ordering::SeqCst);
    st.inflight_gauge.adjust(-(len as i64));
    resp
}

fn handle_get(shared: &Shared, sess: &Session, name: &str) -> Response {
    if name.contains('/') {
        return reject(
            RejectReason::BadName,
            format!("object name {name:?} escapes the tenant namespace"),
        );
    }
    let span = span!(
        shared.rec,
        "scrutinyd.fetch",
        tenant = sess.state.obs_name.as_str(),
        object = name
    );
    let result = sess.view.get(name);
    drop(span);
    match result {
        Ok(bytes) => Response::Bytes(bytes),
        Err(CkptError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
            Response::NotFound(e.to_string())
        }
        Err(e) => Response::Err(e.to_string()),
    }
}

fn handle_mark(
    shared: &Shared,
    sess: &Session,
    label: &str,
    fields: &[(String, String)],
) -> Response {
    for (k, _) in fields {
        if !scrutiny_obs::schema::valid_name(k) {
            return reject(
                RejectReason::BadName,
                format!("marker field key {k:?} violates the obs naming scheme"),
            );
        }
    }
    let mut all: Vec<(&str, scrutiny_obs::FieldValue)> = Vec::with_capacity(fields.len() + 2);
    all.push(("tenant", sess.state.obs_name.as_str().into()));
    all.push(("label", label.into()));
    for (k, v) in fields {
        all.push((k.as_str(), v.as_str().into()));
    }
    shared.rec.event("scrutinyd.mark", &all);
    Response::Ok
}

fn handle_stats(sess: &Session) -> Response {
    let versions = match list_versions(&sess.view) {
        Ok(vs) => vs.len() as u64,
        Err(e) => return Response::Err(e.to_string()),
    };
    let objects = match sess.view.list() {
        Ok(names) => names.len() as u64,
        Err(e) => return Response::Err(e.to_string()),
    };
    Response::Stats(TenantStats {
        versions,
        objects,
        accepted_bytes: sess.state.accepted_bytes.load(Ordering::Relaxed),
        inflight_bytes: sess.state.inflight_bytes.load(Ordering::Relaxed),
    })
}
