//! The `scrutinyd` wire protocol: length-prefixed binary frames over a
//! byte stream (TCP or Unix socket). `docs/PROTOCOL.md` is the normative
//! spec; this module is its only implementation — both the daemon and
//! [`crate::RemoteBackend`] encode and decode through the same
//! [`Request`]/[`Response`] types, so the two sides cannot drift.
//!
//! Framing: `u32` little-endian payload length, then the payload; the
//! payload's first byte is an opcode ([`Request`]) or status byte
//! ([`Response`]), the rest is body. Strings are `u16` length + UTF-8;
//! blobs are `u32` length + bytes; integers are little-endian. A length
//! prefix above [`MAX_FRAME`] is rejected *before* any allocation —
//! garbage on the wire becomes a typed [`std::io::ErrorKind::InvalidData`]
//! error, not an OOM.

use std::io::{self, Read, Write};

/// Protocol version a client states in [`Request::Hello`]; the daemon
/// refuses anything else ([`RejectReason::BadProto`]).
pub const PROTO_VERSION: u16 = 1;

/// Largest legal frame payload (length prefix bound): 256 MiB. Large
/// enough for any checkpoint shard the engine produces, small enough
/// that a corrupted length prefix fails fast.
pub const MAX_FRAME: u32 = 1 << 28;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Why the daemon refused an operation, as a closed set with stable
/// lower-snake wire codes (the codes are the wire format — see
/// `docs/PROTOCOL.md` — and the prefix of the
/// [`CkptError::Rejected`](scrutiny_ckpt::CkptError#variant.Rejected) string a
/// client surfaces).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Per-tenant inflight-byte budget exhausted; retry after inflight
    /// work drains.
    InflightBytes,
    /// The tenant is at its committed-version quota.
    VersionQuota,
    /// One object larger than the per-object cap.
    ObjectTooLarge,
    /// The daemon is draining for shutdown; no new work.
    Draining,
    /// Malformed object name (namespace escape, invalid field key).
    BadName,
    /// Malformed tenant id in HELLO.
    BadTenant,
    /// Client spoke an unsupported protocol version.
    BadProto,
    /// A non-HELLO request arrived before HELLO on this connection.
    NoHello,
}

impl RejectReason {
    /// The stable wire code.
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::InflightBytes => "inflight_bytes",
            RejectReason::VersionQuota => "version_quota",
            RejectReason::ObjectTooLarge => "object_too_large",
            RejectReason::Draining => "draining",
            RejectReason::BadName => "bad_name",
            RejectReason::BadTenant => "bad_tenant",
            RejectReason::BadProto => "bad_proto",
            RejectReason::NoHello => "no_hello",
        }
    }

    /// Parse a wire code.
    pub fn from_code(code: &str) -> Option<RejectReason> {
        Some(match code {
            "inflight_bytes" => RejectReason::InflightBytes,
            "version_quota" => RejectReason::VersionQuota,
            "object_too_large" => RejectReason::ObjectTooLarge,
            "draining" => RejectReason::Draining,
            "bad_name" => RejectReason::BadName,
            "bad_tenant" => RejectReason::BadTenant,
            "bad_proto" => RejectReason::BadProto,
            "no_hello" => RejectReason::NoHello,
            _ => return None,
        })
    }
}

/// Per-tenant accounting the daemon reports for [`Request::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Committed checkpoint versions currently in the tenant's namespace.
    pub versions: u64,
    /// Objects currently in the tenant's namespace.
    pub objects: u64,
    /// Cumulative payload bytes accepted from this tenant (lifetime of
    /// the daemon, survives deletes).
    pub accepted_bytes: u64,
    /// Payload bytes currently being written on the tenant's behalf.
    pub inflight_bytes: u64,
}

/// A client→daemon frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// First frame on every connection: protocol version + tenant id
    /// (empty string = the default tenant, the un-prefixed pool root).
    Hello {
        /// Client's protocol version ([`PROTO_VERSION`]).
        version: u16,
        /// Tenant id; empty for the default tenant.
        tenant: String,
    },
    /// Store an object under a tenant-local grammar name.
    Put {
        /// Tenant-local object name (no `/`).
        name: String,
        /// Object payload.
        bytes: Vec<u8>,
    },
    /// Fetch a whole object.
    Get {
        /// Tenant-local object name.
        name: String,
    },
    /// List the tenant's object names.
    List,
    /// Delete an object (idempotent).
    Delete {
        /// Tenant-local object name.
        name: String,
    },
    /// Drop a client-correlated marker event into the daemon's obs log,
    /// so client-side phases (a recovery walk, a fault injection) are
    /// reconstructable from the daemon's single JSONL log.
    Mark {
        /// Marker label (must fit the obs naming scheme for a field
        /// *value* it is free-form; it is stored as a string field).
        label: String,
        /// Extra string fields; keys must fit the obs naming scheme.
        fields: Vec<(String, String)>,
    },
    /// Ask for this tenant's [`TenantStats`].
    Stats,
    /// Liveness probe.
    Ping,
    /// Control frame: drain and stop the daemon. In-flight operations
    /// finish; new connections and further frames are refused.
    Shutdown,
}

/// A daemon→client frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success, no payload.
    Ok,
    /// Success with an object payload ([`Request::Get`]).
    Bytes(Vec<u8>),
    /// Success with a name listing ([`Request::List`]).
    Names(Vec<String>),
    /// Success with tenant accounting ([`Request::Stats`]).
    Stats(TenantStats),
    /// The object does not exist (maps to
    /// [`std::io::ErrorKind::NotFound`] client-side — the signal layout
    /// probing relies on).
    NotFound(String),
    /// Refused by policy — quota, backpressure, drain, or a malformed
    /// request. The daemon stays healthy; the tenant's stored bytes are
    /// untouched.
    Rejected {
        /// Typed reason.
        reason: RejectReason,
        /// Human-readable detail.
        message: String,
    },
    /// The daemon failed to execute the operation (e.g. storage I/O
    /// error). Unlike [`Response::Rejected`] this is a failure, not a
    /// policy decision.
    Err(String),
}

// Opcodes (request payload byte 0).
const OP_HELLO: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_GET: u8 = 0x03;
const OP_LIST: u8 = 0x04;
const OP_DELETE: u8 = 0x05;
const OP_MARK: u8 = 0x06;
const OP_STATS: u8 = 0x07;
const OP_PING: u8 = 0x08;
const OP_SHUTDOWN: u8 = 0x09;

// Status bytes (response payload byte 0).
const ST_OK: u8 = 0x80;
const ST_BYTES: u8 = 0x81;
const ST_NAMES: u8 = 0x82;
const ST_STATS: u8 = 0x83;
const ST_NOT_FOUND: u8 = 0x90;
const ST_REJECTED: u8 = 0x91;
const ST_ERR: u8 = 0x92;

// --------------------------------------------------------------------------
// Primitive encoding.
// --------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new(op: u8) -> Enc {
        Enc(vec![op])
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
        self.u16(s.len().min(u16::MAX as usize) as u16);
        self.0
            .extend_from_slice(&s.as_bytes()[..s.len().min(u16::MAX as usize)]);
    }
    fn blob(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(bad(format!(
                "frame truncated: wanted {n} more bytes, have {}",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> io::Result<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| bad("string field is not UTF-8"))
    }
    fn blob(&mut self) -> io::Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn done(self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(bad(format!(
                "frame has {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Framing.
// --------------------------------------------------------------------------

/// Write one frame: `u32` LE payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. A length prefix above [`MAX_FRAME`] is
/// [`std::io::ErrorKind::InvalidData`] — a garbage or corrupted prefix
/// must not drive an allocation. A clean EOF before any byte of the
/// prefix is [`std::io::ErrorKind::UnexpectedEof`] with message
/// `"connection closed"` so callers can tell orderly close from a torn
/// frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    let mut first = [0u8; 1];
    // First byte separately: distinguishes "peer closed between frames"
    // from "frame torn mid-way".
    match r.read(&mut first)? {
        0 => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed",
            ))
        }
        _ => len[0] = first[0],
    }
    r.read_exact(&mut len[1..])?;
    let n = u32::from_le_bytes(len);
    if n > MAX_FRAME {
        return Err(bad(format!(
            "frame length {n:#x} exceeds the {MAX_FRAME:#x}-byte cap (corrupt length prefix?)"
        )));
    }
    let mut payload = vec![0u8; n as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// --------------------------------------------------------------------------
// Request codec.
// --------------------------------------------------------------------------

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { version, tenant } => {
                let mut e = Enc::new(OP_HELLO);
                e.u16(*version);
                e.str(tenant);
                e.0
            }
            Request::Put { name, bytes } => {
                let mut e = Enc::new(OP_PUT);
                e.str(name);
                e.blob(bytes);
                e.0
            }
            Request::Get { name } => {
                let mut e = Enc::new(OP_GET);
                e.str(name);
                e.0
            }
            Request::List => Enc::new(OP_LIST).0,
            Request::Delete { name } => {
                let mut e = Enc::new(OP_DELETE);
                e.str(name);
                e.0
            }
            Request::Mark { label, fields } => {
                let mut e = Enc::new(OP_MARK);
                e.str(label);
                e.u16(fields.len().min(u16::MAX as usize) as u16);
                for (k, v) in fields {
                    e.str(k);
                    e.str(v);
                }
                e.0
            }
            Request::Stats => Enc::new(OP_STATS).0,
            Request::Ping => Enc::new(OP_PING).0,
            Request::Shutdown => Enc::new(OP_SHUTDOWN).0,
        }
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let mut d = Dec::new(payload);
        let req = match d.u8()? {
            OP_HELLO => Request::Hello {
                version: d.u16()?,
                tenant: d.str()?,
            },
            OP_PUT => Request::Put {
                name: d.str()?,
                bytes: d.blob()?,
            },
            OP_GET => Request::Get { name: d.str()? },
            OP_LIST => Request::List,
            OP_DELETE => Request::Delete { name: d.str()? },
            OP_MARK => {
                let label = d.str()?;
                let n = d.u16()? as usize;
                let mut fields = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    fields.push((d.str()?, d.str()?));
                }
                Request::Mark { label, fields }
            }
            OP_STATS => Request::Stats,
            OP_PING => Request::Ping,
            OP_SHUTDOWN => Request::Shutdown,
            op => return Err(bad(format!("unknown request opcode {op:#04x}"))),
        };
        d.done()?;
        Ok(req)
    }
}

// --------------------------------------------------------------------------
// Response codec.
// --------------------------------------------------------------------------

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok => Enc::new(ST_OK).0,
            Response::Bytes(b) => {
                let mut e = Enc::new(ST_BYTES);
                e.blob(b);
                e.0
            }
            Response::Names(names) => {
                let mut e = Enc::new(ST_NAMES);
                e.u32(names.len() as u32);
                for n in names {
                    e.str(n);
                }
                e.0
            }
            Response::Stats(s) => {
                let mut e = Enc::new(ST_STATS);
                e.u64(s.versions);
                e.u64(s.objects);
                e.u64(s.accepted_bytes);
                e.u64(s.inflight_bytes);
                e.0
            }
            Response::NotFound(m) => {
                let mut e = Enc::new(ST_NOT_FOUND);
                e.str(m);
                e.0
            }
            Response::Rejected { reason, message } => {
                let mut e = Enc::new(ST_REJECTED);
                e.str(reason.code());
                e.str(message);
                e.0
            }
            Response::Err(m) => {
                let mut e = Enc::new(ST_ERR);
                e.str(m);
                e.0
            }
        }
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let mut d = Dec::new(payload);
        let resp = match d.u8()? {
            ST_OK => Response::Ok,
            ST_BYTES => Response::Bytes(d.blob()?),
            ST_NAMES => {
                let n = d.u32()? as usize;
                let mut names = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    names.push(d.str()?);
                }
                Response::Names(names)
            }
            ST_STATS => Response::Stats(TenantStats {
                versions: d.u64()?,
                objects: d.u64()?,
                accepted_bytes: d.u64()?,
                inflight_bytes: d.u64()?,
            }),
            ST_NOT_FOUND => Response::NotFound(d.str()?),
            ST_REJECTED => {
                let code = d.str()?;
                let reason = RejectReason::from_code(&code)
                    .ok_or_else(|| bad(format!("unknown reject reason {code:?}")))?;
                Response::Rejected {
                    reason,
                    message: d.str()?,
                }
            }
            ST_ERR => Response::Err(d.str()?),
            st => return Err(bad(format!("unknown response status {st:#04x}"))),
        };
        d.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &resp.encode()).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip_req(Request::Hello {
            version: PROTO_VERSION,
            tenant: "t1".into(),
        });
        roundtrip_req(Request::Put {
            name: "ckpt_000001.data".into(),
            bytes: vec![0, 1, 2, 255],
        });
        roundtrip_req(Request::Get {
            name: "ckpt_000001.aux".into(),
        });
        roundtrip_req(Request::List);
        roundtrip_req(Request::Delete { name: "x".into() });
        roundtrip_req(Request::Mark {
            label: "recovery_start".into(),
            fields: vec![("phase".into(), "walk".into())],
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Shutdown);
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Bytes(vec![9; 1000]));
        roundtrip_resp(Response::Names(vec!["a".into(), "b".into()]));
        roundtrip_resp(Response::Stats(TenantStats {
            versions: 3,
            objects: 7,
            accepted_bytes: 12345,
            inflight_bytes: 42,
        }));
        roundtrip_resp(Response::NotFound("no object".into()));
        roundtrip_resp(Response::Rejected {
            reason: RejectReason::VersionQuota,
            message: "at 8 versions".into(),
        });
        roundtrip_resp(Response::Err("disk on fire".into()));
    }

    #[test]
    fn garbage_length_prefix_is_invalid_data_not_an_allocation() {
        let wire = [0xFF, 0xFF, 0xFF, 0xFF, 0, 0];
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("length prefix"), "{err}");
    }

    #[test]
    fn torn_frames_are_unexpected_eof() {
        // EOF before any byte: orderly close.
        let err = read_frame(&mut [].as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("connection closed"));
        // Frame cut mid-payload: torn.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Response::Bytes(vec![7; 64]).encode()).unwrap();
        wire.truncate(wire.len() - 10);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn trailing_or_truncated_payloads_are_rejected() {
        let mut p = Request::Ping.encode();
        p.push(0);
        assert!(Request::decode(&p).is_err());
        let p = Request::Put {
            name: "x".into(),
            bytes: vec![1, 2, 3],
        }
        .encode();
        assert!(Request::decode(&p[..p.len() - 1]).is_err());
        assert!(Request::decode(&[0x7F]).is_err());
        assert!(Response::decode(&[0x00]).is_err());
    }
}
