//! The `scrutinyd` daemon binary: serve a directory-backed checkpoint
//! pool to many tenants over a TCP or Unix socket.
//!
//! ```text
//! scrutinyd --dir POOL_DIR [--tcp ADDR | --unix PATH] [--obs FILE]
//!           [--admission N] [--max-versions N] [--max-object-bytes N]
//!           [--max-inflight-bytes N]
//! ```
//!
//! Runs until a client sends the shutdown control frame (e.g.
//! `RemoteBackend::shutdown_daemon`), then drains and exits; with
//! `--obs`, the final observability snapshot is written there as JSONL.

use scrutiny_engine::DirBackend;
use scrutiny_obs::Recorder;
use scrutinyd::{Daemon, DaemonConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn usage(err: &str) -> ! {
    eprintln!("scrutinyd: {err}");
    eprintln!(
        "usage: scrutinyd --dir POOL_DIR [--tcp ADDR | --unix PATH] [--obs FILE] \
         [--admission N] [--max-versions N] [--max-object-bytes N] [--max-inflight-bytes N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut dir: Option<PathBuf> = None;
    let mut tcp: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut cfg = DaemonConfig {
        recorder: Recorder::new(),
        ..DaemonConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("--dir"))),
            "--tcp" => tcp = Some(value("--tcp")),
            "--unix" => unix = Some(PathBuf::from(value("--unix"))),
            "--obs" => cfg.obs_jsonl = Some(PathBuf::from(value("--obs"))),
            "--admission" => {
                cfg.admission = value("--admission")
                    .parse()
                    .unwrap_or_else(|_| usage("--admission wants an integer"))
            }
            "--max-versions" => {
                cfg.max_versions = Some(
                    value("--max-versions")
                        .parse()
                        .unwrap_or_else(|_| usage("--max-versions wants an integer")),
                )
            }
            "--max-object-bytes" => {
                cfg.max_object_bytes = Some(
                    value("--max-object-bytes")
                        .parse()
                        .unwrap_or_else(|_| usage("--max-object-bytes wants an integer")),
                )
            }
            "--max-inflight-bytes" => {
                cfg.max_inflight_bytes = Some(
                    value("--max-inflight-bytes")
                        .parse()
                        .unwrap_or_else(|_| usage("--max-inflight-bytes wants an integer")),
                )
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    let Some(dir) = dir else {
        usage("--dir is required");
    };
    if tcp.is_some() && unix.is_some() {
        usage("--tcp and --unix are mutually exclusive");
    }
    let pool = match DirBackend::open(&dir) {
        Ok(b) => Arc::new(b),
        Err(e) => usage(&format!("cannot open pool directory: {e}")),
    };
    let daemon = match unix {
        Some(path) => Daemon::spawn_unix(path, pool, cfg),
        None => Daemon::spawn_tcp(tcp.as_deref().unwrap_or("127.0.0.1:0"), pool, cfg),
    };
    let daemon = match daemon {
        Ok(d) => d,
        Err(e) => usage(&format!("cannot bind: {e}")),
    };
    println!(
        "scrutinyd serving {} on {}",
        dir.display(),
        daemon.endpoint()
    );
    if let Err(e) = daemon.wait() {
        eprintln!("scrutinyd: shutdown error: {e}");
        std::process::exit(1);
    }
}
