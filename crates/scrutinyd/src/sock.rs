//! Socket plumbing shared by the daemon and [`crate::RemoteBackend`]:
//! one [`Endpoint`] address type and one [`Stream`] that speaks either
//! TCP or Unix-domain sockets, std-only.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon listens / a client dials.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7070`.
    Tcp(String),
    /// A Unix-domain socket path (Unix platforms only).
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A connected byte stream to/from a daemon.
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Stream {
    pub(crate) fn connect(endpoint: &Endpoint) -> io::Result<Stream> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr)?)),
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                Ok(Stream::Unix(std::os::unix::net::UnixStream::connect(path)?))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    pub(crate) fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}
