//! # scrutinyd — the multi-tenant checkpoint service
//!
//! The paper's storage reduction pays off at scale when *many*
//! applications share one storage pool; this crate turns the
//! single-process engine stack into that service. One daemon hosts one
//! [`StorageBackend`](scrutiny_engine::StorageBackend) pool behind a
//! length-prefixed binary protocol on TCP or Unix sockets (std-only),
//! and every connected application — a *tenant* — sees a private
//! namespace of it (`<tenant>/ckpt_v...`; see `scrutiny_ckpt::names`).
//!
//! * [`proto`] — the wire protocol: framing, opcodes, typed
//!   reject/backpressure responses. `docs/PROTOCOL.md` is the normative
//!   spec.
//! * [`server`] / [`Daemon`] — thread-per-connection daemon with
//!   per-tenant admission gates (the engine's double-buffered
//!   [`StagingGate`](scrutiny_engine::StagingGate)), inflight-byte /
//!   version / object-size quotas, per-tenant obs spans and gauges in
//!   one `Recorder`, and graceful drain-and-shutdown via a control
//!   frame.
//! * [`client`] / [`RemoteBackend`] — a
//!   [`StorageBackend`](scrutiny_engine::StorageBackend) speaking the
//!   protocol, so existing engines, recovery managers, and burn-in
//!   pipelines publish and recover over the wire unchanged.
//!
//! A complete round trip — daemon up, engine submits over the socket,
//! recovery reads back:
//!
//! ```
//! use scrutinyd::{Daemon, DaemonConfig, Endpoint, RemoteBackend};
//! use scrutiny_engine::{EngineConfig, EngineHandle, RecoveryConfig, RecoveryManager};
//! use scrutiny_ckpt::{names::Tenant, VarData, VarPlan, VarRecord};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(scrutiny_engine::MemBackend::new());
//! let daemon = Daemon::spawn_tcp("127.0.0.1:0", pool, DaemonConfig::default()).unwrap();
//!
//! let tenant = Tenant::new("app_a").unwrap();
//! let remote = RemoteBackend::connect(daemon.endpoint(), Some(tenant)).unwrap();
//! let engine = EngineHandle::open(Arc::new(remote), EngineConfig::default()).unwrap();
//! let vars = vec![VarRecord::new("u", VarData::F64(vec![1.0; 512]))];
//! let t = engine.submit(&vars, &[VarPlan::Full]).unwrap();
//! engine.wait(t).unwrap();
//!
//! let recovered = RecoveryManager::new(engine.backend(), RecoveryConfig::default())
//!     .recover_latest()
//!     .unwrap();
//! assert_eq!(recovered.version, 0);
//! drop(engine);
//! daemon.join().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
mod sock;

pub use client::RemoteBackend;
pub use proto::{RejectReason, Request, Response, TenantStats, MAX_FRAME, PROTO_VERSION};
pub use server::{Daemon, DaemonConfig, DEFAULT_TENANT_OBS};
pub use sock::Endpoint;
