//! [`RemoteBackend`] — a [`StorageBackend`] that speaks the `scrutinyd`
//! wire protocol, so every existing engine, recovery manager, prune, and
//! fault campaign runs against a live daemon unchanged.
//!
//! Connections are a checkout pool: an operation pops an idle connection
//! (or dials and HELLOs a fresh one), runs one request/response
//! exchange, and returns the connection on success. **Any** wire error
//! discards the connection and surfaces the typed error — the next
//! operation dials fresh. A failed epoch therefore never wedges the
//! submitting engine's chain: the broken socket dies with the error, and
//! the engine's next submission starts clean.

use crate::proto::{
    read_frame, write_frame, RejectReason, Request, Response, TenantStats, PROTO_VERSION,
};
use crate::sock::{Endpoint, Stream};
use scrutiny_ckpt::names::Tenant;
use scrutiny_ckpt::CkptError;
use scrutiny_engine::StorageBackend;
use std::io;
use std::sync::Mutex;

fn io_err(kind: io::ErrorKind, msg: String) -> CkptError {
    CkptError::Io(io::Error::new(kind, msg))
}

/// Map a decoded response that is an error status onto the typed
/// [`CkptError`] the storage contract requires.
fn status_err(resp: Response) -> CkptError {
    match resp {
        Response::NotFound(m) => io_err(io::ErrorKind::NotFound, m),
        Response::Rejected { reason, message } => {
            CkptError::Rejected(format!("{}: {message}", reason.code()))
        }
        Response::Err(m) => io_err(io::ErrorKind::Other, format!("daemon error: {m}")),
        ok => io_err(
            io::ErrorKind::InvalidData,
            format!("unexpected daemon response {ok:?}"),
        ),
    }
}

/// A client handle to one tenant's namespace on one daemon.
///
/// `Send + Sync`: engine workers share one `RemoteBackend` and each
/// in-flight operation checks out its own connection.
pub struct RemoteBackend {
    endpoint: Endpoint,
    tenant: Option<Tenant>,
    idle: Mutex<Vec<Stream>>,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("endpoint", &self.endpoint)
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl RemoteBackend {
    /// Connect to `endpoint` as `tenant` (`None` = the default tenant,
    /// the un-prefixed pool root). Dials and handshakes eagerly, so a
    /// wrong address, refused tenant, or protocol mismatch fails here
    /// with a typed error rather than on the first checkpoint epoch.
    pub fn connect(endpoint: Endpoint, tenant: Option<Tenant>) -> Result<RemoteBackend, CkptError> {
        let backend = RemoteBackend {
            endpoint,
            tenant,
            idle: Mutex::new(Vec::new()),
        };
        let conn = backend.dial()?;
        backend.idle.lock().unwrap().push(conn);
        Ok(backend)
    }

    /// The daemon endpoint this backend dials.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The tenant this backend submits as; `None` for the default tenant.
    pub fn tenant(&self) -> Option<&Tenant> {
        self.tenant.as_ref()
    }

    fn dial(&self) -> Result<Stream, CkptError> {
        let mut conn = Stream::connect(&self.endpoint)?;
        let hello = Request::Hello {
            version: PROTO_VERSION,
            tenant: self
                .tenant
                .as_ref()
                .map(|t| t.as_str().to_string())
                .unwrap_or_default(),
        };
        write_frame(&mut conn, &hello.encode())?;
        match Response::decode(&read_frame(&mut conn)?)? {
            Response::Ok => Ok(conn),
            other => Err(status_err(other)),
        }
    }

    /// One request/response exchange. On any wire failure the connection
    /// is dropped (not returned to the pool) so no later operation can
    /// read a stale or torn response off it.
    fn rpc(&self, req: &Request) -> Result<Response, CkptError> {
        let mut conn = match self.idle.lock().unwrap().pop() {
            Some(c) => c,
            None => self.dial()?,
        };
        let exchange = (|| -> io::Result<Response> {
            write_frame(&mut conn, &req.encode())?;
            Response::decode(&read_frame(&mut conn)?)
        })();
        match exchange {
            Ok(resp) => {
                self.idle.lock().unwrap().push(conn);
                Ok(resp)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), CkptError> {
        match self.rpc(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(status_err(other)),
        }
    }

    /// This tenant's accounting, as the daemon sees it.
    pub fn stats(&self) -> Result<TenantStats, CkptError> {
        match self.rpc(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(status_err(other)),
        }
    }

    /// Drop a client-correlated marker event into the daemon's obs log
    /// (a `scrutinyd.mark` event tagged with this tenant), so
    /// client-side phases — a recovery walk starting, a fault injected —
    /// are reconstructable from the daemon's single JSONL log. Field
    /// keys must fit the obs naming scheme.
    pub fn mark(&self, label: &str, fields: &[(&str, &str)]) -> Result<(), CkptError> {
        let req = Request::Mark {
            label: label.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        match self.rpc(&req)? {
            Response::Ok => Ok(()),
            other => Err(status_err(other)),
        }
    }

    /// Send the drain-and-shutdown control frame. The daemon finishes
    /// in-flight work, refuses new frames, and its accept loop exits;
    /// pair with [`crate::Daemon::join`] on the hosting side.
    pub fn shutdown_daemon(&self) -> Result<(), CkptError> {
        match self.rpc(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(status_err(other)),
        }
    }

    /// Whether an error is a typed daemon rejection with `reason`.
    pub fn is_rejection(e: &CkptError, reason: RejectReason) -> bool {
        matches!(e, CkptError::Rejected(m) if m.starts_with(reason.code()))
    }
}

impl StorageBackend for RemoteBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        let req = Request::Put {
            name: name.to_string(),
            bytes: bytes.to_vec(),
        };
        match self.rpc(&req)? {
            Response::Ok => Ok(()),
            other => Err(status_err(other)),
        }
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        let req = Request::Get {
            name: name.to_string(),
        };
        match self.rpc(&req)? {
            Response::Bytes(b) => Ok(b),
            other => Err(status_err(other)),
        }
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        match self.rpc(&Request::List)? {
            Response::Names(n) => Ok(n),
            other => Err(status_err(other)),
        }
    }

    fn delete(&self, name: &str) -> Result<(), CkptError> {
        let req = Request::Delete {
            name: name.to_string(),
        };
        match self.rpc(&req)? {
            Response::Ok => Ok(()),
            other => Err(status_err(other)),
        }
    }

    fn label(&self) -> String {
        match &self.tenant {
            Some(t) => format!("remote:{t}@{}", self.endpoint),
            None => format!("remote:@{}", self.endpoint),
        }
    }
}
