//! Daemon smoke suite: spawn `scrutinyd` on a Unix socket, submit
//! checkpoints through an engine over [`RemoteBackend`], recover them,
//! exercise every typed rejection, and shut the daemon down gracefully —
//! the lifecycle CI runs in release.

use scrutiny_ckpt::names::{self, Tenant};
use scrutiny_ckpt::{CkptError, VarData, VarPlan, VarRecord};
use scrutiny_engine::{
    EngineConfig, EngineHandle, RecoveryConfig, RecoveryManager, StorageBackend,
};
use scrutiny_obs::Recorder;
use scrutinyd::{Daemon, DaemonConfig, RejectReason, RemoteBackend};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scrutinyd_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn vars(seed: f64, n: usize) -> Vec<VarRecord> {
    vec![VarRecord::new(
        "u",
        VarData::F64((0..n).map(|i| seed + i as f64).collect()),
    )]
}

#[cfg(unix)]
#[test]
fn unix_socket_submit_recover_shutdown() {
    let dir = scratch("unix");
    let pool = Arc::new(scrutiny_engine::DirBackend::open(dir.join("pool")).unwrap());
    let sock = dir.join("scrutinyd.sock");
    let obs = dir.join("daemon.jsonl");
    let cfg = DaemonConfig {
        recorder: Recorder::new(),
        obs_jsonl: Some(obs.clone()),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::spawn_unix(&sock, pool, cfg).unwrap();

    // Submit three epochs through a real engine over the socket.
    let tenant = Tenant::new("smoke").unwrap();
    let remote = RemoteBackend::connect(daemon.endpoint(), Some(tenant)).unwrap();
    remote.ping().unwrap();
    let engine = EngineHandle::open(Arc::new(remote), EngineConfig::default()).unwrap();
    for epoch in 0..3 {
        let t = engine
            .submit(&vars(epoch as f64, 2048), &[VarPlan::Full])
            .unwrap();
        engine.wait(t).unwrap();
    }

    // Recover over the same wire.
    let recovered = RecoveryManager::new(engine.backend(), RecoveryConfig::default())
        .recover_latest()
        .unwrap();
    assert_eq!(recovered.version, 2);
    assert!(recovered.report.rejected.is_empty());

    // Stats reflect the tenant's namespace.
    let remote =
        RemoteBackend::connect(daemon.endpoint(), Some(Tenant::new("smoke").unwrap())).unwrap();
    let stats = remote.stats().unwrap();
    assert_eq!(stats.versions, 3);
    assert!(stats.accepted_bytes > 0 || stats.objects > 0);

    // Marker lands in the daemon log; graceful shutdown via the control
    // frame flushes it.
    remote.mark("smoke_done", &[("phase", "end")]).unwrap();
    drop(engine);
    remote.shutdown_daemon().unwrap();
    daemon.join().unwrap();
    assert!(!sock.exists(), "socket file removed on join");
    let log = std::fs::read_to_string(&obs).unwrap();
    scrutiny_obs::validate_jsonl(&log).unwrap();
    assert!(log.contains("scrutinyd.publish"), "publish events logged");
    assert!(log.contains("smoke_done"), "marker in the daemon log");

    // After shutdown the endpoint is dead.
    assert!(RemoteBackend::connect(scrutinyd::Endpoint::Unix(sock), None).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quotas_surface_as_typed_rejections() {
    let pool = Arc::new(scrutiny_engine::MemBackend::new());
    let cfg = DaemonConfig {
        max_versions: Some(2),
        max_object_bytes: Some(4096),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::spawn_tcp("127.0.0.1:0", pool, cfg).unwrap();
    let remote =
        RemoteBackend::connect(daemon.endpoint(), Some(Tenant::new("quota").unwrap())).unwrap();

    // Two committed versions fit the quota…
    remote.put(&names::data(0), &[1u8; 64]).unwrap();
    remote.put(&names::data(1), &[2u8; 64]).unwrap();
    // …an overwrite of an existing version still passes…
    remote.put(&names::data(1), &[3u8; 64]).unwrap();
    // …a third version is refused, typed.
    let err = remote.put(&names::data(2), &[4u8; 64]).unwrap_err();
    assert!(
        RemoteBackend::is_rejection(&err, RejectReason::VersionQuota),
        "want version_quota, got {err}"
    );
    // Non-committing objects (aux) are not version-gated.
    remote.put(&names::aux(0), &[0u8; 16]).unwrap();

    // Oversized object, typed.
    let err = remote.put(&names::aux(1), &[0u8; 8192]).unwrap_err();
    assert!(
        RemoteBackend::is_rejection(&err, RejectReason::ObjectTooLarge),
        "want object_too_large, got {err}"
    );

    // A rejected PUT is not an integrity statement: recovery over the
    // same backend still restores what was committed.
    assert_eq!(scrutiny_engine::list_versions(&remote).unwrap(), vec![0, 1]);
    daemon.join().unwrap();
}

#[test]
fn tenant_validation_and_namespace_escapes() {
    let pool = Arc::new(scrutiny_engine::MemBackend::new());
    let daemon = Daemon::spawn_tcp("127.0.0.1:0", pool, DaemonConfig::default()).unwrap();

    // The daemon re-validates the tenant id (the wire is untrusted even
    // though Tenant::new validated client-side): "default" is reserved.
    let err = RemoteBackend::connect(daemon.endpoint(), Some(Tenant::new("default").unwrap()))
        .unwrap_err();
    assert!(
        RemoteBackend::is_rejection(&err, RejectReason::BadTenant),
        "want bad_tenant, got {err}"
    );

    // Namespace escapes are refused, typed, and change nothing.
    let remote =
        RemoteBackend::connect(daemon.endpoint(), Some(Tenant::new("t1").unwrap())).unwrap();
    let err = remote.put("t2/ckpt_000000.data", &[1u8; 8]).unwrap_err();
    assert!(
        RemoteBackend::is_rejection(&err, RejectReason::BadName),
        "want bad_name, got {err}"
    );
    let err = remote.get("../secrets").unwrap_err();
    assert!(RemoteBackend::is_rejection(&err, RejectReason::BadName));

    // The default tenant (no tenant) sees the root namespace only.
    remote.put(&names::data(0), b"tenant-owned").unwrap();
    let root = RemoteBackend::connect(daemon.endpoint(), None).unwrap();
    assert!(root.list().unwrap().is_empty());
    assert!(matches!(
        root.get(&names::data(0)),
        Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound
    ));
    daemon.join().unwrap();
}

#[test]
fn draining_daemon_refuses_new_sessions() {
    let pool = Arc::new(scrutiny_engine::MemBackend::new());
    let daemon = Daemon::spawn_tcp("127.0.0.1:0", pool, DaemonConfig::default()).unwrap();
    let endpoint = daemon.endpoint();
    daemon.shutdown();
    // The accept loop may let a racing connection in; its HELLO must be
    // refused as draining (or the dial itself fails — both are clean).
    match RemoteBackend::connect(endpoint, None) {
        Err(e) => assert!(
            RemoteBackend::is_rejection(&e, RejectReason::Draining)
                || matches!(e, CkptError::Io(_)),
            "unexpected error {e}"
        ),
        Ok(_) => panic!("draining daemon accepted a new session"),
    }
    daemon.join().unwrap();
}
