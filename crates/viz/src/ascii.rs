//! ASCII renderings of criticality volumes (the terminal version of the
//! paper's Figures 3, 7 and 8).

use scrutiny_ckpt::Bitmap;

/// Render one 2-D slice of a 3-D criticality volume as text.
/// `dims = [d0, d1, d2]` (row-major, `i2` fastest), `axis` selects the
/// fixed dimension and `index` its value. Critical elements print `#`,
/// uncritical `.`.
pub fn slice_ascii(bits: &Bitmap, dims: [usize; 3], axis: usize, index: usize) -> String {
    assert!(axis < 3 && index < dims[axis], "slice out of range");
    assert_eq!(
        bits.len(),
        dims[0] * dims[1] * dims[2],
        "bitmap/dims mismatch"
    );
    let at = |c0: usize, c1: usize, c2: usize| bits.get((c0 * dims[1] + c1) * dims[2] + c2);
    let (rows, cols) = match axis {
        0 => (dims[1], dims[2]),
        1 => (dims[0], dims[2]),
        _ => (dims[0], dims[1]),
    };
    let mut out = String::with_capacity((cols + 1) * rows);
    for r in 0..rows {
        for c in 0..cols {
            let v = match axis {
                0 => at(index, r, c),
                1 => at(r, index, c),
                _ => at(r, c, index),
            };
            out.push(if v { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Render every slice along axis 0, labelled — a poor man's 3-D view.
pub fn volume_ascii(bits: &Bitmap, dims: [usize; 3]) -> String {
    let mut out = String::new();
    for k in 0..dims[0] {
        out.push_str(&format!("slice k={k}\n"));
        out.push_str(&slice_ascii(bits, dims, 0, k));
        out.push('\n');
    }
    out
}

/// Extract component `m` of a `[d0, d1, d2, ncomp]` variable as a 3-D
/// bitmap (BT/SP/LU's `u` decomposes into five cubes, paper §IV.B).
pub fn component_slice(bits: &Bitmap, dims: [usize; 4], m: usize) -> (Bitmap, [usize; 3]) {
    assert!(m < dims[3]);
    assert_eq!(bits.len(), dims[0] * dims[1] * dims[2] * dims[3]);
    let mut out = Bitmap::new(dims[0] * dims[1] * dims[2]);
    for k in 0..dims[0] {
        for j in 0..dims[1] {
            for i in 0..dims[2] {
                let src = ((k * dims[1] + j) * dims[2] + i) * dims[3] + m;
                if bits.get(src) {
                    out.set((k * dims[1] + j) * dims[2] + i, true);
                }
            }
        }
    }
    (out, [dims[0], dims[1], dims[2]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(d: usize, pred: impl Fn(usize, usize, usize) -> bool) -> Bitmap {
        Bitmap::from_fn(d * d * d, |f| {
            let i = f % d;
            let j = (f / d) % d;
            let k = f / (d * d);
            pred(k, j, i)
        })
    }

    #[test]
    fn slice_renders_pattern() {
        // Uncritical plane at i == 3 (like BT's i = 12).
        let b = cube(4, |_, _, i| i < 3);
        let s = slice_ascii(&b, [4, 4, 4], 0, 0);
        for line in s.lines() {
            assert_eq!(line, "###.");
        }
    }

    #[test]
    fn axis_selection_consistent() {
        let b = cube(3, |k, _, _| k == 1);
        // Fixing axis 0 at k=1 gives all-critical.
        assert!(!slice_ascii(&b, [3, 3, 3], 0, 1).contains('.'));
        // Fixing axis 1 gives one critical row.
        let s = slice_ascii(&b, [3, 3, 3], 1, 0);
        assert_eq!(s.lines().nth(1).unwrap(), "###");
        assert_eq!(s.lines().next().unwrap(), "...");
    }

    #[test]
    fn component_slice_extracts() {
        let dims = [2usize, 2, 2, 3];
        let b = Bitmap::from_fn(24, |f| f % 3 == 1); // only component 1 set
        let (c0, d3) = component_slice(&b, dims, 0);
        assert_eq!(d3, [2, 2, 2]);
        assert_eq!(c0.count_ones(), 0);
        let (c1, _) = component_slice(&b, dims, 1);
        assert_eq!(c1.count_ones(), 8);
    }

    #[test]
    fn volume_lists_all_slices() {
        let b = cube(3, |_, _, _| true);
        let v = volume_ascii(&b, [3, 3, 3]);
        assert!(v.contains("slice k=0") && v.contains("slice k=2"));
    }
}
