//! SVG rendering of run-length layouts (vector version of Figs. 4–6).

use crate::runlength::runlength_summary;
use scrutiny_ckpt::Bitmap;

/// Horizontal run-length bar as a standalone SVG document. Critical
/// segments render red, uncritical blue, matching the paper's palette.
pub fn runlength_svg(bits: &Bitmap, width_px: usize, height_px: usize) -> String {
    let n = bits.len().max(1);
    let mut body = String::new();
    let mut offset = 0usize;
    for (crit, len) in runlength_summary(bits) {
        let x = offset * width_px / n;
        let w = ((offset + len) * width_px / n).saturating_sub(x).max(1);
        let color = if crit { "#c0392b" } else { "#2980b9" };
        body.push_str(&format!(
            "  <rect x=\"{x}\" y=\"0\" width=\"{w}\" height=\"{height_px}\" fill=\"{color}\">\
             <title>{} {len} elements</title></rect>\n",
            if crit { "critical" } else { "uncritical" }
        ));
        offset += len;
    }
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height_px}\" \
         viewBox=\"0 0 {width_px} {height_px}\">\n{body}</svg>\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_is_well_formed_and_colored() {
        let b = Bitmap::from_fn(100, |i| i < 70);
        let svg = runlength_svg(&b, 400, 24);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("#c0392b") && svg.contains("#2980b9"));
        assert_eq!(svg.matches("<rect").count(), 2);
    }

    #[test]
    fn all_critical_has_one_rect() {
        let svg = runlength_svg(&Bitmap::full(10), 100, 10);
        assert_eq!(svg.matches("<rect").count(), 1);
        assert!(!svg.contains("#2980b9"));
    }
}
