//! Run-length views of 1-D criticality layouts (Figures 4, 5 and 6).

use scrutiny_ckpt::Bitmap;

/// Consecutive same-criticality segments: `(critical?, length)`.
pub fn runlength_summary(bits: &Bitmap) -> Vec<(bool, usize)> {
    let mut out: Vec<(bool, usize)> = Vec::new();
    for b in bits.iter() {
        match out.last_mut() {
            Some((v, n)) if *v == b => *n += 1,
            _ => out.push((b, 1)),
        }
    }
    out
}

/// A fixed-width textual bar: each cell shows the majority criticality of
/// its element span (`#` critical, `.` uncritical), plus a segment legend.
pub fn runlength_chart(bits: &Bitmap, width: usize) -> String {
    assert!(width >= 1);
    let n = bits.len();
    let mut bar = String::with_capacity(width + 2);
    bar.push('[');
    for c in 0..width {
        let lo = c * n / width;
        let hi = ((c + 1) * n / width).max(lo + 1).min(n);
        let crit = (lo..hi).filter(|&i| bits.get(i)).count();
        bar.push(if 2 * crit >= hi - lo { '#' } else { '.' });
    }
    bar.push(']');
    let segments = runlength_summary(bits);
    let mut legend = String::new();
    for &(crit, len) in segments.iter().take(10) {
        legend.push_str(&format!(
            " {}{}",
            if crit { "critical:" } else { "uncritical:" },
            len
        ));
    }
    if segments.len() > 10 {
        legend.push_str(&format!(" … ({} segments total)", segments.len()));
    }
    format!("{bar}\n{legend}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_compresses_runs() {
        let b = Bitmap::from_fn(10, |i| i < 6);
        assert_eq!(runlength_summary(&b), vec![(true, 6), (false, 4)]);
    }

    #[test]
    fn chart_shape() {
        let b = Bitmap::from_fn(100, |i| i < 80);
        let c = runlength_chart(&b, 10);
        let bar = c.lines().next().unwrap();
        assert_eq!(bar, "[########..]");
        assert!(c.contains("critical:80"));
        assert!(c.contains("uncritical:20"));
    }

    #[test]
    fn empty_and_alternating() {
        let b = Bitmap::from_fn(8, |i| i % 2 == 0);
        assert_eq!(runlength_summary(&b).len(), 8);
    }
}
