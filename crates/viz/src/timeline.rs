//! Gantt timelines from observability span logs.
//!
//! The engine overlaps work on purpose — the next epoch's compute runs
//! while the previous epoch serializes and publishes — and the only way
//! to *see* that overlap is a timeline. These renderers turn the spans
//! of a [`scrutiny_obs::Snapshot`] (live, or parsed back from a JSONL
//! dump) into a per-epoch Gantt view: one row per span, rows grouped by
//! the `version` field when present (the engine stamps its submit /
//! publish / commit spans with it), time flowing left to right.
//!
//! Both renderers are deterministic over their input — identical span
//! lists produce byte-identical output — so they are safe to regression
//! test and to diff across runs.

use scrutiny_obs::SpanView;

/// Palette keyed by the span name's first dotted segment, so every
/// `engine.*` row shares a color, every `ad.*` row another, and the eye
/// can follow one subsystem across epochs. Unknown roots cycle through
/// the tail of the palette by a stable hash.
fn color_of(name: &str) -> &'static str {
    let root = name.split('.').next().unwrap_or(name);
    match root {
        "engine" => "#c0392b",
        "ad" => "#2980b9",
        "core" => "#27ae60",
        "ckpt" => "#8e44ad",
        "npb" => "#e67e22",
        _ => {
            const TAIL: [&str; 3] = ["#16a085", "#7f8c8d", "#d35400"];
            let h = name
                .bytes()
                .fold(0usize, |a, b| a.wrapping_mul(31) + b as usize);
            TAIL[h % TAIL.len()]
        }
    }
}

/// A span row prepared for rendering: resolved extent and sort keys.
struct Row<'a> {
    span: &'a SpanView,
    /// The `version` field when the span carries one (engine spans do);
    /// versionless spans sort before all versioned ones.
    version: Option<u64>,
    end_us: u64,
}

/// Order spans into Gantt rows: by epoch (`version` field, unversioned
/// first), then by start time, then id — a stable, meaningful reading
/// order. Open spans (no end in the log) are drawn to the latest
/// timestamp seen, so a crashed run still renders.
fn layout(spans: &[SpanView]) -> (Vec<Row<'_>>, u64, u64) {
    let t_max_seen = spans
        .iter()
        .map(|s| s.end_us.unwrap_or(s.start_us))
        .max()
        .unwrap_or(0);
    let mut rows: Vec<Row> = spans
        .iter()
        .map(|span| Row {
            span,
            version: span.field_u64("version"),
            end_us: span.end_us.unwrap_or(t_max_seen).max(span.start_us),
        })
        .collect();
    rows.sort_by_key(|r| {
        (
            r.version.map(|v| v + 1).unwrap_or(0),
            r.span.start_us,
            r.span.id,
        )
    });
    let t0 = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    (rows, t0, t_max_seen.max(t0 + 1))
}

/// Render a span log as a standalone Gantt SVG: one labeled row per
/// span, grouped by checkpoint version (epoch), colored by subsystem
/// (bar color keyed to the name's first dotted segment), with a µs time
/// scale. `width_px` is the plot width;
/// the label gutter is added on top of it.
pub fn timeline_svg(spans: &[SpanView], width_px: usize) -> String {
    const ROW_H: usize = 16;
    const GUTTER: usize = 220;
    let (rows, t0, t1) = layout(spans);
    let span_us = (t1 - t0).max(1);
    let height_px = rows.len() * ROW_H + ROW_H; // one extra row for the axis
    let total_w = GUTTER + width_px;
    let mut body = String::new();
    for (i, row) in rows.iter().enumerate() {
        let y = i * ROW_H;
        let x = GUTTER + ((row.span.start_us - t0) as usize * width_px) / span_us as usize;
        let x_end = GUTTER + ((row.end_us - t0) as usize * width_px) / span_us as usize;
        let w = (x_end - x).max(1);
        let label = match row.version {
            Some(v) => format!("v{v} {}", row.span.name),
            None => row.span.name.clone(),
        };
        let dur = row
            .span
            .duration_us()
            .map(|d| format!("{d} µs"))
            .unwrap_or_else(|| "open".to_string());
        body.push_str(&format!(
            "  <text x=\"2\" y=\"{ty}\" font-size=\"11\" font-family=\"monospace\">{label}</text>\n\
             \x20 <rect x=\"{x}\" y=\"{ry}\" width=\"{w}\" height=\"{h}\" fill=\"{color}\">\
             <title>{name} {start}..{end} µs ({dur})</title></rect>\n",
            ty = y + ROW_H - 4,
            ry = y + 2,
            h = ROW_H - 4,
            color = color_of(&row.span.name),
            name = row.span.name,
            start = row.span.start_us,
            end = row.end_us,
        ));
    }
    // Time axis: a baseline with the total extent in µs at the right edge.
    let axis_y = rows.len() * ROW_H + ROW_H / 2;
    body.push_str(&format!(
        "  <line x1=\"{GUTTER}\" y1=\"{axis_y}\" x2=\"{total_w}\" y2=\"{axis_y}\" \
         stroke=\"#333\"/>\n  <text x=\"{GUTTER}\" y=\"{ty}\" font-size=\"10\" \
         font-family=\"monospace\">0 .. {span_us} µs</text>\n",
        ty = axis_y - 3,
    ));
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{total_w}\" height=\"{height_px}\" \
         viewBox=\"0 0 {total_w} {height_px}\">\n{body}</svg>\n"
    )
}

/// Render a span log as a monospace Gantt chart, `width` columns of
/// timeline per row: `####` marks the span's extent, `-` elapsed time
/// around it. Same row order as [`timeline_svg`]; suited to test
/// assertions and terminal triage.
pub fn timeline_ascii(spans: &[SpanView], width: usize) -> String {
    let width = width.max(10);
    let (rows, t0, t1) = layout(spans);
    let span_us = (t1 - t0).max(1);
    let label_w = rows
        .iter()
        .map(|r| r.span.name.len() + r.version.map(|v| format!("v{v} ").len()).unwrap_or(0))
        .max()
        .unwrap_or(0)
        .max(4);
    let mut out = String::new();
    for row in &rows {
        let label = match row.version {
            Some(v) => format!("v{v} {}", row.span.name),
            None => row.span.name.clone(),
        };
        // Clamp into the lane: a zero-length span starting at the log's
        // last timestamp would otherwise land one column past the edge.
        let c0 = (((row.span.start_us - t0) as usize * width) / span_us as usize).min(width - 1);
        let c1 = (((row.end_us - t0) as usize * width) / span_us as usize)
            .max(c0 + 1)
            .min(width);
        let mut lane: String = String::with_capacity(width);
        for c in 0..width {
            lane.push(if c >= c0 && c < c1 { '#' } else { '-' });
        }
        let dur = row
            .span
            .duration_us()
            .map(|d| format!("{d} µs"))
            .unwrap_or_else(|| "open".to_string());
        out.push_str(&format!("{label:<label_w$} |{lane}| {dur}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_obs::Recorder;

    fn sample_spans() -> Vec<SpanView> {
        let rec = Recorder::with_capacity(64);
        {
            let _a = rec.span_with("engine.submit", &[("version", 0u64.into())]);
            let _b = rec.span_with("engine.shard_serialize", &[("version", 0u64.into())]);
        }
        {
            let _c = rec.span_with("ad.sweep.value", &[]);
        }
        rec.snapshot().spans()
    }

    #[test]
    fn svg_has_a_row_per_span_and_epoch_labels() {
        let spans = sample_spans();
        let svg = timeline_svg(&spans, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), spans.len());
        assert!(svg.contains("v0 engine.submit"));
        assert!(svg.contains("ad.sweep.value"));
        // Subsystem palette: engine red, ad blue.
        assert!(svg.contains("#c0392b") && svg.contains("#2980b9"));
    }

    #[test]
    fn ascii_orders_unversioned_rows_first_and_marks_extent() {
        let spans = sample_spans();
        let text = timeline_ascii(&spans, 40);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("ad.sweep.value"));
        assert!(lines[1].starts_with("v0 engine.submit"));
        for line in &lines {
            assert!(line.contains('#'), "{line}");
            assert!(line.contains('|'), "{line}");
        }
    }

    #[test]
    fn open_spans_render_instead_of_panicking() {
        let rec = Recorder::with_capacity(64);
        let guard = rec.span_with("engine.publish", &[("version", 3u64.into())]);
        let spans = rec.snapshot().spans();
        drop(guard);
        assert!(timeline_ascii(&spans, 30).contains("open"));
        assert!(timeline_svg(&spans, 100).contains("open"));
    }

    #[test]
    fn empty_log_renders_empty_chart() {
        let svg = timeline_svg(&[], 100);
        assert!(svg.starts_with("<svg"));
        assert_eq!(timeline_ascii(&[], 30), "");
    }
}
