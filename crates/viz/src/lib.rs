//! # scrutiny-viz — visualizing critical/uncritical distributions
//!
//! Regenerates the paper's Figures 3–8: ASCII slice views and PGM images
//! of 3-D criticality volumes, run-length bar charts for 1-D layouts, SVG
//! rendering, and the pattern detectors (uncritical hyperplanes,
//! periodicity) used to connect distributions back to source code.

pub mod ascii;
pub mod image;
pub mod pattern;
pub mod runlength;
pub mod svg;
pub mod timeline;

pub use ascii::{slice_ascii, volume_ascii};
pub use image::{slice_pgm, volume_montage_pgm};
pub use pattern::{detect_periodicity, detect_planes, PlaneFinding};
pub use runlength::{runlength_chart, runlength_summary};
pub use svg::runlength_svg;
pub use timeline::{timeline_ascii, timeline_svg};
