//! Pattern detectors: connect criticality distributions back to source
//! structure (the analysis the paper does by hand in §IV.B).

use scrutiny_ckpt::Bitmap;

/// A fully-uncritical hyperplane: "index `index` along `axis` is never
/// used" — the signature of declared-but-unindexed array extents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlaneFinding {
    /// Which of the three axes.
    pub axis: usize,
    /// The dead index on that axis.
    pub index: usize,
}

/// Find axis-aligned planes of a 3-D volume that are entirely uncritical
/// (e.g. BT's `j = 12` and `i = 12`, FT's padding plane).
pub fn detect_planes(bits: &Bitmap, dims: [usize; 3]) -> Vec<PlaneFinding> {
    assert_eq!(bits.len(), dims[0] * dims[1] * dims[2]);
    let at = |c: [usize; 3]| bits.get((c[0] * dims[1] + c[1]) * dims[2] + c[2]);
    let mut findings = Vec::new();
    for axis in 0..3 {
        for index in 0..dims[axis] {
            let (da, db) = match axis {
                0 => (dims[1], dims[2]),
                1 => (dims[0], dims[2]),
                _ => (dims[0], dims[1]),
            };
            let mut all_clear = true;
            'scan: for a in 0..da {
                for b in 0..db {
                    let c = match axis {
                        0 => [index, a, b],
                        1 => [a, index, b],
                        _ => [a, b, index],
                    };
                    if at(c) {
                        all_clear = false;
                        break 'scan;
                    }
                }
            }
            if all_clear {
                findings.push(PlaneFinding { axis, index });
            }
        }
    }
    findings
}

/// Detected repetition in a 1-D layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Periodicity {
    /// Repeat length.
    pub period: usize,
    /// Fraction of positions where `bit[i] == bit[i + period]`.
    pub fraction: f64,
}

/// Find the period (2..=max_period) with the highest self-match fraction,
/// provided it reaches `threshold` — MG's `r` shows period 34 at class S
/// (Fig. 5). Choosing the *best* match (not the first above threshold)
/// matters for high-base-rate patterns, where almost any shift matches
/// most positions.
pub fn detect_periodicity(bits: &Bitmap, max_period: usize, threshold: f64) -> Option<Periodicity> {
    let n = bits.len();
    let mut best: Option<Periodicity> = None;
    for p in 2..=max_period.min(n.saturating_sub(1)) {
        let total = n - p;
        if total == 0 {
            break;
        }
        let matches = (0..total)
            .filter(|&i| bits.get(i) == bits.get(i + p))
            .count();
        let fraction = matches as f64 / total as f64;
        if fraction < threshold {
            continue;
        }
        let better = match best {
            // Require a strict improvement so the fundamental period wins
            // over its multiples and over trivial small shifts.
            Some(b) => fraction > b.fraction + 1e-9,
            None => true,
        };
        if better {
            best = Some(Periodicity {
                period: p,
                fraction,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_dead_planes() {
        // 4³ with dead plane at axis2 index 3 and axis1 index 0.
        let b = Bitmap::from_fn(64, |f| {
            let i = f % 4;
            let j = (f / 4) % 4;
            i != 3 && j != 0
        });
        let found = detect_planes(&b, [4, 4, 4]);
        assert!(found.contains(&PlaneFinding { axis: 2, index: 3 }));
        assert!(found.contains(&PlaneFinding { axis: 1, index: 0 }));
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn no_planes_in_full_volume() {
        let b = Bitmap::full(27);
        assert!(detect_planes(&b, [3, 3, 3]).is_empty());
    }

    #[test]
    fn finds_period() {
        // period-5 pattern: 4 critical, 1 uncritical.
        let b = Bitmap::from_fn(100, |i| i % 5 != 4);
        let p = detect_periodicity(&b, 20, 0.99).unwrap();
        assert_eq!(p.period, 5);
        assert!(p.fraction >= 0.99);
    }

    #[test]
    fn aperiodic_returns_none() {
        // Bits at perfect squares: gaps grow, so no exact small period.
        let b = Bitmap::from_fn(64, |i| {
            let r = (i as f64).sqrt() as usize;
            r * r == i
        });
        assert!(detect_periodicity(&b, 10, 0.995).is_none());
    }
}
