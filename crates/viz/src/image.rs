//! Binary PGM (P5) renderings of criticality volumes — the image files
//! behind the paper's Figures 3, 7 and 8.

use scrutiny_ckpt::Bitmap;

const CRITICAL_GRAY: u8 = 64; // dark = critical (red in the paper)
const UNCRITICAL_GRAY: u8 = 230; // light = uncritical (blue in the paper)

fn pgm_header(w: usize, h: usize) -> Vec<u8> {
    format!("P5\n{w} {h}\n255\n").into_bytes()
}

/// Render one slice (axis/index as in [`crate::slice_ascii`]) as a
/// PGM image, `scale`× magnified.
pub fn slice_pgm(
    bits: &Bitmap,
    dims: [usize; 3],
    axis: usize,
    index: usize,
    scale: usize,
) -> Vec<u8> {
    assert!(scale >= 1);
    let at = |c0: usize, c1: usize, c2: usize| bits.get((c0 * dims[1] + c1) * dims[2] + c2);
    let (rows, cols) = match axis {
        0 => (dims[1], dims[2]),
        1 => (dims[0], dims[2]),
        _ => (dims[0], dims[1]),
    };
    let (w, h) = (cols * scale, rows * scale);
    let mut out = pgm_header(w, h);
    for r in 0..h {
        for c in 0..w {
            let v = match axis {
                0 => at(index, r / scale, c / scale),
                1 => at(r / scale, index, c / scale),
                _ => at(r / scale, c / scale, index),
            };
            out.push(if v { CRITICAL_GRAY } else { UNCRITICAL_GRAY });
        }
    }
    out
}

/// Tile all axis-0 slices into one montage image (`cols` tiles per row,
/// 1-pixel separators).
pub fn volume_montage_pgm(bits: &Bitmap, dims: [usize; 3], cols: usize, scale: usize) -> Vec<u8> {
    assert!(cols >= 1 && scale >= 1);
    let n = dims[0];
    let rows = n.div_ceil(cols);
    let tile_w = dims[2] * scale;
    let tile_h = dims[1] * scale;
    let w = cols * tile_w + (cols - 1);
    let h = rows * tile_h + (rows - 1);
    let mut img = vec![0u8; w * h];
    let at = |c0: usize, c1: usize, c2: usize| bits.get((c0 * dims[1] + c1) * dims[2] + c2);
    for k in 0..n {
        let (tr, tc) = (k / cols, k % cols);
        let (oy, ox) = (tr * (tile_h + 1), tc * (tile_w + 1));
        for y in 0..tile_h {
            for x in 0..tile_w {
                let v = at(k, y / scale, x / scale);
                img[(oy + y) * w + ox + x] = if v { CRITICAL_GRAY } else { UNCRITICAL_GRAY };
            }
        }
    }
    let mut out = pgm_header(w, h);
    out.extend_from_slice(&img);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_has_valid_header_and_size() {
        let b = Bitmap::full(27);
        let img = slice_pgm(&b, [3, 3, 3], 0, 1, 2);
        assert!(img.starts_with(b"P5\n6 6\n255\n"));
        assert_eq!(img.len(), "P5\n6 6\n255\n".len() + 36);
    }

    #[test]
    fn pixel_values_reflect_criticality() {
        let b = Bitmap::from_fn(27, |f| f % 3 != 2); // i == 2 uncritical
        let img = slice_pgm(&b, [3, 3, 3], 0, 0, 1);
        let data = &img["P5\n3 3\n255\n".len()..];
        assert_eq!(data[0], CRITICAL_GRAY);
        assert_eq!(data[2], UNCRITICAL_GRAY);
    }

    #[test]
    fn montage_dimensions() {
        let b = Bitmap::full(4 * 3 * 3);
        let img = volume_montage_pgm(&b, [4, 3, 3], 2, 1);
        // 2 cols + 1 separator = 7 wide; 2 rows + 1 separator = 7 tall.
        assert!(img.starts_with(b"P5\n7 7\n255\n"));
    }
}
