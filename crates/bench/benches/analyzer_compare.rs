//! Analyzer comparison bench: what the static data-dependency analyzer
//! costs next to the AD value sweep it cross-checks, at both layers.
//!
//! * **Sweep layer** — on one recorded tape: `gradient_sweep` (8 bytes of
//!   adjoint per node) vs `datadep_sweep` (reachability bits plus the
//!   def-use pass) vs the bare `reachable_sweep` both share.
//! * **Pipeline layer** — full `scrutinize_with` under `Analyzer::Ad`,
//!   `Analyzer::DataDep`, and `Analyzer::Both` (three sweeps in one
//!   thread scope), so the cross-check's end-to-end overhead is visible.
//!
//! The explicit section prints measured medians: Both should cost close
//! to max(Ad, DataDep) + record, not their sum, because the sweeps run
//! concurrently.
//!
//! Run with: `cargo bench -p scrutiny-bench --bench analyzer_compare`

use criterion::{criterion_group, Criterion};
use scrutiny_ad::{SweepConfig, Tape, TapeConfig, TapeSession};
use scrutiny_core::{
    scrutinize_differential, scrutinize_with, Analyzer, LeafSite, ScrutinyApp, ScrutinyOptions,
};
use scrutiny_npb::{Bt, Cg};
use std::time::Instant;

/// Record `app` once and return its tape plus the output node.
fn record(app: &dyn ScrutinyApp, segment_len: usize) -> (scrutiny_ad::Adj, Tape) {
    let s = TapeSession::with_config(TapeConfig {
        capacity: app.tape_capacity_hint(),
        segment_len,
        ..TapeConfig::default()
    });
    let mut site = LeafSite::new();
    let out = app.run_ad(&mut site);
    (out.output, s.finish())
}

fn opts(analyzer: Analyzer) -> ScrutinyOptions {
    ScrutinyOptions {
        analyzer,
        ..ScrutinyOptions::default()
    }
}

fn bench(c: &mut Criterion) {
    let bt = Bt::mini();
    let (out, tape) = record(&bt, 1 << 14);
    let mut g = c.benchmark_group("analyzer_compare");
    g.sample_size(10);
    g.bench_function("bt_mini_value_sweep", |b| {
        b.iter(|| {
            tape.gradient_sweep(out, SweepConfig::default())
                .unwrap()
                .0
                .len()
        })
    });
    g.bench_function("bt_mini_reach_sweep", |b| {
        b.iter(|| {
            tape.reachable_sweep(out, SweepConfig::default())
                .unwrap()
                .0
                .len()
        })
    });
    g.bench_function("bt_mini_datadep_sweep", |b| {
        b.iter(|| {
            tape.datadep_sweep(out, SweepConfig::default())
                .unwrap()
                .live_count()
        })
    });
    let cg = Cg::mini();
    g.bench_function("cg_mini_scrutinize_ad", |b| {
        b.iter(|| {
            scrutinize_with(&cg, &opts(Analyzer::Ad))
                .unwrap()
                .total_uncritical()
        })
    });
    g.bench_function("cg_mini_scrutinize_datadep", |b| {
        b.iter(|| {
            scrutinize_with(&cg, &opts(Analyzer::DataDep))
                .unwrap()
                .total_uncritical()
        })
    });
    g.bench_function("cg_mini_scrutinize_both", |b| {
        b.iter(|| {
            scrutinize_with(&cg, &opts(Analyzer::Both))
                .unwrap()
                .total_uncritical()
        })
    });
    g.bench_function("cg_mini_differential", |b| {
        b.iter(|| {
            scrutinize_differential(&cg, &opts(Analyzer::Both))
                .unwrap()
                .disagreements
                .len()
        })
    });
    g.finish();
}

/// Median-of-N wall-clock seconds for `f`.
fn measure<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The explicit measured comparison: per-sweep cost on a shared tape and
/// the end-to-end cost of each backend, including the concurrent Both.
fn report_analyzer_costs() {
    let bt = Bt::mini();
    let (out, tape) = record(&bt, 1 << 14);
    let nodes = tape.len();
    let t_value = measure(5, || {
        tape.gradient_sweep(out, SweepConfig::default())
            .unwrap()
            .0
            .len()
    });
    let t_reach = measure(5, || {
        tape.reachable_sweep(out, SweepConfig::default())
            .unwrap()
            .0
            .len()
    });
    let t_dd = measure(5, || {
        tape.datadep_sweep(out, SweepConfig::default())
            .unwrap()
            .live_count()
    });
    println!("\n== analyzer sweep cost (BT mini, {nodes} nodes, shared tape) ==");
    println!(
        "value sweep {:>8.2} ms   reach sweep {:>8.2} ms   datadep (reach + def-use) {:>8.2} ms",
        t_value * 1e3,
        t_reach * 1e3,
        t_dd * 1e3
    );

    let cg = Cg::mini();
    let t_ad = measure(5, || {
        scrutinize_with(&cg, &opts(Analyzer::Ad))
            .unwrap()
            .total_uncritical()
    });
    let t_sdd = measure(5, || {
        scrutinize_with(&cg, &opts(Analyzer::DataDep))
            .unwrap()
            .total_uncritical()
    });
    let t_both = measure(5, || {
        scrutinize_with(&cg, &opts(Analyzer::Both))
            .unwrap()
            .total_uncritical()
    });
    println!("== scrutinize backend cost (CG mini, record + sweeps) ==");
    println!(
        "Ad {:>8.2} ms   DataDep {:>8.2} ms   Both {:>8.2} ms   (Both / Ad = {:.2}x)",
        t_ad * 1e3,
        t_sdd * 1e3,
        t_both * 1e3,
        t_both / t_ad
    );
}

criterion_group!(benches, bench);

fn main() {
    benches();
    let summary = scrutiny_bench::BenchSummary::new("analyzer_compare");
    summary.absorb_criterion();
    // Skip the explicit measurement when the harness is only being
    // enumerated (`cargo bench -- --list`, `cargo test --benches`).
    let enumerating = std::env::args().any(|a| a == "--list" || a == "--test");
    if !enumerating {
        report_analyzer_costs();
    }
    summary.write_and_report();
}
