//! Figures bench: regenerates Fig. 3 (BT cube) and Fig. 6 (CG bar)
//! artifacts and times the renderers (run `gen_figures` for all six).

use criterion::{criterion_group, Criterion};
use scrutiny_core::scrutinize;
use scrutiny_npb::{Bt, Cg};
use scrutiny_viz::ascii::component_slice;
use scrutiny_viz::{detect_planes, runlength_chart, runlength_svg, volume_montage_pgm};

fn bench(c: &mut Criterion) {
    let bt = scrutinize(&Bt::class_s()).unwrap();
    let (cube, dims) = component_slice(&bt.var("u").unwrap().value_map, [12, 13, 13, 5], 0);
    println!("\nFig. 3 dead planes: {:?}", detect_planes(&cube, dims));
    let cg = scrutinize(&Cg::class_s()).unwrap();
    let xmap = &cg.var("x").unwrap().value_map;
    println!("Fig. 6 layout:\n{}", runlength_chart(xmap, 72));

    let mut g = c.benchmark_group("figures");
    g.bench_function("fig3_montage_pgm", |b| {
        b.iter(|| volume_montage_pgm(&cube, dims, 4, 8).len())
    });
    g.bench_function("fig6_svg", |b| {
        b.iter(|| runlength_svg(xmap, 720, 32).len())
    });
    g.bench_function("plane_detector", |b| b.iter(|| detect_planes(&cube, dims)));
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    benches();
    let summary = scrutiny_bench::BenchSummary::new("figures");
    summary.absorb_criterion();
    summary.write_and_report();
}
