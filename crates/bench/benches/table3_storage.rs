//! Table III bench: regenerates the storage rows for the non-FFT class-S
//! benchmarks, then times full vs pruned checkpoint serialization.

use criterion::{criterion_group, Criterion};
use scrutiny_ckpt::writer::serialize;
use scrutiny_ckpt::VarPlan;
use scrutiny_core::plan::plans_for;
use scrutiny_core::restart::capture_state;
use scrutiny_core::{format_table3, scrutinize, table3_row, Policy, ScrutinyApp};
use scrutiny_npb::{Bt, Cg, Lu, Mg, Sp};

fn bench(c: &mut Criterion) {
    let apps: Vec<Box<dyn ScrutinyApp>> = vec![
        Box::new(Bt::class_s()),
        Box::new(Sp::class_s()),
        Box::new(Mg::class_s()),
        Box::new(Cg::class_s()),
        Box::new(Lu::class_s()),
    ];
    let mut rows = Vec::new();
    for app in &apps {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let captured = capture_state(app.as_ref());
        rows.push(table3_row(&analysis, &captured).expect("in-memory"));
    }
    println!("\n{}", format_table3(&rows));

    let bt = Bt::class_s();
    let analysis = scrutinize(&bt).unwrap();
    let captured = capture_state(&bt);
    let pruned = plans_for(&analysis, Policy::PrunedValue);
    let full: Vec<VarPlan> = captured.iter().map(|_| VarPlan::Full).collect();
    let mut g = c.benchmark_group("table3_storage");
    g.bench_function("serialize_full_bt", |b| {
        b.iter(|| serialize(&captured, &full).unwrap().breakdown)
    });
    g.bench_function("serialize_pruned_bt", |b| {
        b.iter(|| serialize(&captured, &pruned).unwrap().breakdown)
    });
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    benches();
    let summary = scrutiny_bench::BenchSummary::new("table3_storage");
    summary.absorb_criterion();
    summary.write_and_report();
}
