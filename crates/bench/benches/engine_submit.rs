//! Compute-thread checkpoint cost: blocking `CheckpointStore::save` vs
//! asynchronous `EngineHandle::submit`, on NPB class-S snapshots.
//!
//! The acceptance bar for the async engine is that `submit` returns in
//! **< 10%** of the time the equivalent blocking save occupies the
//! compute thread; the explicit ratio section at the end demonstrates it
//! (and the criterion groups above give the usual distribution view).
//!
//! Run with: `cargo bench -p scrutiny-bench --bench engine_submit`

use criterion::{black_box, criterion_group, Criterion};
use scrutiny_ckpt::{CheckpointStore, VarPlan, VarRecord};
use scrutiny_core::restart::capture_state;
use scrutiny_core::{plan::plans_for, scrutinize, Policy, ScrutinyApp};
use scrutiny_engine::{DirBackend, EngineConfig, EngineHandle};
use scrutiny_npb::{Bt, Cg};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn snapshot_of(app: &dyn ScrutinyApp) -> (String, Vec<VarRecord>, Vec<VarPlan>) {
    let analysis = scrutinize(app).unwrap();
    let vars = capture_state(app);
    let plans = plans_for(&analysis, Policy::PrunedValue);
    (app.spec().name, vars, plans)
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scrutiny_bench_engine_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_submit(c: &mut Criterion) {
    for (name, vars, plans) in [snapshot_of(&Bt::class_s()), snapshot_of(&Cg::class_s())] {
        let mut group = c.benchmark_group(&format!("engine_submit/{name}"));
        group.sample_size(30);

        let dir = bench_dir(&format!("save_{name}"));
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        group.bench_function("blocking_save", |b| {
            b.iter(|| black_box(store.save(&vars, &plans).unwrap()))
        });

        let adir = bench_dir(&format!("async_{name}"));
        let engine = EngineHandle::open(
            Arc::new(DirBackend::open(&adir).unwrap()),
            EngineConfig {
                keep: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        group.bench_function("async_submit_then_wait", |b| {
            b.iter(|| {
                let t = engine.submit(&vars, &plans).unwrap();
                black_box(engine.wait(t).unwrap())
            })
        });
        group.finish();
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&adir);
    }
}

/// The acceptance-criterion measurement: mean time `submit` holds the
/// compute thread vs mean blocking save, same snapshot, same storage
/// medium. Waits happen outside the timed region — that is the point of
/// the engine.
fn submit_ratio_demo(summary: &mut scrutiny_bench::BenchSummary) {
    const SAMPLES: u32 = 40;
    println!();
    println!("compute-thread occupancy: blocking save vs async submit (NPB class S)");
    for (name, vars, plans) in [snapshot_of(&Bt::class_s()), snapshot_of(&Cg::class_s())] {
        let dir = bench_dir(&format!("ratio_save_{name}"));
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        store.save(&vars, &plans).unwrap(); // warm up the dir
        let t0 = Instant::now();
        for _ in 0..SAMPLES {
            black_box(store.save(&vars, &plans).unwrap());
        }
        let save_mean = t0.elapsed() / SAMPLES;

        let adir = bench_dir(&format!("ratio_async_{name}"));
        let engine = EngineHandle::open(
            Arc::new(DirBackend::open(&adir).unwrap()),
            EngineConfig {
                keep: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        let mut submit_total = Duration::ZERO;
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            let ticket = engine.submit(&vars, &plans).unwrap();
            submit_total += t0.elapsed();
            engine.wait(ticket).unwrap(); // untimed: off the compute thread
        }
        let submit_mean = submit_total / SAMPLES;
        let ratio = 100.0 * submit_mean.as_secs_f64() / save_mean.as_secs_f64().max(1e-12);
        let metric = name.to_ascii_lowercase();
        summary.set_mean_us(&format!("ratio.{metric}.blocking_save_us"), save_mean);
        summary.set_mean_us(&format!("ratio.{metric}.async_submit_us"), submit_mean);
        summary.set_meta(&format!("{metric}_submit_ratio_pct"), ratio);
        println!(
            "  {name:<4} blocking save {save_mean:>10.2?}   async submit {submit_mean:>10.2?}   \
             ratio {ratio:5.1}%  (target < 10%) {}",
            if ratio < 10.0 { "OK" } else { "FAIL" }
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&adir);
    }
}

criterion_group!(benches, bench_submit);

fn main() {
    benches();
    let mut summary = scrutiny_bench::BenchSummary::new("engine_submit");
    summary.absorb_criterion();
    submit_ratio_demo(&mut summary);
    summary.write_and_report();
}
