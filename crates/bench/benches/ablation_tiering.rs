//! A1/A2 benches: value vs structural sweep cost on one recorded tape,
//! and tiered vs pruned serialization cost.

use criterion::{criterion_group, Criterion};
use scrutiny_ad::TapeSession;
use scrutiny_ckpt::writer::serialize;
use scrutiny_core::plan::plans_for;
use scrutiny_core::restart::capture_state;
use scrutiny_core::{scrutinize, LeafSite, Policy, ScrutinyApp};
use scrutiny_npb::Bt;

fn bench(c: &mut Criterion) {
    // Record one BT tape, then time the two reverse analyses on it.
    let bt = Bt::mini();
    let session = TapeSession::with_capacity(bt.tape_capacity_hint());
    let mut site = LeafSite::new();
    let out = bt.run_ad(&mut site);
    let tape = session.finish();
    println!("\nablation tape: {} nodes", tape.len());

    let mut g = c.benchmark_group("ablation");
    g.bench_function("value_gradient_sweep", |b| {
        b.iter(|| tape.gradient(out.output).unwrap().len())
    });
    g.bench_function("structural_reachability_sweep", |b| {
        b.iter(|| tape.reachable(out.output).unwrap().len())
    });
    g.finish();

    let analysis = scrutinize(&bt).unwrap();
    let captured = capture_state(&bt);
    let pruned = plans_for(&analysis, Policy::PrunedValue);
    let tiered = plans_for(&analysis, Policy::Tiered { hi_threshold: 1e-3 });
    let mut g = c.benchmark_group("tiering");
    g.bench_function("serialize_pruned", |b| {
        b.iter(|| serialize(&captured, &pruned).unwrap().breakdown)
    });
    g.bench_function("serialize_tiered", |b| {
        b.iter(|| serialize(&captured, &tiered).unwrap().breakdown)
    });
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    benches();
    let summary = scrutiny_bench::BenchSummary::new("ablation_tiering");
    summary.absorb_criterion();
    summary.write_and_report();
}
