//! A1/A2 benches: value vs structural sweep cost on one recorded tape,
//! and tiered vs pruned serialization cost.

use criterion::{criterion_group, Criterion};
use scrutiny_ad::TapeSession;
use scrutiny_ckpt::writer::{serialize, serialize_with};
use scrutiny_core::plan::{codec_for, plans_for};
use scrutiny_core::restart::capture_state;
use scrutiny_core::{scrutinize, LeafSite, Policy, ScrutinyApp};
use scrutiny_npb::Bt;

fn bench(c: &mut Criterion) {
    // Record one BT tape, then time the two reverse analyses on it.
    let bt = Bt::mini();
    let session = TapeSession::with_capacity(bt.tape_capacity_hint());
    let mut site = LeafSite::new();
    let out = bt.run_ad(&mut site);
    let tape = session.finish();
    println!("\nablation tape: {} nodes", tape.len());

    let mut g = c.benchmark_group("ablation");
    g.bench_function("value_gradient_sweep", |b| {
        b.iter(|| tape.gradient(out.output).unwrap().len())
    });
    g.bench_function("structural_reachability_sweep", |b| {
        b.iter(|| tape.reachable(out.output).unwrap().len())
    });
    g.finish();

    let analysis = scrutinize(&bt).unwrap();
    let captured = capture_state(&bt);
    let pruned = plans_for(&analysis, Policy::PrunedValue);
    let tiered = plans_for(&analysis, Policy::Tiered { hi_threshold: 1e-3 });
    let compressed = Policy::TieredCompressed {
        hi_threshold: 1e-3,
        keep: 5,
    };
    let zplans = plans_for(&analysis, compressed);
    let zcodec = codec_for(compressed);
    let mut g = c.benchmark_group("tiering");
    g.bench_function("serialize_pruned", |b| {
        b.iter(|| serialize(&captured, &pruned).unwrap().breakdown)
    });
    g.bench_function("serialize_tiered", |b| {
        b.iter(|| serialize(&captured, &tiered).unwrap().breakdown)
    });
    g.bench_function("serialize_tiered_compressed", |b| {
        b.iter(|| {
            serialize_with(&captured, &zplans, zcodec.lo)
                .unwrap()
                .breakdown
        })
    });
    g.finish();
}

/// The canonical meta fields for the tiering ablation: serialization
/// rate (payload bytes per second) for the pruned baseline, plus the
/// payload shrink of the real tiered-compressed format (`LoCodec::Trunc`
/// via the v2 data header) over prune-only.
fn tiering_summary(summary: &mut scrutiny_bench::BenchSummary) {
    use std::time::Instant;
    let bt = Bt::mini();
    let analysis = scrutinize(&bt).unwrap();
    let captured = capture_state(&bt);
    let pruned = plans_for(&analysis, Policy::PrunedValue);
    let compressed = Policy::TieredCompressed {
        hi_threshold: 1e-3,
        keep: 5,
    };
    let zplans = plans_for(&analysis, compressed);
    let zcodec = codec_for(compressed);

    const REPS: u32 = 20;
    let t0 = Instant::now();
    let mut pruned_bytes = 0usize;
    for _ in 0..REPS {
        pruned_bytes = serialize(&captured, &pruned).unwrap().data.len();
    }
    summary.set_bytes_per_sec(
        "serialize.pruned",
        pruned_bytes * REPS as usize,
        t0.elapsed(),
    );

    let zbytes = serialize_with(&captured, &zplans, zcodec.lo)
        .unwrap()
        .data
        .len();
    summary.set_compression_ratio("tiered", pruned_bytes, zbytes);
    println!(
        "tiering: pruned image {pruned_bytes} B, tiered-compressed (keep=5) {zbytes} B \
         (ratio {:.3}) {}",
        zbytes as f64 / pruned_bytes.max(1) as f64,
        if zbytes < pruned_bytes { "OK" } else { "FAIL" }
    );
}

criterion_group!(benches, bench);
fn main() {
    benches();
    let mut summary = scrutiny_bench::BenchSummary::new("ablation_tiering");
    summary.absorb_criterion();
    tiering_summary(&mut summary);
    summary.write_and_report();
}
