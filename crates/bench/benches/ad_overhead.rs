//! A3 bench: what tape recording costs relative to a native run, and what
//! constant folding buys (EP's random stream stays off the tape).

use criterion::{criterion_group, criterion_main, Criterion};
use scrutiny_ad::TapeSession;
use scrutiny_core::site::NoopSite;
use scrutiny_core::ScrutinyApp;
use scrutiny_npb::{Bt, Ep};

fn bench(c: &mut Criterion) {
    let bt = Bt::mini();
    let mut g = c.benchmark_group("ad_overhead");
    g.sample_size(10);
    g.bench_function("bt_mini_f64", |b| b.iter(|| bt.run_f64(&mut NoopSite)));
    g.bench_function("bt_mini_record", |b| {
        b.iter(|| {
            let s = TapeSession::with_capacity(bt.tape_capacity_hint());
            let out = bt.run_ad(&mut NoopSite);
            let tape = s.finish();
            (out.output.value(), tape.len())
        })
    });
    g.bench_function("bt_mini_record_and_sweep", |b| {
        b.iter(|| {
            let s = TapeSession::with_capacity(bt.tape_capacity_hint());
            let mut site = scrutiny_core::LeafSite::new();
            let out = bt.run_ad(&mut site);
            let tape = s.finish();
            tape.gradient(out.output).len()
        })
    });
    let ep = Ep::mini();
    g.bench_function("ep_mini_f64", |b| b.iter(|| ep.run_f64(&mut NoopSite)));
    g.bench_function("ep_mini_record_constfold", |b| {
        b.iter(|| {
            let s = TapeSession::new();
            let out = ep.run_ad(&mut NoopSite);
            let tape = s.finish();
            (out.output.value(), tape.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
