//! A3 bench: what tape recording costs relative to a native run, what
//! constant folding buys (EP's random stream stays off the tape), and —
//! since the segmented-tape refactor — what segmentation costs at record
//! time and what the parallel frontier-merge sweep buys over the serial
//! seed sweep.
//!
//! The explicit section at the end reports measured numbers directly:
//! record throughput (nodes/s) for the seed-like monolithic layout vs the
//! segmented default, and value-sweep time serial vs parallel (the two are
//! bit-identical, so the delta is pure scheduling). On a single-core
//! container the parallel sweep degenerates to a measurement of frontier
//! overhead; on multi-core hardware it reports the real speedup.
//!
//! Run with: `cargo bench -p scrutiny-bench --bench ad_overhead`

use criterion::{criterion_group, Criterion};
use scrutiny_ad::{SweepConfig, Tape, TapeCheckpointConfig, TapeConfig, TapeSession};
use scrutiny_core::site::NoopSite;
use scrutiny_core::{LeafSite, ScrutinyApp};
use scrutiny_npb::{Bt, Ep};
use std::time::Instant;

/// Record `app` once and return its tape plus the output node.
fn record(app: &dyn ScrutinyApp, segment_len: usize) -> (scrutiny_ad::Adj, Tape) {
    record_bounded(app, segment_len, None)
}

/// [`record`] under an optional tape residency budget.
fn record_bounded(
    app: &dyn ScrutinyApp,
    segment_len: usize,
    checkpoint: Option<TapeCheckpointConfig>,
) -> (scrutiny_ad::Adj, Tape) {
    let s = TapeSession::with_config(TapeConfig {
        capacity: app.tape_capacity_hint(),
        segment_len,
        checkpoint,
        ..TapeConfig::default()
    });
    let mut site = LeafSite::new();
    let out = app.run_ad(&mut site);
    (out.output, s.finish())
}

fn bench(c: &mut Criterion) {
    let bt = Bt::mini();
    let mut g = c.benchmark_group("ad_overhead");
    g.sample_size(10);
    g.bench_function("bt_mini_f64", |b| b.iter(|| bt.run_f64(&mut NoopSite)));
    g.bench_function("bt_mini_record", |b| {
        b.iter(|| {
            let s = TapeSession::with_capacity(bt.tape_capacity_hint());
            let out = bt.run_ad(&mut NoopSite);
            let tape = s.finish();
            (out.output.value(), tape.len())
        })
    });
    g.bench_function("bt_mini_record_and_sweep", |b| {
        b.iter(|| {
            let s = TapeSession::with_capacity(bt.tape_capacity_hint());
            let mut site = scrutiny_core::LeafSite::new();
            let out = bt.run_ad(&mut site);
            let tape = s.finish();
            tape.gradient(out.output).unwrap().len()
        })
    });
    let (out, tape) = record(&bt, scrutiny_ad::DEFAULT_SEGMENT_LEN.min(1 << 14));
    g.bench_function("bt_mini_sweep_serial", |b| {
        b.iter(|| {
            tape.gradient_sweep(out, SweepConfig::serial())
                .unwrap()
                .0
                .len()
        })
    });
    g.bench_function("bt_mini_sweep_parallel", |b| {
        b.iter(|| {
            tape.gradient_sweep(out, SweepConfig::default())
                .unwrap()
                .0
                .len()
        })
    });
    let ep = Ep::mini();
    g.bench_function("ep_mini_f64", |b| b.iter(|| ep.run_f64(&mut NoopSite)));
    g.bench_function("ep_mini_record_constfold", |b| {
        b.iter(|| {
            let s = TapeSession::new();
            let out = ep.run_ad(&mut NoopSite);
            let tape = s.finish();
            (out.output.value(), tape.len())
        })
    });
    g.finish();
}

/// Median-of-N wall-clock seconds for `f`.
fn measure<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The explicit measured comparison the segmented-tape refactor is judged
/// by: record throughput segmented vs seed-like monolithic layout, and
/// sweep time parallel vs serial.
fn report_segmented_vs_seed() {
    let bt = Bt::mini();
    let hint = bt.tape_capacity_hint();

    // Seed-equivalent layout: one monolithic segment, fully pre-reserved —
    // the best case the contiguous seed tape could ever achieve (its worst
    // case, a mid-kernel realloc copy, cannot happen on the segmented tape
    // at all).
    let t_mono = measure(5, || {
        let s = TapeSession::with_config(TapeConfig {
            capacity: hint,
            segment_len: hint.next_power_of_two(),
            ..TapeConfig::default()
        });
        bt.run_ad(&mut NoopSite);
        s.finish().len()
    });
    let t_seg = measure(5, || {
        let s = TapeSession::with_capacity(hint);
        bt.run_ad(&mut NoopSite);
        s.finish().len()
    });

    let (out, tape) = record(&bt, 1 << 14);
    let nodes = tape.len();
    let t_serial = measure(5, || {
        tape.gradient_sweep(out, SweepConfig::serial())
            .unwrap()
            .0
            .len()
    });
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .max(2);
    let (_, stats) = tape
        .gradient_sweep(out, SweepConfig::with_threads(threads))
        .unwrap();
    let t_par = measure(5, || {
        tape.gradient_sweep(out, SweepConfig::with_threads(threads))
            .unwrap()
            .0
            .len()
    });

    println!("\n== segmented tape vs seed layout (BT mini, {nodes} nodes) ==");
    println!(
        "record throughput  monolithic {:>8.1} Mnodes/s   segmented {:>8.1} Mnodes/s   ({:+.1}%)",
        nodes as f64 / t_mono / 1e6,
        nodes as f64 / t_seg / 1e6,
        100.0 * (t_mono / t_seg - 1.0),
    );
    println!(
        "value sweep        serial     {:>8.2} ms         parallel  {:>8.2} ms         speedup {:.2}x",
        t_serial * 1e3,
        t_par * 1e3,
        t_serial / t_par,
    );
    println!(
        "parallel sweep: {} segments, {} threads, {} cross-segment frontier contributions",
        stats.segments, stats.threads, stats.cross_contribs
    );
}

/// What bounded tape residency costs: record throughput and value-sweep
/// time at a few checkpoint budgets against the unbounded tape, with the
/// peak resident bytes each budget actually reached. The sweeps replay
/// evicted segments by re-running the app, so sweep time grows roughly
/// with `segments / ncheckpoints` extra recordings — that recompute is
/// the price of the O(ncheckpoints · segment) memory bound, and this is
/// where it gets a number.
fn report_checkpointed(summary: &scrutiny_bench::BenchSummary) {
    const SEG: usize = 1 << 14;
    let bt = Bt::mini();
    // Must mirror the recording run exactly (leaves included), or the
    // digest check will refuse the re-recorded segments.
    let replay = || {
        let mut site = LeafSite::new();
        bt.run_ad(&mut site);
    };

    let (out, full) = record(&bt, SEG);
    let nodes = full.len();
    let segments = full.segment_count();
    let t_record_full = measure(5, || record(&bt, SEG).1.len());
    let t_sweep_full = measure(5, || {
        full.gradient_sweep(out, SweepConfig::serial())
            .unwrap()
            .0
            .len()
    });
    summary.set_value(
        "ad.ckpt.unbounded.peak_resident_bytes",
        full.peak_resident_bytes() as i64,
    );

    println!("\n== bounded-memory tape (BT mini, {nodes} nodes, {segments} segments) ==");
    println!(
        "unbounded          record {:>8.1} Mnodes/s   sweep {:>8.2} ms   peak {:>10} B",
        nodes as f64 / t_record_full / 1e6,
        t_sweep_full * 1e3,
        full.peak_resident_bytes(),
    );
    for (label, ckpt) in [
        ("auto", TapeCheckpointConfig::auto()),
        ("n=4", TapeCheckpointConfig::with_ncheckpoints(4)),
        ("n=2", TapeCheckpointConfig::with_ncheckpoints(2)),
    ] {
        let (out_b, tape) = record_bounded(&bt, SEG, Some(ckpt));
        let t_record = measure(5, || record_bounded(&bt, SEG, Some(ckpt)).1.len());
        let t_sweep = measure(3, || {
            tape.gradient_sweep_replay(out_b, SweepConfig::serial(), &replay)
                .unwrap()
                .0
                .len()
        });
        let peak = tape.peak_resident_bytes();
        let n = ckpt.resolved(segments);
        println!(
            "ncheckpoints={n:<3} ({label:<4}) record {:>6.1} Mnodes/s   sweep {:>8.2} ms   peak {:>10} B   {} replays",
            nodes as f64 / t_record / 1e6,
            t_sweep * 1e3,
            peak,
            tape.stats().replayed_segments,
        );
        let key = |m: &str| format!("ad.ckpt.{label}.{m}");
        summary.set_value(&key("peak_resident_bytes"), peak as i64);
        summary.set_value(
            &key("record_nodes_per_sec"),
            (nodes as f64 / t_record) as i64,
        );
        summary.set_value(&key("sweep_us"), (t_sweep * 1e6) as i64);
        summary.set_value(
            &key("replayed_segments"),
            tape.stats().replayed_segments as i64,
        );
    }
}

criterion_group!(benches, bench);

fn main() {
    benches();
    let summary = scrutiny_bench::BenchSummary::new("ad_overhead");
    summary.absorb_criterion();
    // The explicit measurement is expensive (several full records and
    // sweeps); skip it when the harness is only being enumerated or run
    // in test mode (`cargo bench -- --list`, `cargo test --benches`).
    let enumerating = std::env::args().any(|a| a == "--list" || a == "--test");
    if !enumerating {
        report_segmented_vs_seed();
        report_checkpointed(&summary);
    }
    summary.write_and_report();
}
