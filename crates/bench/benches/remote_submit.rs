//! Wire overhead of the checkpoint service: `EngineHandle::submit` +
//! `wait` against a local `DirBackend` vs the same engine speaking to a
//! live `scrutinyd` over a loopback socket (`RemoteBackend` → daemon →
//! the same `DirBackend` layout).
//!
//! The daemon adds framing, one request/response round trip per object,
//! and a second copy of every payload — the explicit section at the end
//! reports the per-epoch latency ratio and the raw PUT throughput so
//! regressions in the protocol path are visible as numbers, not vibes.
//!
//! Run with: `cargo bench -p scrutiny-bench --bench remote_submit`

use criterion::{black_box, criterion_group, Criterion};
use scrutiny_ckpt::names::Tenant;
use scrutiny_ckpt::{VarPlan, VarRecord};
use scrutiny_core::restart::capture_state;
use scrutiny_core::{plan::plans_for, scrutinize, Policy, ScrutinyApp};
use scrutiny_engine::{DirBackend, EngineConfig, EngineHandle, StorageBackend};
use scrutiny_npb::Cg;
use scrutinyd::{Daemon, DaemonConfig, RemoteBackend};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn snapshot_of(app: &dyn ScrutinyApp) -> (Vec<VarRecord>, Vec<VarPlan>) {
    let analysis = scrutinize(app).unwrap();
    let vars = capture_state(app);
    let plans = plans_for(&analysis, Policy::PrunedValue);
    (vars, plans)
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scrutiny_bench_remote_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A daemon on loopback TCP over a fresh `DirBackend` pool, plus a
/// connected tenant backend.
fn daemon_rig(tag: &str) -> (Daemon, Arc<RemoteBackend>, std::path::PathBuf) {
    let dir = bench_dir(tag);
    let pool = Arc::new(DirBackend::open(&dir).unwrap());
    let daemon = Daemon::spawn_tcp("127.0.0.1:0", pool, DaemonConfig::default()).unwrap();
    let remote = Arc::new(
        RemoteBackend::connect(daemon.endpoint(), Some(Tenant::new("bench").unwrap())).unwrap(),
    );
    (daemon, remote, dir)
}

fn bench_remote_submit(c: &mut Criterion) {
    let (vars, plans) = snapshot_of(&Cg::class_s());
    let mut group = c.benchmark_group("remote_submit/cg");
    group.sample_size(20);

    let dir = bench_dir("direct");
    let engine = EngineHandle::open(
        Arc::new(DirBackend::open(&dir).unwrap()),
        EngineConfig {
            keep: Some(4),
            ..Default::default()
        },
    )
    .unwrap();
    group.bench_function("direct_dir", |b| {
        b.iter(|| {
            let t = engine.submit(&vars, &plans).unwrap();
            black_box(engine.wait(t).unwrap())
        })
    });
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);

    let (daemon, remote, pool_dir) = daemon_rig("daemon");
    let engine = EngineHandle::open(
        remote,
        EngineConfig {
            keep: Some(4),
            ..Default::default()
        },
    )
    .unwrap();
    group.bench_function("via_scrutinyd", |b| {
        b.iter(|| {
            let t = engine.submit(&vars, &plans).unwrap();
            black_box(engine.wait(t).unwrap())
        })
    });
    group.finish();
    drop(engine);
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&pool_dir);
}

/// The headline numbers: per-epoch latency direct vs over the wire, and
/// raw object PUT throughput through the daemon.
fn wire_overhead_demo(summary: &mut scrutiny_bench::BenchSummary) {
    const SAMPLES: u32 = 20;
    let (vars, plans) = snapshot_of(&Cg::class_s());
    println!();
    println!("checkpoint epoch latency: direct DirBackend vs scrutinyd over loopback");

    let epoch_mean = |engine: &EngineHandle| {
        let t = engine.submit(&vars, &plans).unwrap();
        engine.wait(t).unwrap(); // warm-up epoch
        let t0 = Instant::now();
        for _ in 0..SAMPLES {
            let t = engine.submit(&vars, &plans).unwrap();
            black_box(engine.wait(t).unwrap());
        }
        t0.elapsed() / SAMPLES
    };

    let dir = bench_dir("ratio_direct");
    let engine = EngineHandle::open(
        Arc::new(DirBackend::open(&dir).unwrap()),
        EngineConfig {
            keep: Some(4),
            ..Default::default()
        },
    )
    .unwrap();
    let direct_mean = epoch_mean(&engine);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);

    let (daemon, remote, pool_dir) = daemon_rig("ratio_daemon");
    let engine = EngineHandle::open(
        remote.clone(),
        EngineConfig {
            keep: Some(4),
            ..Default::default()
        },
    )
    .unwrap();
    let remote_mean = epoch_mean(&engine);
    drop(engine);

    // Raw wire throughput: one 4 MiB object PUT, round-tripped.
    let payload = vec![0xA5u8; 4 << 20];
    let mut put_total = Duration::ZERO;
    for i in 0..SAMPLES {
        let name = format!("blob_{:03}.aux.tmp", i);
        let t0 = Instant::now();
        remote.put(&name, &payload).unwrap();
        put_total += t0.elapsed();
        remote.delete(&name).unwrap();
    }
    let put_mean = put_total / SAMPLES;
    let mb_per_s = (payload.len() as f64 / (1 << 20) as f64) / put_mean.as_secs_f64().max(1e-12);
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&pool_dir);

    let overhead = 100.0 * remote_mean.as_secs_f64() / direct_mean.as_secs_f64().max(1e-12);
    summary.set_mean_us("epoch.direct_dir_us", direct_mean);
    summary.set_mean_us("epoch.via_scrutinyd_us", remote_mean);
    summary.set_mean_us("put_4mib_us", put_mean);
    summary.set_meta("remote_epoch_pct_of_direct", overhead);
    summary.set_meta("put_throughput_mib_s", mb_per_s);
    println!(
        "  cg   direct {direct_mean:>10.2?}   via scrutinyd {remote_mean:>10.2?}   \
         remote/direct {overhead:5.1}%"
    );
    println!("  raw PUT 4 MiB {put_mean:>10.2?}   ({mb_per_s:.1} MiB/s over loopback)");
}

criterion_group!(benches, bench_remote_submit);

fn main() {
    benches();
    let mut summary = scrutiny_bench::BenchSummary::new("remote_submit");
    summary.absorb_criterion();
    wire_overhead_demo(&mut summary);
    summary.write_and_report();
}
