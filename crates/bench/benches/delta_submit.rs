//! Bytes-written reduction of delta checkpoints: full epochs vs
//! base+delta epochs on an NPB workload with localized updates.
//!
//! The paper's pruning removes *semantic* redundancy once per epoch; the
//! delta format (see `scrutiny_ckpt::delta`) additionally removes the
//! *temporal* redundancy between epochs of a long-running loop. The
//! acceptance bar is that delta epochs write **measurably fewer bytes**
//! than full epochs for localized updates; the explicit section at the
//! end reports the measured reduction (and the criterion groups above
//! give the usual timing view of submit+wait in both modes).
//!
//! Run with: `cargo bench -p scrutiny-bench --bench delta_submit`

use criterion::{black_box, criterion_group, Criterion};
use scrutiny_ckpt::{DeltaPolicy, VarPlan, VarRecord};
use scrutiny_core::restart::capture_state;
use scrutiny_core::{plan::plans_for, scrutinize, Policy, ScrutinyApp};
use scrutiny_engine::{EngineConfig, EngineHandle, MemBackend};
use scrutiny_npb::{perturb_localized, Cg, Ft};
use std::sync::Arc;

fn snapshot_of(app: &dyn ScrutinyApp) -> (String, Vec<VarRecord>, Vec<VarPlan>) {
    let analysis = scrutinize(app).unwrap();
    let vars = capture_state(app);
    let plans = plans_for(&analysis, Policy::PrunedValue);
    (app.spec().name, vars, plans)
}

fn delta_engine() -> EngineHandle {
    EngineHandle::open(
        Arc::new(MemBackend::new()),
        EngineConfig {
            keep: Some(4),
            delta: Some(DeltaPolicy::default()),
            ..Default::default()
        },
    )
    .unwrap()
}

fn full_engine() -> EngineHandle {
    EngineHandle::open(
        Arc::new(MemBackend::new()),
        EngineConfig {
            keep: Some(4),
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_delta_submit(c: &mut Criterion) {
    for (name, vars, plans) in [snapshot_of(&Cg::class_s()), snapshot_of(&Ft::class_s())] {
        let mut group = c.benchmark_group(&format!("delta_submit/{name}"));
        group.sample_size(20);

        let engine = full_engine();
        let mut vars_full = vars.clone();
        let mut epoch = 0usize;
        group.bench_function("full_epoch", |b| {
            b.iter(|| {
                epoch += 1;
                perturb_localized(&mut vars_full, epoch);
                let t = engine.submit(&vars_full, &plans).unwrap();
                black_box(engine.wait(t).unwrap())
            })
        });

        let engine = delta_engine();
        let mut vars_delta = vars.clone();
        let mut epoch = 0usize;
        group.bench_function("delta_epoch", |b| {
            b.iter(|| {
                epoch += 1;
                perturb_localized(&mut vars_delta, epoch);
                let t = engine.submit(&vars_delta, &plans).unwrap();
                black_box(engine.wait(t).unwrap())
            })
        });
        group.finish();
    }
}

/// The acceptance-criterion measurement: bytes written per epoch, full
/// mode vs delta mode, same localized-update workload. Epoch 0 (the
/// base) costs the same either way; the point is every epoch after it.
fn delta_bytes_demo() {
    const EPOCHS: usize = 8;
    println!();
    println!("bytes written per checkpoint epoch: full vs base+delta (NPB class S,");
    println!("localized updates touching ~1/16th of each variable per epoch)");
    for (name, vars, plans) in [snapshot_of(&Cg::class_s()), snapshot_of(&Ft::class_s())] {
        let mut totals = [Vec::new(), Vec::new()];
        for (which, engine) in [full_engine(), delta_engine()].into_iter().enumerate() {
            let mut vars = vars.clone();
            for epoch in 0..EPOCHS {
                if epoch > 0 {
                    perturb_localized(&mut vars, epoch);
                }
                let t = engine.submit(&vars, &plans).unwrap();
                totals[which].push(engine.wait(t).unwrap().total());
            }
        }
        let full_mean = totals[0][1..].iter().sum::<usize>() / (EPOCHS - 1);
        let delta_mean = totals[1][1..].iter().sum::<usize>() / (EPOCHS - 1);
        let reduction = full_mean as f64 / delta_mean.max(1) as f64;
        println!(
            "  {name:<4} base {:>9} B   full epoch {full_mean:>9} B   delta epoch {delta_mean:>9} B   \
             reduction {reduction:5.1}x {}",
            totals[1][0],
            if delta_mean < full_mean { "OK" } else { "FAIL" }
        );
    }
}

criterion_group!(benches, bench_delta_submit);

fn main() {
    benches();
    let summary = scrutiny_bench::BenchSummary::new("delta_submit");
    summary.absorb_criterion();
    delta_bytes_demo();
    summary.write_and_report();
}
