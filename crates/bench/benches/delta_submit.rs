//! Bytes-written reduction of delta checkpoints: full epochs vs
//! base+delta epochs on an NPB workload with localized updates.
//!
//! The paper's pruning removes *semantic* redundancy once per epoch; the
//! delta format (see `scrutiny_ckpt::delta`) additionally removes the
//! *temporal* redundancy between epochs of a long-running loop. The
//! acceptance bar is that delta epochs write **measurably fewer bytes**
//! than full epochs for localized updates; the explicit section at the
//! end reports the measured reduction (and the criterion groups above
//! give the usual timing view of submit+wait in both modes).
//!
//! Run with: `cargo bench -p scrutiny-bench --bench delta_submit`

use criterion::{black_box, criterion_group, Criterion};
use scrutiny_ckpt::format::{crc32, crc32_scalar};
use scrutiny_ckpt::{AtRest, CodecConfig, DeltaPolicy, VarPlan, VarRecord};
use scrutiny_core::restart::capture_state;
use scrutiny_core::{plan::plans_for, scrutinize, Policy, ScrutinyApp};
use scrutiny_engine::{EngineConfig, EngineHandle, MemBackend};
use scrutiny_npb::{perturb_localized, Cg, Ft};
use std::sync::Arc;
use std::time::Instant;

fn snapshot_of(app: &dyn ScrutinyApp) -> (String, Vec<VarRecord>, Vec<VarPlan>) {
    let analysis = scrutinize(app).unwrap();
    let vars = capture_state(app);
    let plans = plans_for(&analysis, Policy::PrunedValue);
    (app.spec().name, vars, plans)
}

fn delta_engine_with(codec: CodecConfig) -> (EngineHandle, Arc<MemBackend>) {
    let mem = Arc::new(MemBackend::new());
    let engine = EngineHandle::open(
        mem.clone(),
        EngineConfig {
            keep: Some(4),
            delta: Some(DeltaPolicy::default()),
            codec,
            ..Default::default()
        },
    )
    .unwrap();
    (engine, mem)
}

fn delta_engine() -> EngineHandle {
    delta_engine_with(CodecConfig::default()).0
}

fn full_engine() -> EngineHandle {
    EngineHandle::open(
        Arc::new(MemBackend::new()),
        EngineConfig {
            keep: Some(4),
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_delta_submit(c: &mut Criterion) {
    for (name, vars, plans) in [snapshot_of(&Cg::class_s()), snapshot_of(&Ft::class_s())] {
        let mut group = c.benchmark_group(&format!("delta_submit/{name}"));
        group.sample_size(20);

        let engine = full_engine();
        let mut vars_full = vars.clone();
        let mut epoch = 0usize;
        group.bench_function("full_epoch", |b| {
            b.iter(|| {
                epoch += 1;
                perturb_localized(&mut vars_full, epoch);
                let t = engine.submit(&vars_full, &plans).unwrap();
                black_box(engine.wait(t).unwrap())
            })
        });

        let engine = delta_engine();
        let mut vars_delta = vars.clone();
        let mut epoch = 0usize;
        group.bench_function("delta_epoch", |b| {
            b.iter(|| {
                epoch += 1;
                perturb_localized(&mut vars_delta, epoch);
                let t = engine.submit(&vars_delta, &plans).unwrap();
                black_box(engine.wait(t).unwrap())
            })
        });
        group.finish();
    }
}

/// The acceptance-criterion measurement: bytes written per epoch, full
/// mode vs delta mode, same localized-update workload. Epoch 0 (the
/// base) costs the same either way; the point is every epoch after it.
fn delta_bytes_demo() {
    const EPOCHS: usize = 8;
    println!();
    println!("bytes written per checkpoint epoch: full vs base+delta (NPB class S,");
    println!("localized updates touching ~1/16th of each variable per epoch)");
    for (name, vars, plans) in [snapshot_of(&Cg::class_s()), snapshot_of(&Ft::class_s())] {
        let mut totals = [Vec::new(), Vec::new()];
        for (which, engine) in [full_engine(), delta_engine()].into_iter().enumerate() {
            let mut vars = vars.clone();
            for epoch in 0..EPOCHS {
                if epoch > 0 {
                    perturb_localized(&mut vars, epoch);
                }
                let t = engine.submit(&vars, &plans).unwrap();
                totals[which].push(engine.wait(t).unwrap().total());
            }
        }
        let full_mean = totals[0][1..].iter().sum::<usize>() / (EPOCHS - 1);
        let delta_mean = totals[1][1..].iter().sum::<usize>() / (EPOCHS - 1);
        let reduction = full_mean as f64 / delta_mean.max(1) as f64;
        println!(
            "  {name:<4} base {:>9} B   full epoch {full_mean:>9} B   delta epoch {delta_mean:>9} B   \
             reduction {reduction:5.1}x {}",
            totals[1][0],
            if delta_mean < full_mean { "OK" } else { "FAIL" }
        );
    }
}

/// Headline throughput numbers in the summary's canonical meta fields:
///
/// * `submit.bytes_per_sec` — end-to-end delta-mode submit+wait rate in
///   raw serialized image bytes per second;
/// * `crc32.sliced.bytes_per_sec` vs `crc32.scalar.bytes_per_sec` — the
///   vectorized slice-by-8 CRC against its byte-at-a-time reference on
///   the same serialized image (the acceptance bar: sliced wins);
/// * `at_rest.compression_ratio` — stored/raw bytes across a delta chain
///   published with the `SCRUTCZB` codec vs the identical chain raw.
fn throughput_summary(summary: &mut scrutiny_bench::BenchSummary) {
    const EPOCHS: usize = 8;
    let (_, vars, plans) = snapshot_of(&Cg::class_s());
    let image = scrutiny_ckpt::serialize(&vars, &plans).unwrap().data;

    // CRC hot path: vectorized vs scalar over the serialized image.
    const REPS: usize = 50;
    let t0 = Instant::now();
    for _ in 0..REPS {
        black_box(crc32(black_box(&image)));
    }
    let sliced = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..REPS {
        black_box(crc32_scalar(black_box(&image)));
    }
    let scalar = t0.elapsed();
    summary.set_bytes_per_sec("crc32.sliced", image.len() * REPS, sliced);
    summary.set_bytes_per_sec("crc32.scalar", image.len() * REPS, scalar);
    println!(
        "crc32 on {} B image: sliced {:.0} MB/s, scalar {:.0} MB/s ({:.2}x) {}",
        image.len(),
        image.len() as f64 * REPS as f64 / sliced.as_secs_f64() / 1e6,
        image.len() as f64 * REPS as f64 / scalar.as_secs_f64() / 1e6,
        scalar.as_secs_f64() / sliced.as_secs_f64().max(1e-12),
        if sliced < scalar { "OK" } else { "FAIL" }
    );

    // End-to-end submit throughput and at-rest compression ratio: the
    // same localized-update chain, published raw and compressed.
    let mut stored = [0usize; 2];
    let mut raw_bytes = 0usize;
    let mut elapsed = std::time::Duration::ZERO;
    for (which, codec) in [
        CodecConfig::default(),
        CodecConfig {
            at_rest: AtRest::Auto,
            ..Default::default()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let (engine, mem) = delta_engine_with(codec);
        let mut vars = vars.clone();
        let t0 = Instant::now();
        for epoch in 0..EPOCHS {
            if epoch > 0 {
                perturb_localized(&mut vars, epoch);
            }
            let t = engine.submit(&vars, &plans).unwrap();
            engine.wait(t).unwrap();
        }
        if which == 0 {
            elapsed = t0.elapsed();
            raw_bytes = image.len() * EPOCHS;
        }
        drop(engine);
        stored[which] = mem.total_bytes();
    }
    summary.set_bytes_per_sec("submit", raw_bytes, elapsed);
    summary.set_compression_ratio("at_rest", stored[0], stored[1]);
    println!(
        "delta chain ({EPOCHS} epochs): submit {:.0} MB/s; backend {} B raw vs {} B compressed \
         (ratio {:.3})",
        raw_bytes as f64 / elapsed.as_secs_f64() / 1e6,
        stored[0],
        stored[1],
        stored[1] as f64 / stored[0].max(1) as f64
    );
}

criterion_group!(benches, bench_delta_submit);

fn main() {
    benches();
    let mut summary = scrutiny_bench::BenchSummary::new("delta_submit");
    summary.absorb_criterion();
    delta_bytes_demo();
    throughput_summary(&mut summary);
    summary.write_and_report();
}
