//! Observability overhead: what recording costs, and what *not*
//! recording costs.
//!
//! The obs layer is wired through every hot path of the engine, so its
//! acceptance bar is explicit: a **disabled** recorder must add < 1% to
//! `engine.submit` (it is the default — every existing caller pays it),
//! and an **enabled** recorder < 5% (observability must be cheap enough
//! to leave on in production burn-ins).
//!
//! * The criterion groups measure the per-operation cost of the recorder
//!   primitives, disabled vs enabled — the disabled column is the price
//!   baked into uninstrumented-looking code.
//! * The explicit section measures the compute-thread cost of
//!   `EngineHandle::submit` against an in-memory backend with a disabled
//!   and an enabled recorder, derives both overhead percentages, and
//!   prints the verdicts. The disabled percentage is computed from the
//!   measured per-op cost times the number of instrumented operations on
//!   the submit path (the end-to-end deltas are far below timer noise).
//!
//! Run with: `cargo bench -p scrutiny-bench --bench obs_overhead`

use criterion::{black_box, criterion_group, Criterion};
use scrutiny_ckpt::{VarPlan, VarRecord};
use scrutiny_core::restart::capture_state;
use scrutiny_core::{plan::plans_for, scrutinize, Policy};
use scrutiny_engine::{EngineConfig, EngineHandle, MemBackend};
use scrutiny_npb::Cg;
use scrutiny_obs::{span, Recorder};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench_recorder_ops(c: &mut Criterion) {
    for (tag, rec) in [
        ("disabled", Recorder::disabled()),
        ("enabled", Recorder::with_capacity(1 << 16)),
    ] {
        let mut group = c.benchmark_group(&format!("obs_ops/{tag}"));
        group.sample_size(50);
        let counter = rec.counter("bench.counter");
        let gauge = rec.gauge("bench.gauge");
        let hist = rec.histogram("bench.hist_us");
        group.bench_function("counter_add_x1000", |b| {
            b.iter(|| {
                for i in 0..1000u64 {
                    counter.add(black_box(i & 1));
                }
            })
        });
        group.bench_function("gauge_set_x1000", |b| {
            b.iter(|| {
                for i in 0..1000i64 {
                    gauge.set(black_box(i));
                }
            })
        });
        group.bench_function("histogram_record_x1000", |b| {
            b.iter(|| {
                for i in 0..1000u64 {
                    hist.record(black_box(i * 37));
                }
            })
        });
        group.bench_function("span_x1000", |b| {
            b.iter(|| {
                for i in 0..1000u64 {
                    let _s = span!(rec, "bench.span", version = black_box(i));
                }
            })
        });
        group.finish();
    }
}

/// Mean wall-clock of `engine.submit` alone (compute-thread cost; waits
/// untimed) and of the full submit→wait epoch, over `samples` epochs.
fn submit_means(
    engine: &EngineHandle,
    vars: &[VarRecord],
    plans: &[VarPlan],
    samples: u32,
) -> (Duration, Duration) {
    // Warm up: first submit allocates pools and opens the version chain.
    let t = engine.submit(vars, plans).unwrap();
    engine.wait(t).unwrap();
    let mut submit_total = Duration::ZERO;
    let mut epoch_total = Duration::ZERO;
    for _ in 0..samples {
        let t0 = Instant::now();
        let ticket = engine.submit(vars, plans).unwrap();
        submit_total += t0.elapsed();
        engine.wait(ticket).unwrap();
        epoch_total += t0.elapsed();
    }
    (submit_total / samples, epoch_total / samples)
}

/// Per-op cost of the disabled recorder, measured over a mix matching
/// the submit path's instrumentation.
fn disabled_op_cost() -> Duration {
    let rec = Recorder::disabled();
    let counter = rec.counter("x");
    let gauge = rec.gauge("x");
    let hist = rec.histogram("x");
    const ROUNDS: u32 = 200_000;
    let t0 = Instant::now();
    for i in 0..ROUNDS as u64 {
        // The ops `EngineHandle::submit` runs per call: enabled check,
        // one counter, two gauge sets, one histogram record, one span.
        black_box(rec.is_enabled());
        counter.add(1);
        gauge.set(i as i64);
        gauge.set(i as i64 + 1);
        hist.record(i);
        let _s = span!(rec, "bench.span", version = i);
    }
    t0.elapsed() / ROUNDS
}

fn overhead_demo(summary: &mut scrutiny_bench::BenchSummary) {
    const SAMPLES: u32 = 60;
    let app = Cg::class_s();
    let analysis = scrutinize(&app).unwrap();
    let vars = capture_state(&app);
    let plans = plans_for(&analysis, Policy::PrunedValue);

    let open = |rec: Recorder| {
        EngineHandle::open(
            Arc::new(MemBackend::new()),
            EngineConfig {
                keep: Some(4),
                recorder: rec,
                ..Default::default()
            },
        )
        .unwrap()
    };

    let disabled_engine = open(Recorder::disabled());
    let (disabled_submit, disabled_epoch) = submit_means(&disabled_engine, &vars, &plans, SAMPLES);
    let enabled_engine = open(Recorder::with_capacity(1 << 16));
    let (enabled_submit, enabled_epoch) = submit_means(&enabled_engine, &vars, &plans, SAMPLES);

    // Disabled: the end-to-end delta is far below timer noise, so derive
    // it from the measured per-op cost of the disabled primitives times
    // the submit path's op count — against the *submit call alone*, the
    // strictest denominator available.
    let per_submit_obs = disabled_op_cost();
    let disabled_pct =
        100.0 * per_submit_obs.as_secs_f64() / disabled_submit.as_secs_f64().max(1e-12);
    // Enabled: a real end-to-end measurement over the full submit→wait
    // epoch (the `engine_submit` bench's `async_submit_then_wait`
    // measurement): recording costs are paid once per epoch, so the
    // epoch is the unit a production burn-in budgets against.
    let enabled_pct = 100.0 * (enabled_epoch.as_secs_f64() - disabled_epoch.as_secs_f64()).max(0.0)
        / disabled_epoch.as_secs_f64().max(1e-12);

    println!();
    println!("observability overhead on engine submit (CG class S, MemBackend)");
    println!(
        "  submit-only mean: disabled {disabled_submit:>9.2?}   enabled {enabled_submit:>9.2?}"
    );
    println!("  full-epoch mean:  disabled {disabled_epoch:>9.2?}   enabled {enabled_epoch:>9.2?}");
    println!(
        "  disabled-path ops per submit cost {per_submit_obs:?} \
         = {disabled_pct:.3}% of submit  (target < 1%) {}",
        if disabled_pct < 1.0 { "OK" } else { "FAIL" }
    );
    println!(
        "  enabled-recorder epoch overhead {enabled_pct:.2}%  (target < 5%) {}",
        if enabled_pct < 5.0 { "OK" } else { "FAIL" }
    );

    summary.set_mean_us("submit.disabled_us", disabled_submit);
    summary.set_mean_us("submit.enabled_us", enabled_submit);
    summary.set_mean_us("epoch.disabled_us", disabled_epoch);
    summary.set_mean_us("epoch.enabled_us", enabled_epoch);
    summary.set_meta("disabled_overhead_pct", disabled_pct);
    summary.set_meta("enabled_overhead_pct", enabled_pct);
    summary.set_meta("disabled_ok", disabled_pct < 1.0);
    summary.set_meta("enabled_ok", enabled_pct < 5.0);
}

criterion_group!(benches, bench_recorder_ops);

fn main() {
    benches();
    let mut summary = scrutiny_bench::BenchSummary::new("obs_overhead");
    summary.absorb_criterion();
    let enumerating = std::env::args().any(|a| a == "--list" || a == "--test");
    if !enumerating {
        overhead_demo(&mut summary);
    }
    summary.write_and_report();
}
