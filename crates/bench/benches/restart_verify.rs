//! §IV.C bench: prints the restart-verification line for BT class S and
//! times the full checkpoint→fail→restore→verify cycle.

use criterion::{criterion_group, Criterion};
use scrutiny_core::{checkpoint_restart_cycle, scrutinize, Policy, RestartConfig};
use scrutiny_npb::{Bt, Cg};

fn bench(c: &mut Criterion) {
    let bt = Bt::class_s();
    let analysis = scrutinize(&bt).unwrap();
    let cfg = RestartConfig {
        policy: Policy::PrunedValue,
        ..Default::default()
    };
    let r = checkpoint_restart_cycle(&bt, &analysis, &cfg).unwrap();
    println!(
        "\nBT class S restart: verified={} rel_err={:.2e} pruned={}B full={}B",
        r.verified,
        r.rel_err,
        r.storage.total(),
        r.full_storage.total()
    );

    let mut g = c.benchmark_group("restart_verify");
    g.sample_size(10);
    g.bench_function("bt_cycle", |b| {
        b.iter(|| checkpoint_restart_cycle(&bt, &analysis, &cfg).unwrap())
    });
    let cg = Cg::mini();
    let cg_analysis = scrutinize(&cg).unwrap();
    g.bench_function("cg_mini_cycle", |b| {
        b.iter(|| checkpoint_restart_cycle(&cg, &cg_analysis, &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    benches();
    let summary = scrutiny_bench::BenchSummary::new("restart_verify");
    summary.absorb_criterion();
    summary.write_and_report();
}
