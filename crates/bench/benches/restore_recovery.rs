//! Restore-side performance: parallel vs serial image reconstruction,
//! and the cost of a recovery scan across damaged versions.
//!
//! The write path's numbers live in `engine_submit`/`delta_submit`;
//! this bench is their §IV.C mirror. It builds realistic layouts from
//! an NPB FT snapshot (the large complex-typed state that stresses
//! sharding hardest):
//!
//! * `restore/*` — reconstruct one sharded checkpoint image, serial
//!   reader (`read_data_image`) vs the parallel pipeline
//!   (`read_data_image_parallel`) at 2 and 4 threads. On a single-core
//!   container the parallel rows measure pure pipeline overhead; on
//!   real cores they report the speedup.
//! * `recovery_scan/*` — `RecoveryManager::recover_latest` over a
//!   backend whose newest versions are damaged: the price of walking
//!   back `k` corrupt versions before finding an intact one.
//!
//! Run with: `cargo bench -p scrutiny-bench --bench restore_recovery`

use criterion::{black_box, criterion_group, Criterion};
use scrutiny_ckpt::delta::read_data_image;
use scrutiny_ckpt::restore::{read_data_image_parallel, RestoreOptions};
use scrutiny_core::restart::capture_state;
use scrutiny_core::{plan::plans_for, scrutinize, Policy};
use scrutiny_engine::{
    EngineConfig, EngineHandle, Layout, MemBackend, RecoveryConfig, RecoveryManager, StorageBackend,
};
use scrutiny_faultinj::StorageScenario;
use scrutiny_npb::{perturb_localized, Ft};
use std::sync::Arc;

/// A backend holding `epochs` sharded FT checkpoints.
fn sharded_backend(epochs: usize) -> Arc<MemBackend> {
    sharded_backend_with(epochs, scrutiny_ckpt::CodecConfig::default())
}

fn sharded_backend_with(epochs: usize, codec: scrutiny_ckpt::CodecConfig) -> Arc<MemBackend> {
    let app = Ft::class_s();
    let analysis = scrutinize(&app).unwrap();
    let mut vars = capture_state(&app);
    let plans = plans_for(&analysis, Policy::PrunedValue);
    let mem = Arc::new(MemBackend::new());
    let engine = EngineHandle::open(
        mem.clone(),
        EngineConfig {
            workers: 4,
            target_shards: 8,
            layout: Layout::Sharded,
            codec,
            ..Default::default()
        },
    )
    .unwrap();
    for epoch in 0..epochs {
        if epoch > 0 {
            perturb_localized(&mut vars, epoch);
        }
        let t = engine.submit(&vars, &plans).unwrap();
        engine.wait(t).unwrap();
    }
    mem
}

fn bench_restore(c: &mut Criterion) {
    let mem = sharded_backend(1);
    let fetch = |name: &str| mem.get(name);
    let mut g = c.benchmark_group("restore");
    g.sample_size(20);
    g.bench_function("serial", |b| {
        b.iter(|| black_box(read_data_image(0, fetch).unwrap()))
    });
    for threads in [2usize, 4] {
        g.bench_function(&format!("parallel_{threads}"), |b| {
            b.iter(|| {
                black_box(read_data_image_parallel(0, &fetch, &RestoreOptions { threads }).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_recovery_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_scan");
    g.sample_size(10);
    for corrupt in [0usize, 1, 3] {
        // 5 epochs; damage the newest `corrupt` of them, so every
        // recover_latest walks back `corrupt` rejections. The scan only
        // reads, so injecting once outside the timing loop is sound.
        let mem = sharded_backend(5);
        for v in (5 - corrupt as u64)..5 {
            StorageScenario::TruncatedShard
                .inject(mem.as_ref(), v)
                .unwrap();
        }
        let mgr = RecoveryManager::new(mem, RecoveryConfig::default());
        g.bench_function(&format!("fallback_depth_{corrupt}"), |b| {
            b.iter(|| {
                let r = mgr.recover_latest().unwrap();
                assert_eq!(r.report.rejected.len(), corrupt);
                black_box(r.version)
            })
        });
    }
    g.finish();
}

/// Headline numbers printed after the criterion groups: measured
/// parallel-vs-serial restore ratio (also recorded as the canonical
/// `restore.*.bytes_per_sec` meta fields, in reconstructed image bytes
/// per second), the at-rest footprint ratio of the same checkpoint
/// published compressed (`at_rest.compression_ratio`), and the restore
/// rate through the decompression path.
fn restore_summary(summary: &mut scrutiny_bench::BenchSummary) {
    use std::time::Instant;
    let mem = sharded_backend(1);
    let fetch = |name: &str| mem.get(name);
    const REPS: u32 = 20;

    let t0 = Instant::now();
    let mut image_bytes = 0usize;
    for _ in 0..REPS {
        image_bytes = black_box(read_data_image(0, fetch).unwrap()).len();
    }
    let serial = t0.elapsed() / REPS;
    summary.set_bytes_per_sec("restore.serial", image_bytes, serial);

    println!("\nFT class S sharded restore (image reconstruction + CRC verify):");
    println!("  serial      {serial:>10.1?}");
    for threads in [2usize, 4] {
        let t0 = Instant::now();
        for _ in 0..REPS {
            black_box(read_data_image_parallel(0, &fetch, &RestoreOptions { threads }).unwrap());
        }
        let par = t0.elapsed() / REPS;
        summary.set_bytes_per_sec(&format!("restore.parallel_{threads}"), image_bytes, par);
        println!(
            "  parallel x{threads} {par:>10.1?}   ({:.2}x vs serial)",
            serial.as_secs_f64() / par.as_secs_f64().max(1e-12)
        );
    }

    // The same checkpoint published with the SCRUTCZB at-rest codec:
    // footprint ratio, plus restore throughput through the decode path
    // (the image that comes back is bit-identical either way).
    let raw_total = mem.total_bytes();
    let zmem = sharded_backend_with(
        1,
        scrutiny_ckpt::CodecConfig {
            at_rest: scrutiny_ckpt::AtRest::Auto,
            ..Default::default()
        },
    );
    let zfetch = |name: &str| zmem.get(name);
    let t0 = Instant::now();
    for _ in 0..REPS {
        let img = black_box(
            read_data_image_parallel(0, &zfetch, &RestoreOptions { threads: 4 }).unwrap(),
        )
        .0;
        assert_eq!(img.len(), image_bytes, "compressed restore must match");
    }
    let zpar = t0.elapsed() / REPS;
    summary.set_bytes_per_sec("restore.compressed_parallel_4", image_bytes, zpar);
    summary.set_compression_ratio("at_rest", raw_total, zmem.total_bytes());
    println!(
        "  compressed x4 {zpar:>8.1?}   (backend {} B raw vs {} B compressed, ratio {:.3})",
        raw_total,
        zmem.total_bytes(),
        zmem.total_bytes() as f64 / raw_total.max(1) as f64
    );
}

criterion_group!(benches, bench_restore, bench_recovery_scan);

fn main() {
    benches();
    let mut summary = scrutiny_bench::BenchSummary::new("restore_recovery");
    summary.absorb_criterion();
    restore_summary(&mut summary);
    summary.write_and_report();
}
