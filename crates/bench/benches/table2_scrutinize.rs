//! Table II bench: regenerates the uncritical-element rows (class S,
//! FFT-free subset for speed; `gen_table2` covers all six), then times
//! the scrutinizer on representative instances.

use criterion::{criterion_group, Criterion};
use scrutiny_core::{format_table2, scrutinize, table2_rows, ScrutinyApp};
use scrutiny_npb::{Bt, Cg, Lu, Mg, Sp};

fn print_table2() {
    let apps: Vec<Box<dyn ScrutinyApp>> = vec![
        Box::new(Bt::class_s()),
        Box::new(Sp::class_s()),
        Box::new(Mg::class_s()),
        Box::new(Cg::class_s()),
        Box::new(Lu::class_s()),
    ];
    let mut rows = Vec::new();
    for app in &apps {
        rows.extend(table2_rows(&scrutinize(app.as_ref()).unwrap()));
    }
    println!("\n{}", format_table2(&rows));
}

fn bench(c: &mut Criterion) {
    print_table2();
    let mut g = c.benchmark_group("table2_scrutinize");
    g.sample_size(10);
    g.bench_function("bt_class_s", |b| b.iter(|| scrutinize(&Bt::class_s())));
    g.bench_function("cg_mini", |b| b.iter(|| scrutinize(&Cg::mini())));
    g.bench_function("mg_mini", |b| b.iter(|| scrutinize(&Mg::mini())));
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    benches();
    let summary = scrutiny_bench::BenchSummary::new("table2_scrutinize");
    summary.absorb_criterion();
    summary.write_and_report();
}
