//! Machine-readable bench results: `BENCH_<name>.json` summaries.
//!
//! Criterion printouts vanish with the terminal; the paper's
//! quantitative claims need a perf trajectory that survives across PRs.
//! Every bench harness builds a [`BenchSummary`], records its headline
//! measurements into the embedded [`Recorder`] (histograms for timed
//! samples, gauges for sizes/counts, meta fields for ratios and
//! pass/fail verdicts), and ends with [`BenchSummary::write`] — one
//! `BENCH_<name>.json` file per harness, in the single-object form of
//! [`scrutiny_obs::Snapshot::to_json`].
//!
//! The output directory is `$SCRUTINY_BENCH_DIR` when set (CI points it
//! at an artifact path), the current directory otherwise.

use scrutiny_obs::{FieldValue, Recorder};
use std::path::PathBuf;
use std::time::Duration;

/// Env var naming the directory `BENCH_<name>.json` files land in.
pub const BENCH_DIR_ENV: &str = "SCRUTINY_BENCH_DIR";

/// One bench harness's machine-readable result file in the making.
#[derive(Debug)]
pub struct BenchSummary {
    name: String,
    rec: Recorder,
    meta: Vec<(String, FieldValue)>,
}

impl BenchSummary {
    /// A summary for the harness `name` (lower_snake; becomes the
    /// `BENCH_<name>.json` filename and the `bench` meta field).
    pub fn new(name: &str) -> BenchSummary {
        BenchSummary {
            name: name.to_string(),
            rec: Recorder::with_capacity(8192),
            meta: Vec::new(),
        }
    }

    /// The recorder measurements land in — pass it to observed APIs, or
    /// record into it directly.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Record one timed sample into the `metric` histogram (µs buckets).
    pub fn record_duration(&self, metric: &str, d: Duration) {
        self.rec
            .histogram(metric)
            .record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record a mean duration as a `<metric>` gauge in µs — for
    /// already-aggregated measurements where per-sample buckets would
    /// mislead.
    pub fn set_mean_us(&self, metric: &str, d: Duration) {
        self.rec
            .set_gauge(metric, d.as_micros().min(i64::MAX as u128) as i64);
    }

    /// Record a size/count gauge.
    pub fn set_value(&self, metric: &str, v: i64) {
        self.rec.set_gauge(metric, v);
    }

    /// Attach a top-level meta field (a ratio, a verdict, an instance
    /// label) to the summary object.
    pub fn set_meta(&mut self, key: &str, value: impl Into<FieldValue>) {
        self.meta.push((key.to_string(), value.into()));
    }

    /// Attach the canonical `<prefix>.bytes_per_sec` throughput meta
    /// field: `bytes` processed end to end in `elapsed`. The shared name
    /// is what lets cross-PR tooling compare hot paths without
    /// per-bench glue; a zero elapsed records 0 rather than infinity.
    pub fn set_bytes_per_sec(&mut self, prefix: &str, bytes: usize, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let rate = if secs > 0.0 { bytes as f64 / secs } else { 0.0 };
        self.set_meta(&format!("{prefix}.bytes_per_sec"), rate);
    }

    /// Attach the canonical `<prefix>.compression_ratio` meta field:
    /// stored bytes over raw bytes (1.0 = no shrink, smaller = better).
    /// A zero raw size records 1.0 — an empty input was not compressed.
    pub fn set_compression_ratio(&mut self, prefix: &str, raw: usize, stored: usize) {
        let ratio = if raw > 0 {
            stored as f64 / raw as f64
        } else {
            1.0
        };
        self.set_meta(&format!("{prefix}.compression_ratio"), ratio);
    }

    /// Where [`BenchSummary::write`] will put the file.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var_os(BENCH_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Serialize the summary (snapshot + meta fields) to
    /// `BENCH_<name>.json` and return the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let mut meta: Vec<(&str, FieldValue)> = vec![("bench", FieldValue::Str(self.name.clone()))];
        for (k, v) in &self.meta {
            meta.push((k.as_str(), v.clone()));
        }
        let path = self.path();
        std::fs::write(&path, self.rec.snapshot().to_json(&meta))?;
        Ok(path)
    }

    /// Drain the criterion shim's recorded samples
    /// ([`criterion::take_results`]) into per-benchmark histograms: the
    /// id `group/function` becomes the dotted metric name
    /// ([`metric_name_of`]), each timed sample one µs histogram entry.
    /// Call after the `criterion_group!` functions have run.
    pub fn absorb_criterion(&self) {
        for result in criterion::take_results() {
            let metric = metric_name_of(&result.id);
            for t in &result.timings {
                self.record_duration(&metric, *t);
            }
        }
    }

    /// [`BenchSummary::write`], reporting the outcome on stdout instead
    /// of failing the harness: a read-only checkout must not abort a
    /// bench run over its summary file.
    pub fn write_and_report(&self) {
        match self.write() {
            Ok(path) => println!("bench summary: {}", path.display()),
            Err(e) => println!("bench summary NOT written ({}): {e}", self.path().display()),
        }
    }
}

/// Criterion benchmark id → obs metric name: `/` becomes the segment
/// dot, everything else lowercases, and characters outside `[a-z0-9_]`
/// fold to `_`; a segment that would start with a digit or underscore
/// gains a `b` prefix so the result satisfies the documented naming
/// scheme (`docs/OBSERVABILITY.md`).
pub fn metric_name_of(id: &str) -> String {
    let mut out = String::with_capacity(id.len());
    for (i, raw) in id.split('/').enumerate() {
        if i > 0 {
            out.push('.');
        }
        let mut segment = String::with_capacity(raw.len() + 1);
        for ch in raw.chars() {
            let ch = ch.to_ascii_lowercase();
            segment.push(
                if ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_' {
                    ch
                } else {
                    '_'
                },
            );
        }
        if !segment
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase())
        {
            segment.insert(0, 'b');
        }
        out.push_str(&segment);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_writes_single_object_json_with_meta() {
        let dir = std::env::temp_dir().join(format!("scrutiny_bench_sum_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Env vars are process-global; serialize access through a scope
        // that restores the prior state.
        let prev = std::env::var_os(BENCH_DIR_ENV);
        std::env::set_var(BENCH_DIR_ENV, &dir);

        let mut s = BenchSummary::new("unit_test");
        s.record_duration("demo.op_us", Duration::from_micros(120));
        s.set_value("demo.bytes", 4096);
        s.set_meta("ratio_pct", 3.5f64);
        let path = s.write().unwrap();

        match prev {
            Some(v) => std::env::set_var(BENCH_DIR_ENV, v),
            None => std::env::remove_var(BENCH_DIR_ENV),
        }

        assert_eq!(path, dir.join("BENCH_unit_test.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let obj = scrutiny_obs::json::parse(&text).unwrap();
        let meta = obj.get("meta").unwrap();
        assert_eq!(
            meta.get("bench").and_then(|j| j.as_str()),
            Some("unit_test")
        );
        assert_eq!(meta.get("ratio_pct").and_then(|j| j.as_f64()), Some(3.5));
        assert!(obj.get("histograms").unwrap().get("demo.op_us").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn criterion_ids_become_valid_metric_names() {
        assert_eq!(
            metric_name_of("engine_submit/BT/blocking_save"),
            "engine_submit.bt.blocking_save"
        );
        assert_eq!(metric_name_of("table2/CG class-S"), "table2.cg_class_s");
        assert_eq!(metric_name_of("2d/0ap"), "b2d.b0ap");
        for id in [
            "engine_submit/BT/blocking_save",
            "table2/CG class-S",
            "2d/0ap",
        ] {
            let name = metric_name_of(id);
            assert!(scrutiny_obs::schema::valid_name(&name), "{name}");
        }
    }
}
