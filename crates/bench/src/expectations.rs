//! The paper's published numbers (Tables II and III), used by the
//! harness binaries and integration tests to report paper-vs-measured.

/// One expected Table II row.
#[derive(Clone, Copy, Debug)]
pub struct Expected2 {
    /// `Benchmark(variable)` label as printed by the paper.
    pub label: &'static str,
    /// Benchmark name.
    pub bench: &'static str,
    /// Variable name.
    pub var: &'static str,
    /// Paper's uncritical element count.
    pub uncritical: usize,
    /// Paper's total element count.
    pub total: usize,
}

/// Table II as published. Note: the paper's `LU(rho_i)` and `LU(rsd)`
/// rows are swapped relative to the variables' sizes (`rho_i` has 2028
/// elements, `rsd` 10140); the entries below carry the size-consistent
/// assignment, which also matches the paper's own Table III arithmetic.
pub const TABLE2: &[Expected2] = &[
    Expected2 {
        label: "BT(u)",
        bench: "BT",
        var: "u",
        uncritical: 1_500,
        total: 10_140,
    },
    Expected2 {
        label: "SP(u)",
        bench: "SP",
        var: "u",
        uncritical: 1_500,
        total: 10_140,
    },
    Expected2 {
        label: "MG(u)",
        bench: "MG",
        var: "u",
        uncritical: 7_176,
        total: 46_480,
    },
    Expected2 {
        label: "MG(r)",
        bench: "MG",
        var: "r",
        uncritical: 10_543,
        total: 46_480,
    },
    Expected2 {
        label: "CG(x)",
        bench: "CG",
        var: "x",
        uncritical: 2,
        total: 1_402,
    },
    Expected2 {
        label: "LU(qs)",
        bench: "LU",
        var: "qs",
        uncritical: 300,
        total: 2_028,
    },
    Expected2 {
        label: "LU(rho_i)",
        bench: "LU",
        var: "rho_i",
        uncritical: 300,
        total: 2_028,
    },
    Expected2 {
        label: "LU(rsd)",
        bench: "LU",
        var: "rsd",
        uncritical: 1_500,
        total: 10_140,
    },
    Expected2 {
        label: "LU(u)",
        bench: "LU",
        var: "u",
        uncritical: 1_628,
        total: 10_140,
    },
    Expected2 {
        label: "FT(y)",
        bench: "FT",
        var: "y",
        uncritical: 4_096,
        total: 266_240,
    },
];

/// One expected Table III row (kb as printed by the paper).
#[derive(Clone, Copy, Debug)]
pub struct Expected3 {
    /// Benchmark name.
    pub bench: &'static str,
    /// Paper's "Original" storage.
    pub original_kb: f64,
    /// Paper's "Optimized" storage.
    pub optimized_kb: f64,
    /// Paper's "Storage saved" percentage.
    pub saved_pct: f64,
}

/// Table III as published.
pub const TABLE3: &[Expected3] = &[
    Expected3 {
        bench: "BT",
        original_kb: 79.4,
        optimized_kb: 67.7,
        saved_pct: 14.8,
    },
    Expected3 {
        bench: "SP",
        original_kb: 79.4,
        optimized_kb: 67.7,
        saved_pct: 14.8,
    },
    Expected3 {
        bench: "MG",
        original_kb: 727.0,
        optimized_kb: 588.0,
        saved_pct: 19.1,
    },
    Expected3 {
        bench: "CG",
        original_kb: 10.9,
        optimized_kb: 10.9,
        saved_pct: 0.1,
    },
    Expected3 {
        bench: "LU",
        original_kb: 191.0,
        optimized_kb: 161.0,
        saved_pct: 15.7,
    },
    Expected3 {
        bench: "FT",
        original_kb: 4161.0,
        optimized_kb: 4097.0,
        saved_pct: 1.0,
    },
];

/// Look up the Table II expectation for a benchmark/variable pair.
pub fn expected2(bench: &str, var: &str) -> Option<&'static Expected2> {
    TABLE2.iter().find(|e| e.bench == bench && e.var == var)
}

/// Look up the Table III expectation for a benchmark.
pub fn expected3(bench: &str) -> Option<&'static Expected3> {
    TABLE3.iter().find(|e| e.bench == bench)
}
