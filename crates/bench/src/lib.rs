//! # scrutiny-bench — experiment harness
//!
//! Binaries and criterion benches that regenerate every table and figure
//! of the paper; see DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.

pub mod expectations;
pub mod summary;

pub use summary::{BenchSummary, BENCH_DIR_ENV};
