//! Extension A2 (paper §VII future work): precision-tiered checkpoints.
//! Elements with small |∂output/∂element| are stored as f32; the sweep
//! shows the storage/accuracy trade-off.

use scrutiny_core::ScrutinyApp;
use scrutiny_core::{checkpoint_restart_cycle, scrutinize, Policy, RestartConfig};
use scrutiny_npb::{Bt, Cg, Mg};

fn main() {
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>14}",
        "Bench", "threshold", "payload kb", "vs full", "restart relerr"
    );
    let apps: Vec<Box<dyn ScrutinyApp>> = vec![
        Box::new(Bt::class_s()),
        Box::new(Mg::class_s()),
        Box::new(Cg::class_s()),
    ];
    for app in &apps {
        let analysis = scrutinize(app.as_ref()).unwrap();
        // Thresholds from the gradient-magnitude distribution.
        let mut mags: Vec<f64> = analysis
            .vars
            .iter()
            .flat_map(|v| v.grad_mag.iter().copied())
            .filter(|&g| g.is_finite() && g > 0.0)
            .collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| mags[((mags.len() - 1) as f64 * p) as usize];
        for (label, tau) in [
            ("p0 (all f64)", 0.0),
            ("p50", pct(0.5)),
            ("p90", pct(0.9)),
            ("p100 (all f32)", f64::INFINITY),
        ] {
            let policy = if tau == 0.0 {
                Policy::PrunedValue
            } else if tau.is_infinite() {
                Policy::Tiered {
                    hi_threshold: f64::MAX,
                }
            } else {
                Policy::Tiered { hi_threshold: tau }
            };
            let cfg = RestartConfig {
                policy,
                ..Default::default()
            };
            let r =
                checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).expect("in-memory cycle");
            println!(
                "{:<6} {:>12} {:>10.1}kb {:>11.1}% {:>14.2e}",
                analysis.app.name,
                label,
                r.storage.payload_bytes as f64 / 1024.0,
                100.0 * r.storage.payload_bytes as f64 / r.full_storage.payload_bytes as f64,
                r.rel_err,
            );
        }
    }
}
