//! Ablation A1: value-gradient criticality (the paper's criterion) vs
//! structural reachability vs liveness tracking — agreement, disagreement
//! and what each costs.

use scrutiny_core::scrutinize;
use scrutiny_npb::is::IsSite;
use scrutiny_npb::{ad_suite, Is};

fn main() {
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>14}",
        "Variable", "total", "unc(value)", "unc(structural)", "cancel-only"
    );
    for app in ad_suite() {
        let report = scrutinize(app.as_ref()).unwrap();
        for v in &report.vars {
            if v.total() <= 1 {
                continue;
            }
            let cancel = v.cancellation_only().len();
            println!(
                "{:<12} {:>10} {:>12} {:>14} {:>14}",
                format!("{}({})", report.app.name, v.spec.name),
                v.total(),
                v.uncritical(),
                v.structural_map.count_zeros(),
                cancel,
            );
        }
    }
    // Liveness on the integer benchmark.
    let is = Is::class_s();
    let out = is.run(IsSite::Track);
    for r in &out.reports {
        println!(
            "{:<12} {:>10} {:>12} {:>14} {:>14}",
            format!("IS({})", r.name),
            r.critical.len(),
            "-",
            r.uncritical(),
            "-"
        );
    }
    println!("\n`cancel-only` elements are structurally reachable but have an exactly");
    println!("zero derivative; dropping them is unsafe under large perturbations —");
    println!("the reason our restore plans follow the read-participation structure.");
}
