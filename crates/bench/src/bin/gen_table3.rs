//! Regenerates the paper's Table III: checkpoint storage before/after
//! pruning uncritical elements, with paper-vs-measured columns.

use scrutiny_bench::expectations::expected3;
use scrutiny_core::restart::capture_state;
use scrutiny_core::{scrutinize, table3_row};
use scrutiny_npb::table2_suite;

fn main() {
    println!("Table III: checkpointing storage (class S)");
    println!(
        "{:<6} {:>11} {:>11} {:>8} {:>9} {:>12} {:>12}",
        "Bench", "Original", "Optimized", "Saved", "Aux", "Paper orig", "Paper opt"
    );
    let mut avg = 0.0;
    let mut max: f64 = 0.0;
    let mut n = 0usize;
    for app in table2_suite() {
        let report = scrutinize(app.as_ref()).unwrap();
        let captured = capture_state(app.as_ref());
        let row = table3_row(&report, &captured).expect("serialization cannot fail in memory");
        let paper = expected3(&row.bench);
        println!(
            "{:<6} {:>9.1}kb {:>9.1}kb {:>7.1}% {:>7.2}kb {:>10}kb {:>10}kb",
            row.bench,
            row.original_kib,
            row.optimized_kib,
            row.saved_pct(),
            row.aux_kib,
            paper.map_or("-".into(), |e| format!("{:.1}", e.original_kb)),
            paper.map_or("-".into(), |e| format!("{:.1}", e.optimized_kb)),
        );
        avg += row.saved_pct();
        max = max.max(row.saved_pct());
        n += 1;
    }
    avg /= n as f64;
    println!("\naverage storage saved: {avg:.1}% (paper: ~13%), max: {max:.1}% (paper: up to 20%)");
}
