//! Regenerates the paper's Figures 3-8: criticality distributions as
//! ASCII (stdout), PGM and SVG files under experiments/out/.

use scrutiny_core::scrutinize;
use scrutiny_npb::{Bt, Cg, Ft, Lu, Mg};
use scrutiny_viz::ascii::component_slice;
use scrutiny_viz::{
    detect_periodicity, detect_planes, runlength_chart, runlength_svg, slice_ascii, slice_pgm,
    volume_montage_pgm,
};
use std::fs;
use std::path::Path;

fn main() {
    let out = Path::new("experiments/out");
    fs::create_dir_all(out).expect("cannot create experiments/out");

    // ---- Figure 3: BT u (one of the five identical component cubes) ----
    let bt = scrutinize(&Bt::class_s()).unwrap();
    let u = bt.var("u").unwrap();
    let (cube, dims) = component_slice(&u.value_map, [12, 13, 13, 5], 0);
    println!("Figure 3 — BT u[..][0], slice k=6 (# critical, . uncritical):");
    print!("{}", slice_ascii(&cube, dims, 0, 6));
    let planes = detect_planes(&cube, dims);
    println!("dead planes detected: {planes:?} (paper: surfaces y=12 and z=12)\n");
    fs::write(
        out.join("fig3_bt_u.pgm"),
        volume_montage_pgm(&cube, dims, 4, 8),
    )
    .unwrap();

    // ---- Figures 4 & 5: MG u and r run-length layouts -----------------
    let mg = scrutinize(&Mg::class_s()).unwrap();
    let mg_u = mg.var("u").unwrap();
    println!("Figure 4 — MG u run-length layout:");
    print!("{}", runlength_chart(&mg_u.value_map, 72));
    fs::write(
        out.join("fig4_mg_u.svg"),
        runlength_svg(&mg_u.value_map, 720, 32),
    )
    .unwrap();

    let mg_r = mg.var("r").unwrap();
    println!("\nFigure 5 — MG r run-length layout (repetitive pattern):");
    print!("{}", runlength_chart(&mg_r.value_map, 72));
    // The finest level is 34^3; the repetition is the padded row length.
    let fine = scrutiny_core::Bitmap::from_fn(34 * 34 * 34, |i| mg_r.value_map.get(i));
    match detect_periodicity(&fine, 64, 0.90) {
        Some(p) => println!(
            "periodicity on the finest level: {} elements ({:.1}% self-match; paper: 34-element rows)",
            p.period,
            100.0 * p.fraction
        ),
        None => println!("no periodicity detected (unexpected)"),
    }
    fs::write(
        out.join("fig5_mg_r.svg"),
        runlength_svg(&mg_r.value_map, 720, 32),
    )
    .unwrap();

    // ---- Figure 6: CG x -----------------------------------------------
    let cg = scrutinize(&Cg::class_s()).unwrap();
    let x = cg.var("x").unwrap();
    println!("\nFigure 6 — CG x run-length layout:");
    print!("{}", runlength_chart(&x.value_map, 72));
    fs::write(
        out.join("fig6_cg_x.svg"),
        runlength_svg(&x.value_map, 720, 32),
    )
    .unwrap();

    // ---- Figure 7: LU u[..][4] ------------------------------------------
    let lu = scrutinize(&Lu::class_s()).unwrap();
    let lu_u = lu.var("u").unwrap();
    let (cube4, dims4) = component_slice(&lu_u.value_map, [12, 13, 13, 5], 4);
    println!("\nFigure 7 — LU u[..][4], slices k=0 and k=6:");
    print!("{}", slice_ascii(&cube4, dims4, 0, 0));
    println!();
    print!("{}", slice_ascii(&cube4, dims4, 0, 6));
    println!(
        "(k=0: only the j,i-interior square is critical — the z-direction flux slab;\n k=6: full Fig. 3 cross section)"
    );
    fs::write(
        out.join("fig7_lu_u4.pgm"),
        volume_montage_pgm(&cube4, dims4, 4, 8),
    )
    .unwrap();

    // ---- Figure 8: FT y --------------------------------------------------
    let ft = scrutinize(&Ft::class_s()).unwrap();
    let y = ft.var("y").unwrap();
    let planes = detect_planes(&y.value_map, [64, 64, 65]);
    println!("\nFigure 8 — FT y: dead planes {planes:?} (paper: the padding layer at index 64)");
    fs::write(
        out.join("fig8_ft_y.pgm"),
        slice_pgm(&y.value_map, [64, 64, 65], 0, 0, 4),
    )
    .unwrap();

    println!("\nimages written to {}", out.display());
}
