//! Regenerates the paper's Table I: variables necessary for checkpointing.

use scrutiny_core::format_table1;
use scrutiny_npb::{ad_suite, Is};

fn main() {
    let mut specs: Vec<_> = ad_suite().iter().map(|a| a.spec()).collect();
    // IS is integer-only; list its Table I row explicitly.
    let is = Is::class_s();
    specs.push(scrutiny_core::AppSpec {
        name: "IS".into(),
        class: "S".into(),
        vars: vec![
            scrutiny_core::VarSpec::int_scalar("passed_verification"),
            scrutiny_core::VarSpec::i64("key_array", &[is.total_keys]),
            scrutiny_core::VarSpec::i64("bucket_ptrs", &[is.buckets]),
            scrutiny_core::VarSpec::int_scalar("iteration"),
        ],
    });
    print!("{}", format_table1(&specs));
}
