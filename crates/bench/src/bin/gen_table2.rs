//! Regenerates the paper's Table II: uncritical element counts per
//! checkpoint variable, class S, with paper-vs-measured deltas.

use scrutiny_bench::expectations::expected2;
use scrutiny_core::{scrutinize, table2_rows};
use scrutiny_npb::table2_suite;

fn main() {
    println!("Table II: number of uncritical elements (class S)");
    println!(
        "{:<16} {:>10} {:>8} {:>9} {:>12} {:>8}",
        "Benchmark(var)", "Uncritical", "Total", "Rate", "Paper", "Match"
    );
    let mut all_match = true;
    for app in table2_suite() {
        let t0 = std::time::Instant::now();
        let report = scrutinize(app.as_ref()).unwrap();
        let secs = t0.elapsed().as_secs_f64();
        for (row, var) in table2_rows(&report).iter().zip(
            report
                .vars
                .iter()
                .filter(|v| v.spec.dtype != scrutiny_core::DType::I64 && v.total() > 1),
        ) {
            let paper = expected2(&report.app.name, &var.spec.name);
            let (paper_str, matched) = match paper {
                Some(e) => (
                    format!("{}", e.uncritical),
                    e.uncritical == row.uncritical && e.total == row.total,
                ),
                None => ("-".to_string(), true),
            };
            all_match &= matched;
            println!(
                "{:<16} {:>10} {:>8} {:>8.1}% {:>12} {:>8}",
                row.label,
                row.uncritical,
                row.total,
                row.rate_pct(),
                paper_str,
                if matched { "yes" } else { "NO" }
            );
        }
        eprintln!(
            "  [{}: tape {} nodes ({:.1} MB), analysis {:.2}s]",
            report.app.name,
            report.tape_stats.nodes,
            report.tape_stats.bytes as f64 / 1e6,
            secs
        );
    }
    println!(
        "\nall rows match the paper: {}",
        if all_match { "YES" } else { "NO" }
    );
}
