//! The paper's §IV.C experiment: restart every benchmark from a pruned
//! checkpoint (uncritical holes filled with garbage) and require its
//! verification to pass; then fault-inject to show uncritical corruption
//! is harmless while critical corruption is caught.

use scrutiny_core::{checkpoint_restart_cycle, scrutinize, FillPolicy, Policy, RestartConfig};
use scrutiny_faultinj::{run_campaign, CampaignConfig, Corruption, Target};
use scrutiny_npb::is::IsSite;
use scrutiny_npb::{ad_suite, Is};

fn main() {
    println!(
        "{:<6} {:>9} {:>12} {:>12} {:>10} {:>13} {:>13}",
        "Bench", "verified", "rel err", "pruned kb", "full kb", "inj-unc pass", "inj-crit fail"
    );
    let dir = std::env::temp_dir().join(format!("scrutiny_verify_{}", std::process::id()));
    for app in ad_suite() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            fill: FillPolicy::Garbage(0xDEAD),
            store_dir: Some(dir.clone()),
        };
        let r =
            checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).expect("checkpoint I/O failed");
        let unc = run_campaign(
            app.as_ref(),
            &analysis,
            &CampaignConfig {
                trials: 3,
                ..Default::default()
            },
        );
        let crit = run_campaign(
            app.as_ref(),
            &analysis,
            &CampaignConfig {
                target: Target::Critical,
                corruption: Corruption::Poison(1e12),
                trials: 3,
                ..Default::default()
            },
        );
        println!(
            "{:<6} {:>9} {:>12.2e} {:>10.1}kb {:>8.1}kb {:>10}/{:<2} {:>10}/{:<2}",
            analysis.app.name,
            r.verified,
            r.rel_err,
            r.storage.total_kib(),
            r.full_storage.total_kib(),
            unc.verified,
            unc.trials(),
            crit.failed,
            crit.trials(),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    // IS: integer benchmark, validated through the liveness machinery.
    let is = Is::class_s();
    let golden = is.run(IsSite::Noop);
    let mut captured = Vec::new();
    is.run(IsSite::Capture(&mut captured));
    captured[1].iter_mut().for_each(|v| *v = -1); // dead bucket_ptrs
    let restarted = is.run(IsSite::Restore(&captured));
    println!(
        "IS     {:>9} (passed_verification {} == {})",
        restarted.passed_verification == golden.passed_verification,
        restarted.passed_verification,
        golden.passed_verification
    );
}
