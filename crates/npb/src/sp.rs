//! SP — Scalar Pentadiagonal ADI solver (NPB class S: 12³ grid,
//! 100 steps).
//!
//! Checkpoint variables (paper Table I): `double u[12][13][13][5]`,
//! `int step` — the same as BT, and the paper finds the *identical*
//! critical/uncritical distribution (Fig. 3): `error_norm` in `error.c`
//! is shared between the two benchmarks. This port mirrors that: the
//! state layout, loop bounds and `error_norm` are common (`pde`), while
//! the implicit step solves scalar pentadiagonal systems per component
//! (the factored fourth-order operator), SP's signature.

use crate::common::Arr4;
use crate::pde::{blend_init, error_norm, ExactSolution, Mat5, PentaSolver, GP, GP1, NCOMP};
use scrutiny_ad::{Adj, Real};
use scrutiny_core::{AppSpec, CkptSite, RunOutcome, ScrutinyApp, VarRefMut, VarSpec};

/// The SP benchmark.
pub struct Sp {
    /// Time steps (`niter`; 100 at class S).
    pub niter: usize,
    /// Step index at whose boundary the checkpoint is taken (1-based).
    pub ckpt_at: usize,
    dt: f64,
    nu: f64,
    coupling: Mat5,
    forcing: Arr4<f64>,
    penta: PentaSolver,
    exact: ExactSolution,
}

impl Sp {
    /// Class S: 100 steps; analysis checkpoint near the end.
    pub fn class_s() -> Self {
        Self::new(100, 98)
    }

    /// Reduced step count for fast tests (state size is class S).
    pub fn mini() -> Self {
        Self::new(8, 4)
    }

    /// General constructor.
    pub fn new(niter: usize, ckpt_at: usize) -> Self {
        assert!(
            ckpt_at >= 1 && ckpt_at <= niter,
            "checkpoint must fall inside the main loop"
        );
        let dt = 0.28;
        let nu = 0.35;
        let mut coupling = [[0.0; NCOMP]; NCOMP];
        for (i, row) in coupling.iter_mut().enumerate() {
            row[i] = 0.15;
        }
        coupling[0][4] = 0.04;
        coupling[4][0] = 0.04;
        coupling[1][2] = -0.03;
        coupling[2][1] = -0.03;

        // The factored implicit operator (I − θ₂δ² + θ₄δ⁴) is scalar
        // pentadiagonal: stencil [e, c, d, c, e].
        let theta2 = 0.5 * dt * nu;
        let theta4 = 0.18 * theta2;
        let d = 1.0 + 2.0 * theta2 + 6.0 * theta4;
        let c = -(theta2 + 4.0 * theta4);
        let e = theta4;
        let penta = PentaSolver::factor(GP - 2, d, c, e);

        let exact = ExactSolution;
        let mut sp = Sp {
            niter,
            ckpt_at,
            dt,
            nu,
            coupling,
            forcing: Arr4::zeros(GP, GP1, GP1, NCOMP),
            penta,
            exact,
        };
        sp.forcing = sp.exact_forcing();
        sp
    }

    /// Spatial operator (Laplacian + symmetric cross-component mixing) —
    /// structurally identical to BT's, different constants.
    #[allow(clippy::needless_range_loop)]
    fn spatial_op<R: Real>(&self, u: &Arr4<R>, k: usize, j: usize, i: usize) -> [R; NCOMP] {
        let mut avg = [R::zero(); NCOMP];
        let mut lap = [R::zero(); NCOMP];
        for m in 0..NCOMP {
            let c = u[(k, j, i, m)];
            let sum = u[(k - 1, j, i, m)]
                + u[(k + 1, j, i, m)]
                + u[(k, j - 1, i, m)]
                + u[(k, j + 1, i, m)]
                + u[(k, j, i - 1, m)]
                + u[(k, j, i + 1, m)];
            lap[m] = (sum - c * 6.0) * self.nu;
            avg[m] = sum * (1.0 / 6.0) - c;
        }
        let mut op = lap;
        for m in 0..NCOMP {
            for n in 0..NCOMP {
                let w = self.coupling[m][n];
                if w != 0.0 {
                    op[m] += avg[n] * w;
                }
            }
        }
        op
    }

    fn exact_forcing(&self) -> Arr4<f64> {
        let mut ue: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        for k in 0..GP {
            for j in 0..GP {
                for i in 0..GP {
                    let e = self.exact.eval(
                        ExactSolution::coord(i),
                        ExactSolution::coord(j),
                        ExactSolution::coord(k),
                    );
                    for m in 0..NCOMP {
                        ue[(k, j, i, m)] = e[m];
                    }
                }
            }
        }
        let mut f: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        for k in 1..GP - 1 {
            for j in 1..GP - 1 {
                for i in 1..GP - 1 {
                    let op = self.spatial_op(&ue, k, j, i);
                    for m in 0..NCOMP {
                        f[(k, j, i, m)] = -op[m];
                    }
                }
            }
        }
        f
    }

    fn compute_rhs<R: Real>(&self, u: &Arr4<R>, rhs: &mut Arr4<R>) {
        for k in 1..GP - 1 {
            for j in 1..GP - 1 {
                for i in 1..GP - 1 {
                    let op = self.spatial_op(u, k, j, i);
                    for m in 0..NCOMP {
                        rhs[(k, j, i, m)] = (op[m] + self.forcing[(k, j, i, m)]) * self.dt;
                    }
                }
            }
        }
    }

    /// Scalar pentadiagonal line solves per component along a direction.
    fn line_solve<R: Real>(&self, rhs: &mut Arr4<R>, dir: usize) {
        let n = GP - 2;
        let mut line: Vec<R> = vec![R::zero(); n];
        for a in 1..GP - 1 {
            for b in 1..GP - 1 {
                for m in 0..NCOMP {
                    for (l, v) in line.iter_mut().enumerate() {
                        let idx = Self::line_index(dir, a, b, l + 1);
                        *v = rhs[(idx.0, idx.1, idx.2, m)];
                    }
                    self.penta.solve(&mut line);
                    for (l, v) in line.iter().enumerate() {
                        let idx = Self::line_index(dir, a, b, l + 1);
                        rhs[(idx.0, idx.1, idx.2, m)] = *v;
                    }
                }
            }
        }
    }

    #[inline]
    fn line_index(dir: usize, a: usize, b: usize, l: usize) -> (usize, usize, usize) {
        match dir {
            0 => (a, b, l),
            1 => (a, l, b),
            _ => (l, a, b),
        }
    }

    fn add<R: Real>(u: &mut Arr4<R>, rhs: &Arr4<R>) {
        for k in 1..GP - 1 {
            for j in 1..GP - 1 {
                for i in 1..GP - 1 {
                    for m in 0..NCOMP {
                        let inc = rhs[(k, j, i, m)];
                        u[(k, j, i, m)] += inc;
                    }
                }
            }
        }
    }

    fn rhs_norm<R: Real>(rhs: &Arr4<R>) -> R {
        let mut s = R::zero();
        for k in 1..GP - 1 {
            for j in 1..GP - 1 {
                for i in 1..GP - 1 {
                    for m in 0..NCOMP {
                        let v = rhs[(k, j, i, m)];
                        s += v * v;
                    }
                }
            }
        }
        (s / ((GP - 2) * (GP - 2) * (GP - 2) * NCOMP) as f64).sqrt()
    }

    fn run_generic<R: Real>(&self, site: &mut dyn CkptSite<R>) -> RunOutcome<R> {
        let mut u: Arr4<R> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        blend_init(&mut u, &self.exact);
        let mut rhs: Arr4<R> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        let mut step_state = vec![0i64];

        for step in 1..=self.niter {
            if step == self.ckpt_at {
                step_state[0] = step as i64;
                let mut views = [
                    VarRefMut::F64(u.flat_mut()),
                    VarRefMut::I64(&mut step_state),
                ];
                site.at_boundary(step, &mut views);
            }
            self.compute_rhs(&u, &mut rhs);
            self.line_solve(&mut rhs, 0);
            self.line_solve(&mut rhs, 1);
            self.line_solve(&mut rhs, 2);
            Self::add(&mut u, &rhs);
        }

        let err = error_norm(&u, &self.exact);
        let mut out = Self::rhs_norm(&rhs);
        for e in err {
            out += e;
        }
        RunOutcome { output: out }
    }

    /// Final solution error (testing aid).
    pub fn final_error(&self) -> f64 {
        let mut site = scrutiny_core::site::NoopSite;
        // The output includes the rhs norm; recompute the pure error.
        let mut u: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        blend_init(&mut u, &self.exact);
        let mut rhs: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        for _ in 1..=self.niter {
            self.compute_rhs(&u, &mut rhs);
            self.line_solve(&mut rhs, 0);
            self.line_solve(&mut rhs, 1);
            self.line_solve(&mut rhs, 2);
            Self::add(&mut u, &rhs);
        }
        let _ = &mut site;
        error_norm(&u, &self.exact).iter().sum()
    }
}

impl ScrutinyApp for Sp {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "SP".into(),
            class: "S".into(),
            vars: vec![
                VarSpec::f64("u", &[GP, GP1, GP1, NCOMP]),
                VarSpec::int_scalar("step"),
            ],
        }
    }

    fn checkpoint_iter(&self) -> usize {
        self.ckpt_at
    }

    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64> {
        self.run_generic(site)
    }

    fn run_ad(&self, site: &mut dyn CkptSite<Adj>) -> RunOutcome<Adj> {
        self.run_generic(site)
    }

    fn tape_capacity_hint(&self) -> usize {
        let remaining = self.niter - self.ckpt_at + 1;
        remaining * 800_000 + 200_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::{scrutinize, Policy, RestartConfig};

    #[test]
    fn adi_converges_toward_exact_solution() {
        let short = Sp::new(2, 1).final_error();
        let long = Sp::new(40, 1).final_error();
        assert!(long < 0.5 * short, "err(2) = {short}, err(40) = {long}");
    }

    #[test]
    fn criticality_identical_to_bt() {
        // The paper: "the exactly same critical-uncritical distribution in
        // u as we found in u in BT".
        let sp_map = scrutinize(&Sp::mini()).unwrap();
        let bt_map = scrutinize(&crate::Bt::mini()).unwrap();
        assert_eq!(
            sp_map.var("u").unwrap().value_map,
            bt_map.var("u").unwrap().value_map
        );
        assert_eq!(sp_map.var("u").unwrap().uncritical(), 1_500);
    }

    #[test]
    fn restart_with_garbage_holes_verifies() {
        let sp = Sp::mini();
        let analysis = scrutinize(&sp).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            ..Default::default()
        };
        let report = scrutiny_core::checkpoint_restart_cycle(&sp, &analysis, &cfg).unwrap();
        assert!(report.verified, "rel err {}", report.rel_err);
    }
}
