//! FT — 3-D Fast Fourier Transform PDE solver (NPB class S: 64³ grid,
//! 6 iterations).
//!
//! Checkpoint variables (paper Table I): `dcomplex y[64][64][65]` (the
//! frequency-domain state, padded by one slot along the fastest axis),
//! `dcomplex sums[6]` (per-iteration checksums), `int kt`.
//!
//! The paper finds 4096 uncritical elements in `y` — exactly the padding
//! plane at index 64, which `evolve`'s loops (bounded by the logical 64)
//! never touch (Fig. 8, "imperfect coding"). This port reproduces that by
//! construction: arrays are `[nz][ny][nx+1]`, loops run to `nx`.
//!
//! The AD analysis additionally reveals a subtlety the paper does not
//! report: `sums` slots for iterations *after* the checkpoint are
//! overwritten before being read, so they are uncritical — only the
//! already-accumulated checksums need checkpointing.

use crate::common::Randlc;
use scrutiny_ad::{Adj, Cplx, Real};
use scrutiny_core::{AppSpec, CkptSite, RunOutcome, ScrutinyApp, VarRefMut, VarSpec};

/// FT's seed (NPB uses 314159265 for FT's initial conditions).
const FT_SEED: u64 = 314_159_265;
/// NPB's diffusivity constant α.
const ALPHA: f64 = 1e-6;

/// The FT benchmark.
pub struct Ft {
    /// Logical grid extents (power of two).
    pub nx: usize,
    /// Logical grid extents (power of two).
    pub ny: usize,
    /// Logical grid extents (power of two).
    pub nz: usize,
    /// Main-loop iterations.
    pub niter: usize,
    /// Main-loop index at whose boundary the checkpoint is taken (1-based).
    pub ckpt_at: usize,
}

impl Ft {
    /// Class S: 64³, 6 iterations, checkpoint before the final iteration.
    pub fn class_s() -> Self {
        Self::new(64, 64, 64, 6, 6)
    }

    /// A reduced instance (8³) for fast tests.
    pub fn mini() -> Self {
        Self::new(8, 8, 8, 3, 2)
    }

    /// General constructor (extents must be powers of two).
    pub fn new(nx: usize, ny: usize, nz: usize, niter: usize, ckpt_at: usize) -> Self {
        for n in [nx, ny, nz] {
            assert!(n.is_power_of_two(), "FFT extents must be powers of two");
        }
        assert!(
            ckpt_at >= 1 && ckpt_at <= niter,
            "checkpoint must fall inside the main loop"
        );
        Ft {
            nx,
            ny,
            nz,
            niter,
            ckpt_at,
        }
    }

    /// Padded x extent (NPB pads the fastest axis by one to dodge cache
    /// aliasing — the source of the uncritical plane).
    pub fn xpad(&self) -> usize {
        self.nx + 1
    }

    /// Flat element count of `y` (complex elements).
    pub fn y_elems(&self) -> usize {
        self.nz * self.ny * self.xpad()
    }

    #[inline]
    fn idx(&self, k: usize, j: usize, i: usize) -> usize {
        (k * self.ny + j) * self.xpad() + i
    }

    /// In-place radix-2 FFT of one gathered line. Twiddles are literals:
    /// they never touch the AD tape.
    fn fft_line<R: Real>(line: &mut [Cplx<R>], inverse: bool) {
        let n = line.len();
        debug_assert!(n.is_power_of_two());
        // Bit-reversal permutation.
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                line.swap(i, j);
            }
        }
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut len = 2;
        while len <= n {
            let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
            for base in (0..n).step_by(len) {
                for off in 0..len / 2 {
                    let w: Cplx<R> = Cplx::cis(ang * off as f64);
                    let a = line[base + off];
                    let b = line[base + off + len / 2] * w;
                    line[base + off] = a + b;
                    line[base + off + len / 2] = a - b;
                }
            }
            len <<= 1;
        }
        if inverse {
            let scale = 1.0 / n as f64;
            for v in line.iter_mut() {
                *v = v.scale_lit(scale);
            }
        }
    }

    /// 3-D FFT over the logical `nx × ny × nz` sub-grid of a padded array.
    fn fft3d<R: Real>(&self, a: &mut [Cplx<R>], inverse: bool) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        // x lines (contiguous).
        let mut line: Vec<Cplx<R>> = vec![Cplx::zero(); nx.max(ny).max(nz)];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    line[i] = a[self.idx(k, j, i)];
                }
                Self::fft_line(&mut line[..nx], inverse);
                for i in 0..nx {
                    a[self.idx(k, j, i)] = line[i];
                }
            }
        }
        // y lines.
        for k in 0..nz {
            for i in 0..nx {
                for j in 0..ny {
                    line[j] = a[self.idx(k, j, i)];
                }
                Self::fft_line(&mut line[..ny], inverse);
                for j in 0..ny {
                    a[self.idx(k, j, i)] = line[j];
                }
            }
        }
        // z lines.
        for j in 0..ny {
            for i in 0..nx {
                for k in 0..nz {
                    line[k] = a[self.idx(k, j, i)];
                }
                Self::fft_line(&mut line[..nz], inverse);
                for k in 0..nz {
                    a[self.idx(k, j, i)] = line[k];
                }
            }
        }
    }

    /// Signed frequency of index `i` on an extent-`n` axis.
    fn freq(i: usize, n: usize) -> f64 {
        if i >= n / 2 {
            i as f64 - n as f64
        } else {
            i as f64
        }
    }

    /// `evolve`: `u1 = u0 · e^(−4·α·π²·|k|²·t)` — reads only the logical
    /// grid (`i < nx`), never the padding plane.
    fn evolve<R: Real>(&self, u0: &[Cplx<R>], u1: &mut [Cplx<R>], t: f64) {
        for k in 0..self.nz {
            let fk = Self::freq(k, self.nz);
            for j in 0..self.ny {
                let fj = Self::freq(j, self.ny);
                for i in 0..self.nx {
                    let fi = Self::freq(i, self.nx);
                    let ksq = fi * fi + fj * fj + fk * fk;
                    let factor =
                        (-4.0 * ALPHA * std::f64::consts::PI * std::f64::consts::PI * ksq * t)
                            .exp();
                    u1[self.idx(k, j, i)] = u0[self.idx(k, j, i)].scale_lit(factor);
                }
            }
        }
    }

    /// Scattered checksum over pseudo-random sites.
    ///
    /// NPB samples `(j mod nx, 3j mod ny, 5j mod nz)`, which visits only
    /// `nx` *distinct* cells lying on a lattice plane; the derivative of
    /// such a sum with respect to a frequency-domain element cancels
    /// *exactly* for every wavevector off the dual plane (a measure-zero
    /// artifact that real FFT rounding hides from Enzyme but that our
    /// exact small-size twiddles expose). We draw the sample sites from
    /// `randlc` instead — same checksum role, no degenerate geometry.
    fn checksum<R: Real>(&self, a: &[Cplx<R>]) -> Cplx<R> {
        let mut chk = Cplx::zero();
        let total = self.nx * self.ny * self.nz;
        let samples = 1024.min(total / 4);
        let mut rng = Randlc::new(1_234_567);
        for _ in 0..samples {
            let q = (rng.next() * self.nx as f64) as usize % self.nx;
            let r = (rng.next() * self.ny as f64) as usize % self.ny;
            let s = (rng.next() * self.nz as f64) as usize % self.nz;
            // Distinct per-sample weights: an unweighted sum over ±1-valued
            // basis functions (DC/Nyquist modes) is an integer and lands on
            // exactly 0 with noticeable probability; weighting makes every
            // element's influence on the checksum robustly non-zero.
            let w = 0.5 + rng.next();
            chk += a[self.idx(s, r, q)].scale_lit(w);
        }
        chk.scale_lit(1.0 / total as f64)
    }

    fn run_generic<R: Real>(&self, site: &mut dyn CkptSite<R>) -> RunOutcome<R> {
        let n_elems = self.y_elems();
        // Initial conditions: random complex field on the logical grid
        // (program input — regenerated at restart, constant under AD).
        let mut rng = Randlc::new(FT_SEED);
        let mut u1: Vec<Cplx<R>> = vec![Cplx::zero(); n_elems];
        for k in 0..self.nz {
            for j in 0..self.ny {
                for i in 0..self.nx {
                    let re = rng.next();
                    let im = rng.next();
                    u1[self.idx(k, j, i)] = Cplx::lit(re, im);
                }
            }
        }
        // Forward transform: y (u0) is the frequency-domain state.
        let mut u0 = u1.clone();
        self.fft3d(&mut u0, false);

        let mut sums: Vec<Cplx<R>> = vec![Cplx::zero(); self.niter];
        let mut kt_state = vec![0i64];
        let mut scratch: Vec<Cplx<R>> = vec![Cplx::zero(); n_elems];

        for kt in 1..=self.niter {
            if kt == self.ckpt_at {
                kt_state[0] = kt as i64;
                let mut views = [
                    VarRefMut::C128(&mut u0),
                    VarRefMut::C128(&mut sums),
                    VarRefMut::I64(&mut kt_state),
                ];
                site.at_boundary(kt, &mut views);
            }
            self.evolve(&u0, &mut scratch, kt as f64);
            self.fft3d(&mut scratch, true);
            sums[kt - 1] = self.checksum(&scratch);
        }

        // The verification quantity: all checksum components.
        let mut out = R::zero();
        for s in &sums {
            out += s.re + s.im;
        }
        RunOutcome { output: out }
    }
}

impl ScrutinyApp for Ft {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "FT".into(),
            class: if self.nx == 64 {
                "S".into()
            } else {
                format!("{}^3", self.nx)
            },
            vars: vec![
                VarSpec::c128("y", &[self.nz, self.ny, self.xpad()]),
                VarSpec::c128("sums", &[self.niter]),
                VarSpec::int_scalar("kt"),
            ],
        }
    }

    fn checkpoint_iter(&self) -> usize {
        self.ckpt_at
    }

    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64> {
        self.run_generic(site)
    }

    fn run_ad(&self, site: &mut dyn CkptSite<Adj>) -> RunOutcome<Adj> {
        self.run_generic(site)
    }

    fn tape_capacity_hint(&self) -> usize {
        let remaining = self.niter - self.ckpt_at + 1;
        let logical = self.nx * self.ny * self.nz;
        let stages = (self.nx.trailing_zeros()
            + self.ny.trailing_zeros()
            + self.nz.trailing_zeros()) as usize;
        remaining * logical * (2 + 5 * stages) + (1 << 16)
    }

    fn tolerance(&self) -> f64 {
        1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::site::NoopSite;
    use scrutiny_core::{scrutinize, Policy, RestartConfig};

    #[test]
    fn fft_roundtrip_is_identity() {
        let ft = Ft::mini();
        let mut rng = Randlc::new(99);
        let mut a: Vec<Cplx<f64>> = vec![Cplx::zero(); ft.y_elems()];
        for k in 0..ft.nz {
            for j in 0..ft.ny {
                for i in 0..ft.nx {
                    a[ft.idx(k, j, i)] = Cplx::new(rng.next() - 0.5, rng.next() - 0.5);
                }
            }
        }
        let orig = a.clone();
        ft.fft3d(&mut a, false);
        ft.fft3d(&mut a, true);
        for (x, y) in a.iter().zip(&orig) {
            assert!((x.re - y.re).abs() < 1e-12 && (x.im - y.im).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_line_matches_dft_definition() {
        // 4-point DFT of [1, 0, 0, 0] is all-ones.
        let mut line: Vec<Cplx<f64>> = vec![
            Cplx::new(1.0, 0.0),
            Cplx::zero(),
            Cplx::zero(),
            Cplx::zero(),
        ];
        Ft::fft_line(&mut line, false);
        for v in &line {
            assert!((v.re - 1.0).abs() < 1e-15 && v.im.abs() < 1e-15);
        }
    }

    #[test]
    fn parseval_holds() {
        let ft = Ft::mini();
        let mut rng = Randlc::new(5);
        let n = ft.nx * ft.ny * ft.nz;
        let mut a: Vec<Cplx<f64>> = vec![Cplx::zero(); ft.y_elems()];
        let mut time_energy = 0.0;
        for k in 0..ft.nz {
            for j in 0..ft.ny {
                for i in 0..ft.nx {
                    let c = Cplx::new(rng.next() - 0.5, rng.next() - 0.5);
                    time_energy += c.norm_sqr();
                    a[ft.idx(k, j, i)] = c;
                }
            }
        }
        ft.fft3d(&mut a, false);
        let mut freq_energy = 0.0;
        for k in 0..ft.nz {
            for j in 0..ft.ny {
                for i in 0..ft.nx {
                    freq_energy += a[ft.idx(k, j, i)].norm_sqr();
                }
            }
        }
        assert!((freq_energy / n as f64 - time_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn deterministic_and_finite() {
        let ft = Ft::mini();
        let a = ft.run_f64(&mut NoopSite).output;
        assert_eq!(a, ft.run_f64(&mut NoopSite).output);
        assert!(a.is_finite());
    }

    #[test]
    fn mini_criticality_pattern() {
        let ft = Ft::mini();
        let report = scrutinize(&ft).unwrap();
        let y = report.var("y").unwrap();
        assert_eq!(y.total(), ft.y_elems());
        // Exactly the padding plane (i = nx) is uncritical.
        assert_eq!(y.uncritical(), ft.nz * ft.ny);
        for k in 0..ft.nz {
            for j in 0..ft.ny {
                assert!(!y.value_map.get(ft.idx(k, j, ft.nx)));
            }
        }
        // sums: already-computed slots critical, future slots overwritten.
        let sums = report.var("sums").unwrap();
        for s in 0..ft.niter {
            let past = s + 1 < ft.ckpt_at;
            assert_eq!(
                sums.value_map.get(s),
                past,
                "sums[{s}] criticality (ckpt at {})",
                ft.ckpt_at
            );
        }
    }

    #[test]
    fn restart_with_garbage_holes_verifies() {
        let ft = Ft::mini();
        let analysis = scrutinize(&ft).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            ..Default::default()
        };
        let report = scrutiny_core::checkpoint_restart_cycle(&ft, &analysis, &cfg).unwrap();
        assert!(report.verified, "rel err {}", report.rel_err);
    }
}
