//! Shared substrate for the three structured-grid solvers (BT, SP, LU):
//! the manufactured exact solution, boundary-blend initialization,
//! error norms, and small dense linear algebra (5×5 blocks, line LU).
//!
//! All three benchmarks operate on `[12][13][13][5]` state: NPB declares
//! 13 slots in the j/i dimensions but `grid_points = 12`, so index 12 is
//! never touched by any loop — the origin of the paper's Fig. 3 pattern.

use crate::common::Arr4;
use scrutiny_ad::Real;

/// Grid points per dimension (NPB class S `grid_points`).
pub const GP: usize = 12;
/// Declared j/i extent (`grid_points + 1`).
pub const GP1: usize = 13;
/// Solution components per grid point.
pub const NCOMP: usize = 5;

/// Total elements of a `[12][13][13][5]` variable.
pub const U_ELEMS: usize = GP * GP1 * GP1 * NCOMP;

/// A smooth manufactured solution, NPB `exact_solution`-style: a small
/// polynomial/trigonometric blend per component with component 0 kept
/// safely positive (it plays the role of density in LU).
#[derive(Clone, Copy, Debug)]
pub struct ExactSolution;

impl ExactSolution {
    /// Evaluate all five components at normalized coordinates in [0, 1].
    pub fn eval(&self, x: f64, y: f64, z: f64) -> [f64; NCOMP] {
        [
            2.0 + 0.3 * x + 0.2 * y * y + 0.1 * z + 0.05 * x * y * z,
            0.5 * (std::f64::consts::PI * x).sin() + 0.1 * y - 0.05 * z * z,
            0.4 * (std::f64::consts::PI * y).cos() + 0.08 * z + 0.03 * x * x,
            0.3 + 0.12 * z * z - 0.07 * x * y,
            5.0 + 0.5 * x * x + 0.4 * y + 0.25 * (std::f64::consts::PI * z).sin(),
        ]
    }

    /// Normalized coordinate of grid index `i` (0..GP).
    pub fn coord(i: usize) -> f64 {
        i as f64 / (GP - 1) as f64
    }
}

/// NPB `initialize`: boundary faces take the exact solution; interior
/// points take a transfinite blend of the six face values. Index 12 of
/// the j/i dimensions is left at its allocation default (zero), exactly
/// like NPB's static arrays.
pub fn blend_init<R: Real>(u: &mut Arr4<R>, exact: &ExactSolution) {
    // Pass 1: trilinear blend of the face values everywhere.
    for k in 0..GP {
        let z = ExactSolution::coord(k);
        for j in 0..GP {
            let y = ExactSolution::coord(j);
            for i in 0..GP {
                let x = ExactSolution::coord(i);
                let x0 = exact.eval(0.0, y, z);
                let x1 = exact.eval(1.0, y, z);
                let y0 = exact.eval(x, 0.0, z);
                let y1 = exact.eval(x, 1.0, z);
                let z0 = exact.eval(x, y, 0.0);
                let z1 = exact.eval(x, y, 1.0);
                for m in 0..NCOMP {
                    let px = (1.0 - x) * x0[m] + x * x1[m];
                    let py = (1.0 - y) * y0[m] + y * y1[m];
                    let pz = (1.0 - z) * z0[m] + z * z1[m];
                    u[(k, j, i, m)] = R::lit(px + py + pz - 0.5 * (px + py + pz) / 1.5);
                }
            }
        }
    }
    // Pass 2: faces get the Dirichlet data. NPB pins faces to the exact
    // solution *bitwise*; then the squared error of corner/edge cells is
    // exactly zero and its first derivative vanishes, so an AD analysis
    // would see them as zero-gradient despite being read — an unsafe
    // artifact (see DESIGN.md §4). We offset the boundary data by a small
    // smooth field so every read element has a robustly non-zero impact,
    // matching the clean Fig. 3 pattern the paper reports.
    for k in 0..GP {
        let z = ExactSolution::coord(k);
        for j in 0..GP {
            let y = ExactSolution::coord(j);
            for i in 0..GP {
                let x = ExactSolution::coord(i);
                let on_face =
                    k == 0 || k == GP - 1 || j == 0 || j == GP - 1 || i == 0 || i == GP - 1;
                if on_face {
                    let e = exact.eval(x, y, z);
                    let off = BOUNDARY_OFFSET * (1.0 + x + 2.0 * y + 3.0 * z);
                    for m in 0..NCOMP {
                        u[(k, j, i, m)] = R::lit(e[m] + off);
                    }
                }
            }
        }
    }
}

/// Magnitude of the smooth Dirichlet-data offset (see [`blend_init`]).
pub const BOUNDARY_OFFSET: f64 = 1e-3;

/// NPB BT/SP `error_norm` (the paper's Fig. 2): RMS difference from the
/// exact solution **over the full `0..grid_points` range of every
/// dimension** — the read pattern that makes all of `12³×5` critical.
pub fn error_norm<R: Real>(u: &Arr4<R>, exact: &ExactSolution) -> [R; NCOMP] {
    let mut rms = [R::zero(); NCOMP];
    for k in 0..GP {
        let z = ExactSolution::coord(k);
        for j in 0..GP {
            let y = ExactSolution::coord(j);
            for i in 0..GP {
                let x = ExactSolution::coord(i);
                let e = exact.eval(x, y, z);
                for m in 0..NCOMP {
                    let add = u[(k, j, i, m)] - e[m];
                    rms[m] += add * add;
                }
            }
        }
    }
    let n = (GP * GP * GP) as f64;
    rms.map(|s| (s / n).sqrt())
}

/// LU's interior-only variant of the error norm (NPB `error`).
pub fn error_norm_interior<R: Real>(u: &Arr4<R>, exact: &ExactSolution) -> [R; NCOMP] {
    let mut rms = [R::zero(); NCOMP];
    for k in 1..GP - 1 {
        let z = ExactSolution::coord(k);
        for j in 1..GP - 1 {
            let y = ExactSolution::coord(j);
            for i in 1..GP - 1 {
                let x = ExactSolution::coord(i);
                let e = exact.eval(x, y, z);
                for m in 0..NCOMP {
                    let add = u[(k, j, i, m)] - e[m];
                    rms[m] += add * add;
                }
            }
        }
    }
    let n = ((GP - 2) * (GP - 2) * (GP - 2)) as f64;
    rms.map(|s| (s / n).sqrt())
}

// ---------------------------------------------------------------------
// Dense 5×5 block algebra (BT's `binvcrhs`/`matmul_sub` world). Blocks in
// our ADI factorization are state-independent, so factorization runs in
// f64; only the right-hand-side vectors carry tape values.
// ---------------------------------------------------------------------

/// A dense 5×5 matrix of literals.
pub type Mat5 = [[f64; NCOMP]; NCOMP];

/// 5×5 identity.
pub fn mat5_identity() -> Mat5 {
    let mut m = [[0.0; NCOMP]; NCOMP];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

/// `a·b` for 5×5 matrices.
pub fn mat5_mul(a: &Mat5, b: &Mat5) -> Mat5 {
    let mut c = [[0.0; NCOMP]; NCOMP];
    for i in 0..NCOMP {
        for k in 0..NCOMP {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..NCOMP {
                c[i][j] += aik * b[k][j];
            }
        }
    }
    c
}

/// `a + s·b`.
pub fn mat5_axpy(a: &Mat5, s: f64, b: &Mat5) -> Mat5 {
    let mut c = *a;
    for i in 0..NCOMP {
        for j in 0..NCOMP {
            c[i][j] += s * b[i][j];
        }
    }
    c
}

/// Inverse by Gauss-Jordan with partial pivoting; panics on a singular
/// block (our ADI blocks are strictly diagonally dominant, so this only
/// fires on a construction bug).
pub fn mat5_inv(a: &Mat5) -> Mat5 {
    let mut m = *a;
    let mut inv = mat5_identity();
    for col in 0..NCOMP {
        // Pivot.
        let mut piv = col;
        for r in col + 1..NCOMP {
            if m[r][col].abs() > m[piv][col].abs() {
                piv = r;
            }
        }
        assert!(m[piv][col].abs() > 1e-12, "singular 5x5 block");
        m.swap(col, piv);
        inv.swap(col, piv);
        let d = 1.0 / m[col][col];
        for j in 0..NCOMP {
            m[col][j] *= d;
            inv[col][j] *= d;
        }
        for r in 0..NCOMP {
            if r == col {
                continue;
            }
            let f = m[r][col];
            if f == 0.0 {
                continue;
            }
            for j in 0..NCOMP {
                m[r][j] -= f * m[col][j];
                inv[r][j] -= f * inv[col][j];
            }
        }
    }
    inv
}

/// `y = M·x` where `M` is literal and `x` carries tape values.
pub fn mat5_apply<R: Real>(m: &Mat5, x: &[R; NCOMP]) -> [R; NCOMP] {
    let mut y = [R::zero(); NCOMP];
    for (i, row) in m.iter().enumerate() {
        for (j, &mij) in row.iter().enumerate() {
            if mij != 0.0 {
                y[i] += x[j] * mij;
            }
        }
    }
    y
}

/// Constant-block tridiagonal line solver: factorizes
/// `tri(A, D, C)` of a given length once (f64), then solves for
/// differentiable right-hand sides. This is BT's x/y/z line solve with
/// state-independent Jacobian blocks (see DESIGN.md §4).
#[derive(Clone, Debug)]
pub struct BlockTriSolver {
    /// `D̃_l⁻¹` after forward elimination.
    inv: Vec<Mat5>,
    /// `D̃_l⁻¹·C` used in back-substitution.
    upper: Vec<Mat5>,
    /// The sub-diagonal block `A`.
    lower: Mat5,
}

impl BlockTriSolver {
    /// Factor a length-`n` block tridiagonal system with constant blocks
    /// `(A, D, C)` (sub, main, super).
    pub fn factor(n: usize, a: &Mat5, d: &Mat5, c: &Mat5) -> Self {
        assert!(n >= 1);
        let mut inv = Vec::with_capacity(n);
        let mut upper = Vec::with_capacity(n);
        let mut dt = *d;
        for l in 0..n {
            if l > 0 {
                // D̃_l = D − A·U_{l−1}
                let au = mat5_mul(a, &upper[l - 1]);
                dt = mat5_axpy(d, -1.0, &au);
            }
            let inv_l = mat5_inv(&dt);
            upper.push(mat5_mul(&inv_l, c));
            inv.push(inv_l);
        }
        BlockTriSolver {
            inv,
            upper,
            lower: *a,
        }
    }

    /// Solve in place: `rhs` holds the line's block vectors.
    pub fn solve<R: Real>(&self, rhs: &mut [[R; NCOMP]]) {
        let n = self.inv.len();
        assert_eq!(rhs.len(), n);
        // Forward: y_l = D̃⁻¹ (d_l − A·y_{l−1}).
        for l in 0..n {
            if l > 0 {
                let prev = rhs[l - 1];
                let av = mat5_apply(&self.lower, &prev);
                for m in 0..NCOMP {
                    rhs[l][m] -= av[m];
                }
            }
            rhs[l] = mat5_apply(&self.inv[l], &rhs[l]);
        }
        // Backward: x_l = y_l − U_l·x_{l+1}.
        for l in (0..n.saturating_sub(1)).rev() {
            let next = rhs[l + 1];
            let uv = mat5_apply(&self.upper[l], &next);
            for m in 0..NCOMP {
                rhs[l][m] -= uv[m];
            }
        }
    }
}

/// Constant-coefficient scalar pentadiagonal line solver (SP's x/y/z
/// solve): dense LU of the banded matrix, factored once per line length.
#[derive(Clone, Debug)]
pub struct PentaSolver {
    n: usize,
    /// Combined LU factors (unit lower, upper in place).
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl PentaSolver {
    /// Factor the length-`n` pentadiagonal matrix with constant stencil
    /// `[e, c, d, c, e]` (diagonally dominant for SP's coefficients).
    pub fn factor(n: usize, d: f64, c: f64, e: f64) -> Self {
        let mut m = vec![0.0f64; n * n];
        for i in 0..n {
            m[i * n + i] = d;
            if i + 1 < n {
                m[i * n + i + 1] = c;
                m[(i + 1) * n + i] = c;
            }
            if i + 2 < n {
                m[i * n + i + 2] = e;
                m[(i + 2) * n + i] = e;
            }
        }
        // Dense LU with partial pivoting (n ≤ 16 in practice).
        let mut piv = Vec::with_capacity(n);
        for col in 0..n {
            let mut p = col;
            for r in col + 1..n {
                if m[r * n + col].abs() > m[p * n + col].abs() {
                    p = r;
                }
            }
            assert!(m[p * n + col].abs() > 1e-12, "singular pentadiagonal line");
            if p != col {
                for j in 0..n {
                    m.swap(col * n + j, p * n + j);
                }
            }
            piv.push(p);
            let dinv = 1.0 / m[col * n + col];
            for r in col + 1..n {
                let f = m[r * n + col] * dinv;
                m[r * n + col] = f;
                if f != 0.0 {
                    for j in col + 1..n {
                        m[r * n + j] -= f * m[col * n + j];
                    }
                }
            }
        }
        PentaSolver { n, lu: m, piv }
    }

    /// Solve in place for one differentiable right-hand side.
    pub fn solve<R: Real>(&self, rhs: &mut [R]) {
        let n = self.n;
        assert_eq!(rhs.len(), n);
        for col in 0..n {
            let p = self.piv[col];
            if p != col {
                rhs.swap(col, p);
            }
            let pivot = rhs[col];
            for r in col + 1..n {
                let f = self.lu[r * n + col];
                if f != 0.0 {
                    rhs[r] -= pivot * f;
                }
            }
        }
        for col in (0..n).rev() {
            let mut acc = rhs[col];
            for j in col + 1..n {
                let f = self.lu[col * n + j];
                if f != 0.0 {
                    acc -= rhs[j] * f;
                }
            }
            rhs[col] = acc / self.lu[col * n + col];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Randlc;

    #[test]
    fn mat5_inverse_roundtrip() {
        let mut rng = Randlc::new(11);
        let mut a = mat5_identity();
        for row in a.iter_mut() {
            for v in row.iter_mut() {
                *v += 0.2 * (rng.next() - 0.5);
            }
        }
        let inv = mat5_inv(&a);
        let prod = mat5_mul(&a, &inv);
        let id = mat5_identity();
        for i in 0..NCOMP {
            for j in 0..NCOMP {
                assert!((prod[i][j] - id[i][j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn block_tri_solver_matches_direct_multiply() {
        // Build a dominant system, solve, and verify A·x == d.
        let theta = 0.08;
        let b = {
            let mut m = mat5_identity();
            m[0][1] = 0.3;
            m[1][0] = 0.3;
            m[2][4] = -0.2;
            m[4][2] = -0.2;
            m
        };
        let d = mat5_axpy(&mat5_identity(), 2.0 * theta, &b);
        let mut a = [[0.0; NCOMP]; NCOMP];
        for i in 0..NCOMP {
            for j in 0..NCOMP {
                a[i][j] = -theta * b[i][j];
            }
        }
        let n = 7;
        let solver = BlockTriSolver::factor(n, &a, &d, &a);
        let mut rng = Randlc::new(3);
        let rhs_orig: Vec<[f64; NCOMP]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.next() - 0.5))
            .collect();
        let mut x = rhs_orig.clone();
        solver.solve(&mut x);
        // Verify tri(A,D,A)·x = rhs.
        for l in 0..n {
            let mut acc = mat5_apply(&d, &x[l]);
            if l > 0 {
                let lo = mat5_apply(&a, &x[l - 1]);
                for m in 0..NCOMP {
                    acc[m] += lo[m];
                }
            }
            if l + 1 < n {
                let hi = mat5_apply(&a, &x[l + 1]);
                for m in 0..NCOMP {
                    acc[m] += hi[m];
                }
            }
            for m in 0..NCOMP {
                assert!((acc[m] - rhs_orig[l][m]).abs() < 1e-9, "line {l} comp {m}");
            }
        }
    }

    #[test]
    fn penta_solver_matches_direct_multiply() {
        let n = 10;
        let (d, c, e) = (1.9, -0.4, 0.05);
        let solver = PentaSolver::factor(n, d, c, e);
        let mut rng = Randlc::new(17);
        let rhs: Vec<f64> = (0..n).map(|_| rng.next() - 0.5).collect();
        let mut x = rhs.clone();
        solver.solve(&mut x);
        for i in 0..n {
            let mut acc = d * x[i];
            if i >= 1 {
                acc += c * x[i - 1];
            }
            if i >= 2 {
                acc += e * x[i - 2];
            }
            if i + 1 < n {
                acc += c * x[i + 1];
            }
            if i + 2 < n {
                acc += e * x[i + 2];
            }
            assert!((acc - rhs[i]).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn blend_init_respects_padding_and_boundaries() {
        let exact = ExactSolution;
        let mut u: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        blend_init(&mut u, &exact);
        // Padding slots untouched.
        for k in 0..GP {
            for m in 0..NCOMP {
                assert_eq!(u[(k, GP, 0, m)], 0.0);
                assert_eq!(u[(k, 0, GP, m)], 0.0);
            }
        }
        // Faces equal the exact solution.
        let e = exact.eval(0.0, ExactSolution::coord(3), ExactSolution::coord(5));
        let off =
            BOUNDARY_OFFSET * (1.0 + 2.0 * ExactSolution::coord(3) + 3.0 * ExactSolution::coord(5));
        for m in 0..NCOMP {
            assert!((u[(5, 3, 0, m)] - e[m] - off).abs() < 1e-12);
        }
    }

    #[test]
    fn error_norm_zero_for_exact_field() {
        let exact = ExactSolution;
        let mut u: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        for k in 0..GP {
            for j in 0..GP {
                for i in 0..GP {
                    let e = exact.eval(
                        ExactSolution::coord(i),
                        ExactSolution::coord(j),
                        ExactSolution::coord(k),
                    );
                    for m in 0..NCOMP {
                        u[(k, j, i, m)] = e[m];
                    }
                }
            }
        }
        for v in error_norm(&u, &exact) {
            assert!(v < 1e-12);
        }
        for v in error_norm_interior(&u, &exact) {
            assert!(v < 1e-12);
        }
    }
}
