//! # scrutiny-npb — NAS Parallel Benchmarks, class S, in Rust
//!
//! Ports of the eight NPB benchmarks the paper evaluates (BT, SP, LU, MG,
//! CG, FT, EP, IS), written generically over [`scrutiny_ad::Real`] so the
//! same kernel runs natively (`f64`) and under the recording scalar
//! (`Adj`) for the criticality analysis.
//!
//! The ports keep NPB's **state layout, loop bounds and element access
//! patterns** exactly (that is what the paper's results are functions of)
//! while replacing NPB's physics constants by unconditionally stable
//! equivalents; see DESIGN.md §1 and §4 for the substitution argument and
//! per-benchmark notes.

// The ports keep NPB's explicit index loops so element access patterns match
// what the paper's criticality results are functions of; don't suggest
// iterator rewrites that would restructure them.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod bt;
pub mod cg;
pub mod common;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod pde;
pub mod pipeline;
pub mod sp;

pub use bt::Bt;
pub use cg::Cg;
pub use ep::Ep;
pub use ft::Ft;
pub use is::Is;
pub use lu::Lu;
pub use mg::Mg;
pub use pipeline::{
    burn_in, burn_in_bounded, burn_in_delta, burn_in_delta_observed, burn_in_observed,
    burn_in_recover, burn_in_recover_observed, burn_in_suite, burn_in_suite_mini,
    perturb_localized, perturb_uncritical, scrutinize_bounded_vs_unbounded, BoundedBurnInReport,
    BurnInReport, DeltaBurnInReport, RecoveryBurnInReport,
};
pub use sp::Sp;

use scrutiny_core::ScrutinyApp;

/// All float-state benchmarks (those AD applies to) at class S with the
/// default analysis checkpoint placement — the paper's Table II set.
pub fn table2_suite() -> Vec<Box<dyn ScrutinyApp>> {
    vec![
        Box::new(Bt::class_s()),
        Box::new(Sp::class_s()),
        Box::new(Mg::class_s()),
        Box::new(Cg::class_s()),
        Box::new(Lu::class_s()),
        Box::new(Ft::class_s()),
    ]
}

/// The full eight-benchmark suite (EP included; IS is integer-only and is
/// analyzed by the liveness tracker in [`is`], not by AD).
pub fn ad_suite() -> Vec<Box<dyn ScrutinyApp>> {
    let mut v = table2_suite();
    v.push(Box::new(Ep::class_s()));
    v
}

/// Mini instances of the seven AD-analyzable benchmarks: the same kernels
/// and dataflow shapes at seconds-scale tape sizes, for campaign matrices
/// and the analyzer differential harness.
pub fn ad_suite_mini() -> Vec<Box<dyn ScrutinyApp>> {
    vec![
        Box::new(Bt::mini()),
        Box::new(Sp::mini()),
        Box::new(Mg::mini()),
        Box::new(Cg::mini()),
        Box::new(Lu::mini()),
        Box::new(Ft::mini()),
        Box::new(Ep::mini()),
    ]
}
