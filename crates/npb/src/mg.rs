//! MG — V-cycle MultiGrid for the 3-D discrete Poisson equation
//! (NPB class S: 32³ grid, 5 levels, 4 iterations).
//!
//! Checkpoint variables (paper Table I): `double u[46480]`,
//! `double r[46480]`, `int it`. Both flat arrays pack all grid levels
//! finest-first (34³, 18³, 10³, 6³, 4³ with 2-cell periodic padding per
//! dim) plus NPB's allocation slack — 46480 elements at class S.
//!
//! The paper's findings this port reproduces exactly:
//!
//! * `u`: the finest level (34³ = 39304 elements) is read by
//!   `interp`/`resid`; every coarse level is zeroed (`zero3`) before any
//!   read, and the tail padding is never touched ⇒ 7176 uncritical
//!   (Fig. 4: one critical block, then one uncritical block).
//! * `r`: the first post-checkpoint reader is the restriction `rprj3`,
//!   whose stencil covers fine indices `0..=32` per dimension ⇒
//!   33³ = 35937 critical, 10543 uncritical (Table II), appearing as the
//!   period-34 repetitive pattern of Fig. 5. The running text's 10479 is
//!   inconsistent with the paper's own table; see EXPERIMENTS.md.

use crate::common::Randlc;
use scrutiny_ad::{Adj, Real};
use scrutiny_core::{AppSpec, CkptSite, RunOutcome, ScrutinyApp, VarRefMut, VarSpec};

/// Stencil weights by neighbor class (center, face, edge, corner).
type Weights = [f64; 4];

/// NPB's Poisson operator coefficients `a`.
const A_STENCIL: Weights = [-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0];
/// NPB's class-S smoother coefficients `c`.
const C_STENCIL: Weights = [-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0];

/// The MG benchmark.
pub struct Mg {
    /// Number of levels (finest grid is `2^lt` interior cells per dim).
    pub lt: usize,
    /// Main-loop (V-cycle) iterations.
    pub nit: usize,
    /// Main-loop index at whose boundary the checkpoint is taken (1-based).
    pub ckpt_at: usize,
    /// Per-level padded dimension `m[k] = 2^k + 2` (index 0 unused).
    m: Vec<usize>,
    /// Per-level offset into the flat arrays, finest (`lt`) first.
    ir: Vec<usize>,
    /// Total flat length including allocation slack.
    total: usize,
    /// Right-hand side (charges at random cells), finest level only.
    /// Program input: regenerated at restart, constant under AD.
    v: Vec<f64>,
}

impl Mg {
    /// Class S: 32³, 5 levels, 4 iterations, arrays padded to NPB's 46480
    /// allocation; checkpoint before the final V-cycle.
    pub fn class_s() -> Self {
        Self::new(5, 4, 4, Some(46_480))
    }

    /// A reduced instance (8³, 3 levels) for fast tests.
    pub fn mini() -> Self {
        Self::new(3, 3, 2, None)
    }

    /// General constructor. `pad_to` forces the flat allocation length
    /// (NPB's `NR` formula leaves slack beyond the packed levels).
    pub fn new(lt: usize, nit: usize, ckpt_at: usize, pad_to: Option<usize>) -> Self {
        assert!(lt >= 2, "need at least two levels");
        assert!(
            ckpt_at >= 1 && ckpt_at <= nit,
            "checkpoint must fall inside the main loop"
        );
        let mut m = vec![0usize; lt + 1];
        for (k, mk) in m.iter_mut().enumerate().skip(1) {
            *mk = (1 << k) + 2;
        }
        let mut ir = vec![0usize; lt + 1];
        // Finest-first packing: ir[lt] = 0, then coarser levels.
        let mut off = 0usize;
        for k in (1..=lt).rev() {
            ir[k] = off;
            off += m[k] * m[k] * m[k];
        }
        let total = match pad_to {
            Some(t) => {
                assert!(t >= off, "pad_to {t} smaller than packed levels {off}");
                t
            }
            None => off,
        };
        let nf = m[lt];
        let v = Self::zran3(nf);
        Mg {
            lt,
            nit,
            ckpt_at,
            m,
            ir,
            total,
            v,
        }
    }

    /// Total flat array length (u and r).
    pub fn total_elems(&self) -> usize {
        self.total
    }

    /// Finest-level element count (the expected critical block of `u`).
    pub fn finest_elems(&self) -> usize {
        let n = self.m[self.lt];
        n * n * n
    }

    /// NPB's `zran3` analogue: ±1 charges at pseudo-random interior cells.
    fn zran3(n: usize) -> Vec<f64> {
        let mut v = vec![0.0f64; n * n * n];
        let mut rng = Randlc::new(314_159_265);
        let interior = n - 2;
        let place = |sign: f64, rng: &mut Randlc, v: &mut Vec<f64>| {
            let i3 = 1 + (rng.next() * interior as f64) as usize;
            let i2 = 1 + (rng.next() * interior as f64) as usize;
            let i1 = 1 + (rng.next() * interior as f64) as usize;
            v[(i3 * n + i2) * n + i1] = sign;
        };
        for _ in 0..10 {
            place(1.0, &mut rng, &mut v);
        }
        for _ in 0..10 {
            place(-1.0, &mut rng, &mut v);
        }
        v
    }

    #[inline]
    fn idx(n: usize, i3: usize, i2: usize, i1: usize) -> usize {
        (i3 * n + i2) * n + i1
    }

    /// Zero an entire level (NPB `zero3`).
    fn zero3<R: Real>(buf: &mut [R], n: usize) {
        for x in buf[..n * n * n].iter_mut() {
            *x = R::zero();
        }
    }

    /// Periodic boundary exchange on one level (NPB `comm3`).
    fn comm3<R: Real>(buf: &mut [R], n: usize) {
        // axis 1 (i1): faces copy from the opposite interior plane.
        for i3 in 1..n - 1 {
            for i2 in 1..n - 1 {
                buf[Self::idx(n, i3, i2, 0)] = buf[Self::idx(n, i3, i2, n - 2)];
                buf[Self::idx(n, i3, i2, n - 1)] = buf[Self::idx(n, i3, i2, 1)];
            }
        }
        for i3 in 1..n - 1 {
            for i1 in 0..n {
                buf[Self::idx(n, i3, 0, i1)] = buf[Self::idx(n, i3, n - 2, i1)];
                buf[Self::idx(n, i3, n - 1, i1)] = buf[Self::idx(n, i3, 1, i1)];
            }
        }
        for i2 in 0..n {
            for i1 in 0..n {
                buf[Self::idx(n, 0, i2, i1)] = buf[Self::idx(n, n - 2, i2, i1)];
                buf[Self::idx(n, n - 1, i2, i1)] = buf[Self::idx(n, 1, i2, i1)];
            }
        }
    }

    /// Weighted 27-point application: `out[c] (+|=) Σ w[|d|]·inp[c+d]`.
    /// Zero weights are skipped (NPB's `a[1] = 0` case), which also keeps
    /// them off the AD tape.
    fn stencil_sum<R: Real>(
        inp: &[R],
        n: usize,
        i3: usize,
        i2: usize,
        i1: usize,
        w: &Weights,
    ) -> R {
        let mut acc = R::zero();
        for d3 in -1i32..=1 {
            for d2 in -1i32..=1 {
                for d1 in -1i32..=1 {
                    let cls = (d3.abs() + d2.abs() + d1.abs()) as usize;
                    let wk = w[cls];
                    if wk == 0.0 {
                        continue;
                    }
                    let idx = Self::idx(
                        n,
                        (i3 as i32 + d3) as usize,
                        (i2 as i32 + d2) as usize,
                        (i1 as i32 + d1) as usize,
                    );
                    acc += inp[idx] * wk;
                }
            }
        }
        acc
    }

    /// Residual on the finest level: `r = v − A u` (NPB `resid`).
    fn resid_finest<R: Real>(&self, u: &[R], r: &mut [R]) {
        let n = self.m[self.lt];
        for i3 in 1..n - 1 {
            for i2 in 1..n - 1 {
                for i1 in 1..n - 1 {
                    let au = Self::stencil_sum(u, n, i3, i2, i1, &A_STENCIL);
                    r[Self::idx(n, i3, i2, i1)] = R::lit(self.v[Self::idx(n, i3, i2, i1)]) - au;
                }
            }
        }
        Self::comm3(r, n);
    }

    /// In-place level residual: `r ← r − A u` (the coarse-level variant).
    fn resid_level<R: Real>(u: &[R], r: &mut [R], n: usize) {
        for i3 in 1..n - 1 {
            for i2 in 1..n - 1 {
                for i1 in 1..n - 1 {
                    let au = Self::stencil_sum(u, n, i3, i2, i1, &A_STENCIL);
                    let c = Self::idx(n, i3, i2, i1);
                    r[c] -= au;
                }
            }
        }
        Self::comm3(r, n);
    }

    /// Smoother: `u += S r` (NPB `psinv`).
    fn psinv<R: Real>(r: &[R], u: &mut [R], n: usize) {
        for i3 in 1..n - 1 {
            for i2 in 1..n - 1 {
                for i1 in 1..n - 1 {
                    let sr = Self::stencil_sum(r, n, i3, i2, i1, &C_STENCIL);
                    let c = Self::idx(n, i3, i2, i1);
                    u[c] += sr;
                }
            }
        }
        Self::comm3(u, n);
    }

    /// Restriction fine→coarse (NPB `rprj3`): full weighting. Coarse
    /// interior `jc ∈ 1..=nc-2` maps to fine center `2·jc − 1`; the ±1
    /// stencil therefore reads fine indices `0..=nf-2` per dimension —
    /// 33 of 34 at the finest level, which is what shapes Fig. 5.
    fn rprj3<R: Real>(fine: &[R], nf: usize, coarse: &mut [R], nc: usize) {
        const W: Weights = [0.5, 0.25, 0.125, 0.0625];
        for j3 in 1..nc - 1 {
            for j2 in 1..nc - 1 {
                for j1 in 1..nc - 1 {
                    let (f3, f2, f1) = (2 * j3 - 1, 2 * j2 - 1, 2 * j1 - 1);
                    let mut acc = R::zero();
                    for d3 in -1i32..=1 {
                        for d2 in -1i32..=1 {
                            for d1 in -1i32..=1 {
                                let cls = (d3.abs() + d2.abs() + d1.abs()) as usize;
                                let idx = Self::idx(
                                    nf,
                                    (f3 as i32 + d3) as usize,
                                    (f2 as i32 + d2) as usize,
                                    (f1 as i32 + d1) as usize,
                                );
                                acc += fine[idx] * W[cls];
                            }
                        }
                    }
                    coarse[Self::idx(nc, j3, j2, j1)] = acc;
                }
            }
        }
        Self::comm3(coarse, nc);
    }

    /// Prolongation coarse→fine (NPB `interp`): trilinear, added into the
    /// fine level. Coarse `jc` aligns with fine `2·jc − 1`.
    fn interp<R: Real>(coarse: &[R], nc: usize, fine: &mut [R], nf: usize) {
        for f3 in 1..nf - 1 {
            for f2 in 1..nf - 1 {
                for f1 in 1..nf - 1 {
                    let mut acc = R::zero();
                    // Per-dim coarse support: odd fine index sits on a
                    // coarse point; even sits between two.
                    let support = |f: usize| -> [(usize, f64); 2] {
                        if f % 2 == 1 {
                            [(f.div_ceil(2), 1.0), (0, 0.0)]
                        } else {
                            [(f / 2, 0.5), (f / 2 + 1, 0.5)]
                        }
                    };
                    for (c3, w3) in support(f3) {
                        if w3 == 0.0 {
                            continue;
                        }
                        for (c2, w2) in support(f2) {
                            if w2 == 0.0 {
                                continue;
                            }
                            for (c1, w1) in support(f1) {
                                if w1 == 0.0 {
                                    continue;
                                }
                                acc += coarse[Self::idx(nc, c3, c2, c1)] * (w3 * w2 * w1);
                            }
                        }
                    }
                    let c = Self::idx(nf, f3, f2, f1);
                    fine[c] += acc;
                }
            }
        }
        // NPB's serial `interp` performs no boundary exchange: the fine
        // faces keep their prior values until the next smoother's comm3.
        // (Adding one here would overwrite u's faces before `resid` reads
        // them and silently flip 34³−32³ elements to uncritical.)
    }

    /// RMS norm over a level's interior (NPB `norm2u3`'s rnm2).
    fn l2norm<R: Real>(buf: &[R], n: usize) -> R {
        let mut s = R::zero();
        for i3 in 1..n - 1 {
            for i2 in 1..n - 1 {
                for i1 in 1..n - 1 {
                    let x = buf[Self::idx(n, i3, i2, i1)];
                    s += x * x;
                }
            }
        }
        let count = ((n - 2) * (n - 2) * (n - 2)) as f64;
        (s / count).sqrt()
    }

    /// One V-cycle (NPB `mg3P`).
    fn mg3p<R: Real>(&self, u: &mut [R], r: &mut [R]) {
        let (lt, lb) = (self.lt, 1);
        // Down sweep: restrict the residual to the coarsest level.
        for k in ((lb + 1)..=lt).rev() {
            let (nf, nc) = (self.m[k], self.m[k - 1]);
            // Coarser levels sit after finer ones in the flat packing.
            let (left, right) = r.split_at_mut(self.ir[k - 1]);
            let fine = &left[self.ir[k]..self.ir[k] + nf * nf * nf];
            let coarse = &mut right[..nc * nc * nc];
            Self::rprj3(fine, nf, coarse, nc);
        }
        // Coarsest: u = 0, then smooth.
        {
            let n = self.m[lb];
            let ul = &mut u[self.ir[lb]..self.ir[lb] + n * n * n];
            Self::zero3(ul, n);
            Self::psinv(&r[self.ir[lb]..self.ir[lb] + n * n * n], ul, n);
        }
        // Up sweep.
        for k in (lb + 1)..=lt {
            let (nc, nf) = (self.m[k - 1], self.m[k]);
            let coarse_off = self.ir[k - 1];
            let fine_off = self.ir[k];
            if k < lt {
                // zero, prolongate, correct residual, smooth.
                {
                    let (left, right) = u.split_at_mut(coarse_off);
                    let fine = &mut left[fine_off..fine_off + nf * nf * nf];
                    Self::zero3(fine, nf);
                    Self::interp(&right[..nc * nc * nc], nc, fine, nf);
                }
                let uf = &u[fine_off..fine_off + nf * nf * nf];
                Self::resid_level(uf, &mut r[fine_off..fine_off + nf * nf * nf], nf);
                Self::psinv(
                    &r[fine_off..fine_off + nf * nf * nf],
                    &mut u[fine_off..fine_off + nf * nf * nf],
                    nf,
                );
            } else {
                // Finest level: the correction is *added* to u (no zero3).
                {
                    let (left, right) = u.split_at_mut(coarse_off);
                    let fine = &mut left[fine_off..fine_off + nf * nf * nf];
                    Self::interp(&right[..nc * nc * nc], nc, fine, nf);
                }
                self.resid_finest(&u[..nf * nf * nf], &mut r[..nf * nf * nf]);
                Self::psinv(&r[..nf * nf * nf], &mut u[..nf * nf * nf], nf);
            }
        }
    }

    fn run_generic<R: Real>(&self, site: &mut dyn CkptSite<R>) -> RunOutcome<R> {
        let n = self.m[self.lt];
        let mut u: Vec<R> = vec![R::zero(); self.total];
        let mut r: Vec<R> = vec![R::zero(); self.total];
        let mut it_state = vec![0i64];

        // Setup: u = 0, r = v - A·0 = v.
        self.resid_finest(&u[..n * n * n], &mut r[..n * n * n]);

        for it in 1..=self.nit {
            if it == self.ckpt_at {
                it_state[0] = it as i64;
                let mut views = [
                    VarRefMut::F64(&mut u),
                    VarRefMut::F64(&mut r),
                    VarRefMut::I64(&mut it_state),
                ];
                site.at_boundary(it, &mut views);
            }
            self.mg3p(&mut u, &mut r);
            // Recompute the true residual of the updated solution.
            self.resid_finest(&u[..n * n * n], &mut r[..n * n * n]);
        }
        RunOutcome {
            output: Self::l2norm(&r[..n * n * n], n),
        }
    }
}

impl ScrutinyApp for Mg {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "MG".into(),
            class: if self.lt == 5 {
                "S".into()
            } else {
                format!("lt={}", self.lt)
            },
            vars: vec![
                VarSpec::f64("u", &[self.total]),
                VarSpec::f64("r", &[self.total]),
                VarSpec::int_scalar("it"),
            ],
        }
    }

    fn checkpoint_iter(&self) -> usize {
        self.ckpt_at
    }

    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64> {
        self.run_generic(site)
    }

    fn run_ad(&self, site: &mut dyn CkptSite<Adj>) -> RunOutcome<Adj> {
        self.run_generic(site)
    }

    fn tape_capacity_hint(&self) -> usize {
        let remaining = self.nit - self.ckpt_at + 1;
        let nf = self.m[self.lt];
        remaining * nf * nf * nf * 110 + (1 << 16)
    }

    fn tolerance(&self) -> f64 {
        1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::site::NoopSite;
    use scrutiny_core::{scrutinize, Policy, RestartConfig};

    #[test]
    fn level_layout_matches_paper_totals() {
        let mg = Mg::class_s();
        assert_eq!(mg.m[5], 34);
        assert_eq!(mg.m[1], 4);
        assert_eq!(mg.ir[5], 0);
        assert_eq!(mg.ir[4], 34 * 34 * 34);
        assert_eq!(mg.total_elems(), 46_480);
        assert_eq!(mg.finest_elems(), 39_304);
    }

    #[test]
    fn vcycles_reduce_the_residual() {
        let mg = Mg::mini();
        // Residual norm of u=0 is ‖v‖; after nit V-cycles it must shrink.
        let n = mg.m[mg.lt];
        let zero = vec![0.0f64; n * n * n];
        let mut r0 = vec![0.0f64; n * n * n];
        mg.resid_finest(&zero, &mut r0);
        let initial = Mg::l2norm(&r0, n);
        let out = mg.run_f64(&mut NoopSite).output;
        assert!(
            out < initial,
            "V-cycles failed to reduce the residual: {out} vs {initial}"
        );
    }

    #[test]
    fn deterministic() {
        let mg = Mg::mini();
        assert_eq!(
            mg.run_f64(&mut NoopSite).output,
            mg.run_f64(&mut NoopSite).output
        );
    }

    #[test]
    fn mini_criticality_structure() {
        let mg = Mg::mini();
        let report = scrutinize(&mg).unwrap();
        let nf = mg.m[mg.lt];
        let finest = nf * nf * nf;
        let u = report.var("u").unwrap();
        // u: finest level fully critical, all coarse levels uncritical.
        assert_eq!(u.critical(), finest);
        for i in finest..mg.total_elems() {
            assert!(!u.value_map.get(i), "coarse u[{i}] must be uncritical");
        }
        // r: per-dim reads 0..=nf-2 ⇒ (nf-1)³ critical.
        let rr = report.var("r").unwrap();
        assert_eq!(rr.critical(), (nf - 1) * (nf - 1) * (nf - 1));
    }

    #[test]
    fn restart_with_garbage_holes_verifies() {
        let mg = Mg::mini();
        let analysis = scrutinize(&mg).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            ..Default::default()
        };
        let report = scrutiny_core::checkpoint_restart_cycle(&mg, &analysis, &cfg).unwrap();
        assert!(report.verified, "rel err {}", report.rel_err);
    }
}
