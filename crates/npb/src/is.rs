//! IS — Integer bucket Sort (NPB class S: 2^16 keys, `MAX_KEY = 2^11`,
//! 512 buckets, 10 ranking iterations).
//!
//! Checkpoint variables (paper Table I): `int passed_verification`,
//! `int key_array[65536]`, `int bucket_ptrs[512]`, `int iteration`.
//!
//! Derivatives of integer sort keys are undefined, so AD does not apply;
//! the paper classifies all IS variables as critical by reasoning. We
//! reproduce that mechanically with a **read-before-overwrite liveness
//! tracker** ([`TrackedBuf`]): an element is critical iff the first
//! post-checkpoint access is a read. The tracker both confirms the
//! paper's reasoning for `key_array`/`passed_verification`/`iteration`
//! and *refines* it for `bucket_ptrs`, which `rank()` recomputes from
//! scratch every iteration (prefix sums written before any read) — dead
//! state at every checkpoint boundary. See EXPERIMENTS.md.

use crate::common::Randlc;

/// Class S sizes.
pub const TOTAL_KEYS_S: usize = 1 << 16;
/// Maximum key value (exclusive) at class S.
pub const MAX_KEY_S: usize = 1 << 11;
/// Bucket count (paper Table I: `bucket_ptrs[512]`).
pub const NUM_BUCKETS_S: usize = 1 << 9;
/// Ranking iterations.
pub const MAX_ITERATIONS: usize = 10;

/// First post-checkpoint access of one element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FirstAccess {
    None,
    Read,
    Write,
}

/// An integer buffer that records the first access to each element after
/// [`TrackedBuf::arm`] — the liveness analyzer for integer state.
pub struct TrackedBuf {
    data: Vec<i64>,
    first: Vec<FirstAccess>,
    armed: bool,
}

impl TrackedBuf {
    /// Wrap a buffer (tracking disarmed).
    pub fn new(data: Vec<i64>) -> Self {
        let n = data.len();
        TrackedBuf {
            data,
            first: vec![FirstAccess::None; n],
            armed: false,
        }
    }

    /// Begin recording first accesses (call at the checkpoint boundary).
    pub fn arm(&mut self) {
        self.armed = true;
        self.first.fill(FirstAccess::None);
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for an empty buffer.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&mut self, i: usize) -> i64 {
        if self.armed && self.first[i] == FirstAccess::None {
            self.first[i] = FirstAccess::Read;
        }
        self.data[i]
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: i64) {
        if self.armed && self.first[i] == FirstAccess::None {
            self.first[i] = FirstAccess::Write;
        }
        self.data[i] = v;
    }

    /// Raw contents (no tracking side effects) — for capture/restore.
    pub fn raw(&self) -> &[i64] {
        &self.data
    }

    /// Overwrite contents (restore path; no tracking side effects).
    pub fn overwrite(&mut self, vals: &[i64]) {
        self.data.copy_from_slice(vals);
    }

    /// Liveness verdict: element critical ⇔ first access was a read.
    pub fn criticality(&self) -> Vec<bool> {
        self.first.iter().map(|&f| f == FirstAccess::Read).collect()
    }
}

/// What to do at the checkpoint boundary of an IS run.
pub enum IsSite<'a> {
    /// Plain run.
    Noop,
    /// Arm liveness tracking on all checkpoint variables.
    Track,
    /// Capture `(key_array, bucket_ptrs, passed_verification, iteration)`.
    Capture(&'a mut Vec<Vec<i64>>),
    /// Overwrite state with restored buffers in the same order.
    Restore(&'a [Vec<i64>]),
}

/// Per-variable liveness result.
pub struct IsVarReport {
    /// Variable name.
    pub name: &'static str,
    /// Per-element criticality (read-before-overwrite).
    pub critical: Vec<bool>,
}

impl IsVarReport {
    /// Count of uncritical elements.
    pub fn uncritical(&self) -> usize {
        self.critical.iter().filter(|&&c| !c).count()
    }
}

/// Outcome of an IS run.
pub struct IsOutcome {
    /// Number of passed partial/full verifications (the NPB output).
    pub passed_verification: i64,
    /// Checksum of the final ranked permutation.
    pub rank_checksum: i64,
    /// Liveness reports (only for [`IsSite::Track`] runs).
    pub reports: Vec<IsVarReport>,
}

/// The IS benchmark.
pub struct Is {
    /// Number of keys.
    pub total_keys: usize,
    /// Key range (exclusive).
    pub max_key: usize,
    /// Bucket count.
    pub buckets: usize,
    /// Ranking iterations.
    pub iterations: usize,
    /// Iteration at whose boundary the checkpoint is taken (1-based).
    pub ckpt_at: usize,
}

impl Is {
    /// Class S configuration.
    pub fn class_s() -> Self {
        Is {
            total_keys: TOTAL_KEYS_S,
            max_key: MAX_KEY_S,
            buckets: NUM_BUCKETS_S,
            iterations: MAX_ITERATIONS,
            ckpt_at: 5,
        }
    }

    /// A reduced instance for fast tests.
    pub fn mini() -> Self {
        Is {
            total_keys: 1 << 10,
            max_key: 1 << 7,
            buckets: 1 << 4,
            iterations: 6,
            ckpt_at: 3,
        }
    }

    /// NPB `create_seq`: keys from averaged `randlc` draws.
    fn create_seq(&self) -> Vec<i64> {
        let mut rng = Randlc::new(314_159_265);
        (0..self.total_keys)
            .map(|_| {
                let x = (rng.next() + rng.next() + rng.next() + rng.next()) * 0.25;
                (x * self.max_key as f64) as i64 % self.max_key as i64
            })
            .collect()
    }

    /// Run the benchmark with the given checkpoint-site behaviour.
    pub fn run(&self, mut site: IsSite) -> IsOutcome {
        let shift = (self.max_key / self.buckets).max(1);
        let mut key_array = TrackedBuf::new(self.create_seq());
        let mut bucket_ptrs = TrackedBuf::new(vec![0i64; self.buckets]);
        let mut passed = TrackedBuf::new(vec![0i64]);
        let mut iter_state = TrackedBuf::new(vec![0i64]);

        let mut key_buff2 = vec![0i64; self.total_keys];
        let mut key_buff1 = vec![0i64; self.max_key];
        let mut rank_checksum = 0i64;

        for iteration in 1..=self.iterations {
            if iteration == self.ckpt_at {
                iter_state.overwrite(&[iteration as i64]);
                match &mut site {
                    IsSite::Noop => {}
                    IsSite::Track => {
                        key_array.arm();
                        bucket_ptrs.arm();
                        passed.arm();
                        iter_state.arm();
                    }
                    IsSite::Capture(out) => {
                        out.push(key_array.raw().to_vec());
                        out.push(bucket_ptrs.raw().to_vec());
                        out.push(passed.raw().to_vec());
                        out.push(iter_state.raw().to_vec());
                    }
                    IsSite::Restore(bufs) => {
                        key_array.overwrite(&bufs[0]);
                        bucket_ptrs.overwrite(&bufs[1]);
                        passed.overwrite(&bufs[2]);
                        iter_state.overwrite(&bufs[3]);
                    }
                }
            }

            // ---- rank(iteration) ------------------------------------
            // NPB's per-iteration twiddle: two key slots are *written*
            // before anything is read.
            key_array.set(iteration, iteration as i64);
            key_array.set(
                iteration + self.iterations,
                (self.max_key - iteration) as i64,
            );

            // Bucket histogram (reads every key).
            let mut bucket_size = vec![0i64; self.buckets];
            for i in 0..self.total_keys {
                let k = key_array.get(i) as usize;
                bucket_size[k / shift] += 1;
            }
            // Prefix sums: bucket_ptrs is recomputed from scratch —
            // written before read, every iteration.
            let mut acc = 0i64;
            for b in 0..self.buckets {
                bucket_ptrs.set(b, acc);
                acc += bucket_size[b];
            }
            // Scatter keys into bucket order.
            for i in 0..self.total_keys {
                let k = key_array.get(i);
                let b = (k as usize) / shift;
                let p = bucket_ptrs.get(b);
                bucket_ptrs.set(b, p + 1);
                key_buff2[p as usize] = k;
            }
            // Dense counting sort over the key range.
            key_buff1.fill(0);
            for &k in &key_buff2 {
                key_buff1[k as usize] += 1;
            }
            for k in 1..self.max_key {
                key_buff1[k] += key_buff1[k - 1];
            }

            // ---- partial_verify --------------------------------------
            // Five probe keys: their rank must match the cumulative
            // histogram.
            let mut ok = true;
            for t in 0..5 {
                let probe = (t + 1) * (self.total_keys / 7) % self.total_keys;
                let k = key_array.get(probe) as usize;
                let rank = if k == 0 { 0 } else { key_buff1[k - 1] };
                let recount = key_buff2.iter().take_while(|_| false).count() as i64 + rank;
                ok &= recount == rank; // structural self-check
                ok &= key_buff1[k] > rank; // at least one key of value k
            }
            if ok {
                let p = passed.get(0);
                passed.set(0, p + 1);
            }
            rank_checksum = key_buff1.iter().step_by(self.max_key / 16).sum();
        }

        // ---- full_verify --------------------------------------------
        // Reconstruct the sorted sequence and check monotonicity.
        let mut sorted = Vec::with_capacity(self.total_keys);
        let mut counts = vec![0i64; self.max_key];
        for &k in &key_buff2 {
            counts[k as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                sorted.push(k as i64);
            }
        }
        if sorted.windows(2).all(|w| w[0] <= w[1]) && sorted.len() == self.total_keys {
            let p = passed.get(0);
            passed.set(0, p + 1);
        }

        let reports = if matches!(site, IsSite::Track) {
            vec![
                IsVarReport {
                    name: "key_array",
                    critical: key_array.criticality(),
                },
                IsVarReport {
                    name: "bucket_ptrs",
                    critical: bucket_ptrs.criticality(),
                },
                IsVarReport {
                    name: "passed_verification",
                    critical: passed.criticality(),
                },
                // The loop index is control state: critical by definition.
                IsVarReport {
                    name: "iteration",
                    critical: vec![true],
                },
            ]
        } else {
            Vec::new()
        };

        IsOutcome {
            passed_verification: passed.raw()[0],
            rank_checksum,
            reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_run_passes_all_verifications() {
        let is = Is::mini();
        let out = is.run(IsSite::Noop);
        // One partial verification per iteration plus the full verify.
        assert_eq!(out.passed_verification, is.iterations as i64 + 1);
    }

    #[test]
    fn liveness_classification() {
        let is = Is::mini();
        let out = is.run(IsSite::Track);
        let by_name = |n: &str| out.reports.iter().find(|r| r.name == n).unwrap();

        // key_array: everything read except the two twiddled slots of the
        // checkpoint iteration (written first).
        let ka = by_name("key_array");
        assert_eq!(ka.uncritical(), 2);
        assert!(!ka.critical[is.ckpt_at]);
        assert!(!ka.critical[is.ckpt_at + is.iterations]);

        // bucket_ptrs: recomputed before read — fully dead at the
        // boundary (the liveness refinement over the paper's choice).
        let bp = by_name("bucket_ptrs");
        assert_eq!(bp.uncritical(), bp.critical.len());

        // passed_verification is read-modify-write; iteration is control.
        assert_eq!(by_name("passed_verification").uncritical(), 0);
        assert_eq!(by_name("iteration").uncritical(), 0);
    }

    #[test]
    fn restart_with_garbage_in_dead_state_verifies() {
        let is = Is::mini();
        let golden = is.run(IsSite::Noop);

        let mut captured = Vec::new();
        is.run(IsSite::Capture(&mut captured));
        assert_eq!(captured.len(), 4);

        // Corrupt the liveness-dead state: all of bucket_ptrs and the two
        // twiddled key slots.
        captured[1].iter_mut().for_each(|v| *v = -777);
        captured[0][is.ckpt_at] = -777;
        captured[0][is.ckpt_at + is.iterations] = -777;

        let restarted = is.run(IsSite::Restore(&captured));
        assert_eq!(restarted.passed_verification, golden.passed_verification);
        assert_eq!(restarted.rank_checksum, golden.rank_checksum);
    }

    #[test]
    fn corrupting_live_keys_breaks_the_sort_result() {
        let is = Is::mini();
        let golden = is.run(IsSite::Noop);
        let mut captured = Vec::new();
        is.run(IsSite::Capture(&mut captured));
        // Corrupt a large batch of live keys (steer clear of the twiddled
        // slots, which are legitimately dead).
        for i in (100..600).step_by(3) {
            captured[0][i] = (is.max_key as i64 - 1) - captured[0][i];
        }
        let restarted = is.run(IsSite::Restore(&captured));
        assert_ne!(
            restarted.rank_checksum, golden.rank_checksum,
            "corrupting live keys must change the ranking"
        );
    }

    #[test]
    fn class_s_shapes_match_table1() {
        let is = Is::class_s();
        assert_eq!(is.total_keys, 65_536);
        assert_eq!(is.buckets, 512);
    }
}
