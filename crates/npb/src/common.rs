//! Shared NPB infrastructure: the `randlc` linear congruential generator,
//! multi-dimensional array views with C (row-major) layout, and a CSR
//! sparse matrix for CG.

use scrutiny_ad::Real;
use std::ops::{Index, IndexMut};

/// NPB's default multiplier `a = 5^13`.
pub const RANDLC_A: u64 = 1_220_703_125;
/// NPB's default seed.
pub const RANDLC_SEED: u64 = 314_159_265;
const M46: u64 = (1 << 46) - 1;

/// NPB's `randlc` pseudo-random generator: `x ← a·x mod 2^46`, returning
/// `x / 2^46 ∈ (0, 1)`. Implemented in exact integer arithmetic (the
/// original uses double-double tricks to emulate exactly this).
#[derive(Clone, Copy, Debug)]
pub struct Randlc {
    x: u64,
    a: u64,
}

impl Randlc {
    /// Generator with NPB's default multiplier.
    pub fn new(seed: u64) -> Self {
        Randlc {
            x: seed & M46,
            a: RANDLC_A,
        }
    }

    /// Generator with an explicit multiplier (both mod 2^46).
    pub fn with_multiplier(seed: u64, a: u64) -> Self {
        Randlc {
            x: seed & M46,
            a: a & M46,
        }
    }

    /// Next uniform deviate in (0, 1).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> f64 {
        self.x = mulmod46(self.a, self.x);
        self.x as f64 / (1u64 << 46) as f64
    }

    /// Current raw state (for checkpoint-free reseeding).
    pub fn state(&self) -> u64 {
        self.x
    }

    /// Fill a slice with deviates (NPB's `vranlc`).
    pub fn fill(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.next();
        }
    }

    /// Jump the state forward by `n` steps in O(log n) (used by EP to give
    /// every batch an independent, reproducible seed).
    pub fn jump(seed: u64, a: u64, n: u64) -> u64 {
        mulmod46(powmod46(a, n), seed & M46)
    }
}

#[inline]
fn mulmod46(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) & M46 as u128) as u64
}

fn powmod46(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base &= M46;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod46(acc, base);
        }
        base = mulmod46(base, base);
        exp >>= 1;
    }
    acc
}

/// A 3-D array in C row-major order (`[k][j][i]`, `i` fastest), matching
/// NPB's declarations so flattened element indices line up with the
/// paper's figures.
#[derive(Clone, Debug)]
pub struct Arr3<R> {
    data: Vec<R>,
    dims: [usize; 3],
}

impl<R: Real> Arr3<R> {
    /// Zero-initialized array of the given dims.
    pub fn zeros(d0: usize, d1: usize, d2: usize) -> Self {
        Arr3 {
            data: vec![R::zero(); d0 * d1 * d2],
            dims: [d0, d1, d2],
        }
    }

    /// Dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Flat view (checkpoint order).
    pub fn flat(&self) -> &[R] {
        &self.data
    }

    /// Mutable flat view (for checkpoint sites).
    pub fn flat_mut(&mut self) -> &mut [R] {
        &mut self.data
    }

    #[inline]
    fn offset(&self, k: usize, j: usize, i: usize) -> usize {
        debug_assert!(k < self.dims[0] && j < self.dims[1] && i < self.dims[2]);
        (k * self.dims[1] + j) * self.dims[2] + i
    }
}

impl<R: Real> Index<(usize, usize, usize)> for Arr3<R> {
    type Output = R;
    #[inline]
    fn index(&self, (k, j, i): (usize, usize, usize)) -> &R {
        &self.data[self.offset(k, j, i)]
    }
}

impl<R: Real> IndexMut<(usize, usize, usize)> for Arr3<R> {
    #[inline]
    fn index_mut(&mut self, (k, j, i): (usize, usize, usize)) -> &mut R {
        let o = self.offset(k, j, i);
        &mut self.data[o]
    }
}

/// A 4-D array in C row-major order (`[k][j][i][m]`, `m` fastest) — the
/// layout of `u[12][13][13][5]` in BT/SP/LU.
#[derive(Clone, Debug)]
pub struct Arr4<R> {
    data: Vec<R>,
    dims: [usize; 4],
}

impl<R: Real> Arr4<R> {
    /// Zero-initialized array of the given dims.
    pub fn zeros(d0: usize, d1: usize, d2: usize, d3: usize) -> Self {
        Arr4 {
            data: vec![R::zero(); d0 * d1 * d2 * d3],
            dims: [d0, d1, d2, d3],
        }
    }

    /// Dimensions.
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// Flat view (checkpoint order).
    pub fn flat(&self) -> &[R] {
        &self.data
    }

    /// Mutable flat view (for checkpoint sites).
    pub fn flat_mut(&mut self) -> &mut [R] {
        &mut self.data
    }

    #[inline]
    fn offset(&self, k: usize, j: usize, i: usize, m: usize) -> usize {
        debug_assert!(k < self.dims[0] && j < self.dims[1] && i < self.dims[2] && m < self.dims[3]);
        ((k * self.dims[1] + j) * self.dims[2] + i) * self.dims[3] + m
    }
}

impl<R: Real> Index<(usize, usize, usize, usize)> for Arr4<R> {
    type Output = R;
    #[inline]
    fn index(&self, (k, j, i, m): (usize, usize, usize, usize)) -> &R {
        &self.data[self.offset(k, j, i, m)]
    }
}

impl<R: Real> IndexMut<(usize, usize, usize, usize)> for Arr4<R> {
    #[inline]
    fn index_mut(&mut self, (k, j, i, m): (usize, usize, usize, usize)) -> &mut R {
        let o = self.offset(k, j, i, m);
        &mut self.data[o]
    }
}

/// Symmetric positive-definite sparse matrix in CSR form, as CG's `makea`
/// produces. Matrix entries are program constants (regenerated at restart
/// from the seed), so under AD they fold to literals and stay off the tape.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    n: usize,
    rowptr: Vec<usize>,
    col: Vec<u32>,
    val: Vec<f64>,
}

impl SparseMatrix {
    /// NPB-style random SPD matrix: `nonzer` off-diagonal entries per row
    /// (symmetrized), diagonal = |row| sum + `shift` (strict diagonal
    /// dominance ⇒ SPD).
    pub fn random_spd(n: usize, nonzer: usize, shift: f64, seed: u64) -> Self {
        let mut rng = Randlc::new(seed);
        // Collect symmetric off-diagonal entries as (row, col, val).
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for _ in 0..nonzer {
                let j = (rng.next() * n as f64) as usize % n;
                if j == i {
                    continue;
                }
                let v = rng.next() - 0.5;
                entries[i].push((j as u32, v));
                entries[j].push((i as u32, v));
            }
        }
        let mut rowptr = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        rowptr.push(0);
        for (i, row) in entries.iter_mut().enumerate() {
            row.sort_by_key(|&(c, _)| c);
            // Merge duplicate columns.
            let mut merged: Vec<(u32, f64)> = Vec::with_capacity(row.len());
            for &(c, v) in row.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == c => last.1 += v,
                    _ => merged.push((c, v)),
                }
            }
            let offdiag_sum: f64 = merged.iter().map(|&(_, v)| v.abs()).sum();
            // Insert the diagonal in sorted position.
            let mut placed = false;
            for &(c, v) in &merged {
                if !placed && c as usize > i {
                    col.push(i as u32);
                    val.push(offdiag_sum + shift);
                    placed = true;
                }
                col.push(c);
                val.push(v);
            }
            if !placed {
                col.push(i as u32);
                val.push(offdiag_sum + shift);
            }
            rowptr.push(col.len());
        }
        SparseMatrix {
            n,
            rowptr,
            col,
            val,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// `y = A·x` for any differentiable scalar (matrix entries are
    /// literals).
    pub fn spmv<R: Real>(&self, x: &[R], y: &mut [R]) {
        assert!(x.len() >= self.n && y.len() >= self.n);
        for i in 0..self.n {
            let mut acc = R::zero();
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                acc += x[self.col[k] as usize] * self.val[k];
            }
            y[i] = acc;
        }
    }

    /// Symmetry check (testing aid).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                let j = self.col[k] as usize;
                let vij = self.val[k];
                let vji = (self.rowptr[j]..self.rowptr[j + 1])
                    .find(|&kk| self.col[kk] as usize == i)
                    .map(|kk| self.val[kk]);
                match vji {
                    Some(v) if (v - vij).abs() <= tol => {}
                    _ => return false,
                }
            }
        }
        true
    }
}

/// Dot product over differentiable scalars.
pub fn dot<R: Real>(a: &[R], b: &[R]) -> R {
    assert_eq!(a.len(), b.len());
    let mut acc = R::zero();
    for (x, y) in a.iter().zip(b) {
        acc += *x * *y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randlc_range_and_determinism() {
        let mut a = Randlc::new(RANDLC_SEED);
        let mut b = Randlc::new(RANDLC_SEED);
        for _ in 0..1000 {
            let v = a.next();
            assert!(v > 0.0 && v < 1.0);
            assert_eq!(v, b.next());
        }
    }

    #[test]
    fn randlc_mean_is_half() {
        let mut r = Randlc::new(RANDLC_SEED);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn jump_equals_stepping() {
        let mut r = Randlc::new(RANDLC_SEED);
        for _ in 0..137 {
            r.next();
        }
        let jumped = Randlc::jump(RANDLC_SEED, RANDLC_A, 137);
        assert_eq!(r.state(), jumped);
    }

    #[test]
    #[allow(clippy::identity_op)] // spell out the full (i1*d2 + i2)*d3 + i3 layout formula
    fn arr3_layout_is_row_major() {
        let mut a: Arr3<f64> = Arr3::zeros(2, 3, 4);
        a[(1, 2, 3)] = 9.0;
        assert_eq!(a.flat()[(1 * 3 + 2) * 4 + 3], 9.0);
        a[(0, 0, 1)] = 5.0;
        assert_eq!(a.flat()[1], 5.0);
    }

    #[test]
    fn arr4_layout_matches_c_declaration() {
        // u[12][13][13][5]: m fastest, then i, j, k.
        let mut u: Arr4<f64> = Arr4::zeros(12, 13, 13, 5);
        u[(0, 0, 1, 0)] = 1.0;
        assert_eq!(u.flat()[5], 1.0);
        u[(0, 1, 0, 0)] = 2.0;
        assert_eq!(u.flat()[13 * 5], 2.0);
        u[(1, 0, 0, 0)] = 3.0;
        assert_eq!(u.flat()[13 * 13 * 5], 3.0);
        assert_eq!(u.flat().len(), 10140);
    }

    #[test]
    fn spd_matrix_is_symmetric_and_dominant() {
        let m = SparseMatrix::random_spd(100, 5, 10.0, 42);
        assert!(m.is_symmetric(1e-12));
        // Positive-definiteness via a few random Rayleigh quotients.
        let mut rng = Randlc::new(7);
        for _ in 0..5 {
            let x: Vec<f64> = (0..100).map(|_| rng.next() - 0.5).collect();
            let mut y = vec![0.0; 100];
            m.spmv(&x, &mut y);
            assert!(dot(&x, &y) > 0.0);
        }
    }

    #[test]
    fn spmv_identity_behaviour() {
        // shift-only matrix times x scales rows by diag.
        let m = SparseMatrix::random_spd(10, 0, 3.0, 1);
        let x = vec![1.0; 10];
        let mut y = vec![0.0; 10];
        m.spmv(&x, &mut y);
        for v in y {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }
}
