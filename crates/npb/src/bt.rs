//! BT — Block Tri-diagonal ADI solver (NPB class S: 12³ grid, 60 steps).
//!
//! Checkpoint variables (paper Table I): `double u[12][13][13][5]`,
//! `int step`. NPB's loops are bounded by `grid_points = 12` while the
//! j/i dimensions are declared 13, so the planes `j = 12` and `i = 12`
//! are never touched; `error_norm` (paper Fig. 2) reads the full
//! `12³×5` at the end of the run. Result: 8640 critical / 1500 uncritical
//! elements — the cube-surface pattern of Fig. 3 — which this port
//! reproduces element-for-element.
//!
//! Solver structure is NPB's ADI: explicit coupled-flux right-hand side,
//! then implicit block-tridiagonal line solves (5×5 blocks, forward
//! elimination + back substitution) along x, y, z, then `add`. Our
//! implicit Jacobian blocks are state-independent diagonally-dominant
//! approximations (DESIGN.md §4), so the factorization is literal and
//! only right-hand sides carry tape values.

use crate::common::Arr4;
use crate::pde::{
    blend_init, error_norm, mat5_axpy, mat5_identity, BlockTriSolver, ExactSolution, Mat5, GP, GP1,
    NCOMP,
};
use scrutiny_ad::{Adj, Real};
use scrutiny_core::{AppSpec, CkptSite, RunOutcome, ScrutinyApp, VarRefMut, VarSpec};

/// The BT benchmark.
pub struct Bt {
    /// Time steps (`niter`; 60 at class S).
    pub niter: usize,
    /// Step index at whose boundary the checkpoint is taken (1-based).
    pub ckpt_at: usize,
    dt: f64,
    nu: f64,
    coupling: Mat5,
    forcing: Arr4<f64>,
    solver: BlockTriSolver,
    exact: ExactSolution,
}

impl Bt {
    /// Class S: 60 steps; analysis checkpoint near the end (the map is
    /// step-invariant and a late checkpoint keeps the tape small).
    pub fn class_s() -> Self {
        Self::new(60, 58)
    }

    /// Reduced step count for fast tests (state size is class S).
    pub fn mini() -> Self {
        Self::new(8, 4)
    }

    /// General constructor.
    pub fn new(niter: usize, ckpt_at: usize) -> Self {
        assert!(
            ckpt_at >= 1 && ckpt_at <= niter,
            "checkpoint must fall inside the main loop"
        );
        let dt = 0.3;
        let nu = 0.4;
        // Symmetric cross-component coupling: a second diffusion channel.
        let mut coupling = [[0.0; NCOMP]; NCOMP];
        for (i, row) in coupling.iter_mut().enumerate() {
            row[i] = 0.2;
        }
        coupling[0][1] = 0.05;
        coupling[1][0] = 0.05;
        coupling[2][3] = -0.04;
        coupling[3][2] = -0.04;
        coupling[1][4] = 0.03;
        coupling[4][1] = 0.03;

        let exact = ExactSolution;
        let mut bt = Bt {
            niter,
            ckpt_at,
            dt,
            nu,
            coupling,
            forcing: Arr4::zeros(GP, GP1, GP1, NCOMP),
            solver: Self::build_solver(dt, &coupling),
            exact,
        };
        bt.forcing = bt.exact_forcing();
        bt
    }

    /// Implicit line operator `tri(−θB, I + 2θB, −θB)` with
    /// `B = I + coupling` — strictly diagonally dominant for θ < ~0.4.
    fn build_solver(dt: f64, coupling: &Mat5) -> BlockTriSolver {
        let theta = 0.5 * dt;
        let b = mat5_axpy(&mat5_identity(), 1.0, coupling);
        let d = mat5_axpy(&mat5_identity(), 2.0 * theta, &b);
        let mut a = [[0.0; NCOMP]; NCOMP];
        for i in 0..NCOMP {
            for j in 0..NCOMP {
                a[i][j] = -theta * b[i][j];
            }
        }
        BlockTriSolver::factor(GP - 2, &a, &d, &a)
    }

    /// Spatial operator at one interior point: anisotropic Laplacian plus
    /// neighbor-averaged cross-component mixing.
    #[allow(clippy::needless_range_loop)]
    fn spatial_op<R: Real>(&self, u: &Arr4<R>, k: usize, j: usize, i: usize) -> [R; NCOMP] {
        let mut avg = [R::zero(); NCOMP];
        let mut lap = [R::zero(); NCOMP];
        for m in 0..NCOMP {
            let c = u[(k, j, i, m)];
            let sum = u[(k - 1, j, i, m)]
                + u[(k + 1, j, i, m)]
                + u[(k, j - 1, i, m)]
                + u[(k, j + 1, i, m)]
                + u[(k, j, i - 1, m)]
                + u[(k, j, i + 1, m)];
            lap[m] = (sum - c * 6.0) * self.nu;
            avg[m] = sum * (1.0 / 6.0) - c;
        }
        let mut op = lap;
        for m in 0..NCOMP {
            for n in 0..NCOMP {
                let w = self.coupling[m][n];
                if w != 0.0 {
                    op[m] += avg[n] * w;
                }
            }
        }
        op
    }

    /// Manufactured forcing making the exact solution a steady state:
    /// `f = −op(u_exact)`, evaluated once (program constant).
    fn exact_forcing(&self) -> Arr4<f64> {
        let mut ue: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        for k in 0..GP {
            for j in 0..GP {
                for i in 0..GP {
                    let e = self.exact.eval(
                        ExactSolution::coord(i),
                        ExactSolution::coord(j),
                        ExactSolution::coord(k),
                    );
                    for m in 0..NCOMP {
                        ue[(k, j, i, m)] = e[m];
                    }
                }
            }
        }
        let mut f: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        for k in 1..GP - 1 {
            for j in 1..GP - 1 {
                for i in 1..GP - 1 {
                    let op = self.spatial_op(&ue, k, j, i);
                    for m in 0..NCOMP {
                        f[(k, j, i, m)] = -op[m];
                    }
                }
            }
        }
        f
    }

    /// `compute_rhs`: `rhs = dt·(op(u) + forcing)` over the interior.
    fn compute_rhs<R: Real>(&self, u: &Arr4<R>, rhs: &mut Arr4<R>) {
        for k in 1..GP - 1 {
            for j in 1..GP - 1 {
                for i in 1..GP - 1 {
                    let op = self.spatial_op(u, k, j, i);
                    for m in 0..NCOMP {
                        rhs[(k, j, i, m)] = (op[m] + self.forcing[(k, j, i, m)]) * self.dt;
                    }
                }
            }
        }
    }

    /// One implicit line solve along the given direction (0 = x, 1 = y,
    /// 2 = z), NPB's `x_solve`/`y_solve`/`z_solve`.
    fn line_solve<R: Real>(&self, rhs: &mut Arr4<R>, dir: usize) {
        let n = GP - 2;
        let mut line: Vec<[R; NCOMP]> = vec![[R::zero(); NCOMP]; n];
        for a in 1..GP - 1 {
            for b in 1..GP - 1 {
                for (l, cell) in line.iter_mut().enumerate() {
                    let idx = Self::line_index(dir, a, b, l + 1);
                    for m in 0..NCOMP {
                        cell[m] = rhs[(idx.0, idx.1, idx.2, m)];
                    }
                }
                self.solver.solve(&mut line);
                for (l, cell) in line.iter().enumerate() {
                    let idx = Self::line_index(dir, a, b, l + 1);
                    for m in 0..NCOMP {
                        rhs[(idx.0, idx.1, idx.2, m)] = cell[m];
                    }
                }
            }
        }
    }

    #[inline]
    fn line_index(dir: usize, a: usize, b: usize, l: usize) -> (usize, usize, usize) {
        match dir {
            0 => (a, b, l), // x: line along i at (k=a, j=b)
            1 => (a, l, b), // y: line along j at (k=a, i=b)
            _ => (l, a, b), // z: line along k at (j=a, i=b)
        }
    }

    /// `add`: fold the solved increment into the solution.
    fn add<R: Real>(u: &mut Arr4<R>, rhs: &Arr4<R>) {
        for k in 1..GP - 1 {
            for j in 1..GP - 1 {
                for i in 1..GP - 1 {
                    for m in 0..NCOMP {
                        let inc = rhs[(k, j, i, m)];
                        u[(k, j, i, m)] += inc;
                    }
                }
            }
        }
    }

    /// RMS of the increment field (NPB's `rhs_norm` role).
    fn rhs_norm<R: Real>(rhs: &Arr4<R>) -> R {
        let mut s = R::zero();
        for k in 1..GP - 1 {
            for j in 1..GP - 1 {
                for i in 1..GP - 1 {
                    for m in 0..NCOMP {
                        let v = rhs[(k, j, i, m)];
                        s += v * v;
                    }
                }
            }
        }
        (s / ((GP - 2) * (GP - 2) * (GP - 2) * NCOMP) as f64).sqrt()
    }

    fn run_generic<R: Real>(&self, site: &mut dyn CkptSite<R>) -> RunOutcome<R> {
        let mut u: Arr4<R> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        blend_init(&mut u, &self.exact);
        let mut rhs: Arr4<R> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        let mut step_state = vec![0i64];

        for step in 1..=self.niter {
            if step == self.ckpt_at {
                step_state[0] = step as i64;
                let mut views = [
                    VarRefMut::F64(u.flat_mut()),
                    VarRefMut::I64(&mut step_state),
                ];
                site.at_boundary(step, &mut views);
            }
            self.compute_rhs(&u, &mut rhs);
            self.line_solve(&mut rhs, 0);
            self.line_solve(&mut rhs, 1);
            self.line_solve(&mut rhs, 2);
            Self::add(&mut u, &rhs);
        }

        // Verification quantities, as in NPB: solution error norms over
        // the full 12³ (Fig. 2's error_norm) plus the residual norm.
        let err = error_norm(&u, &self.exact);
        let mut out = Self::rhs_norm(&rhs);
        for e in err {
            out += e;
        }
        RunOutcome { output: out }
    }

    /// Final solution error (testing aid): RMS over all components.
    pub fn final_error(&self) -> f64 {
        let mut u: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        blend_init(&mut u, &self.exact);
        let mut rhs: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        for _ in 1..=self.niter {
            self.compute_rhs(&u, &mut rhs);
            self.line_solve(&mut rhs, 0);
            self.line_solve(&mut rhs, 1);
            self.line_solve(&mut rhs, 2);
            Self::add(&mut u, &rhs);
        }
        error_norm(&u, &self.exact).iter().sum()
    }
}

impl ScrutinyApp for Bt {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "BT".into(),
            class: "S".into(),
            vars: vec![
                VarSpec::f64("u", &[GP, GP1, GP1, NCOMP]),
                VarSpec::int_scalar("step"),
            ],
        }
    }

    fn checkpoint_iter(&self) -> usize {
        self.ckpt_at
    }

    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64> {
        self.run_generic(site)
    }

    fn run_ad(&self, site: &mut dyn CkptSite<Adj>) -> RunOutcome<Adj> {
        self.run_generic(site)
    }

    fn tape_capacity_hint(&self) -> usize {
        let remaining = self.niter - self.ckpt_at + 1;
        remaining * 900_000 + 200_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::site::NoopSite;
    use scrutiny_core::{scrutinize, Policy, RestartConfig};

    #[test]
    fn adi_converges_toward_exact_solution() {
        let short = Bt::new(2, 1).final_error();
        let long = Bt::new(40, 1).final_error();
        assert!(
            long < 0.5 * short,
            "ADI failed to converge: err(2 steps) = {short}, err(40) = {long}"
        );
    }

    #[test]
    fn deterministic() {
        let bt = Bt::mini();
        assert_eq!(
            bt.run_f64(&mut NoopSite).output,
            bt.run_f64(&mut NoopSite).output
        );
    }

    #[test]
    fn criticality_matches_paper_counts() {
        let bt = Bt::mini();
        let report = scrutinize(&bt).unwrap();
        let u = report.var("u").unwrap();
        assert_eq!(u.total(), 10_140);
        assert_eq!(u.critical(), 8_640, "critical must be 12³×5");
        assert_eq!(
            u.uncritical(),
            1_500,
            "uncritical must be the j=12/i=12 planes"
        );
        // Verify the geometric pattern: uncritical ⇔ j == 12 or i == 12.
        for k in 0..GP {
            for j in 0..GP1 {
                for i in 0..GP1 {
                    for m in 0..NCOMP {
                        let flat = ((k * GP1 + j) * GP1 + i) * NCOMP + m;
                        let expect_critical = j < GP && i < GP;
                        assert_eq!(
                            u.value_map.get(flat),
                            expect_critical,
                            "u[{k}][{j}][{i}][{m}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn restart_with_garbage_holes_verifies() {
        let bt = Bt::mini();
        let analysis = scrutinize(&bt).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            ..Default::default()
        };
        let report = scrutiny_core::checkpoint_restart_cycle(&bt, &analysis, &cfg).unwrap();
        assert!(report.verified, "rel err {}", report.rel_err);
    }

    #[test]
    fn criticality_stable_across_checkpoint_positions() {
        let a = scrutinize(&Bt::new(6, 2)).unwrap();
        let b = scrutinize(&Bt::new(6, 5)).unwrap();
        assert_eq!(a.var("u").unwrap().value_map, b.var("u").unwrap().value_map);
    }
}
