//! EP — Embarrassingly Parallel (NPB class S: `M = 24`, i.e. 2^24
//! Gaussian pairs in 256 batches of 2^16).
//!
//! Checkpoint variables (paper Table I): `double sx`, `double sy`,
//! `double q[10]`, `int k`. All are accumulators over the main (batch)
//! loop, so the paper finds every element critical; this port reproduces
//! that. The random stream itself is recomputed from per-batch seeds and
//! therefore — via the AD engine's constant folding — records *zero* tape
//! nodes, which is what makes whole-run AD of 2^24 samples tractable.

use crate::common::{Randlc, RANDLC_A};
use scrutiny_ad::{Adj, Real};
use scrutiny_core::{AppSpec, CkptSite, RunOutcome, ScrutinyApp, VarRefMut, VarSpec};

/// EP's seed (NPB uses 271828183 for EP).
pub const EP_SEED: u64 = 271_828_183;

/// The EP benchmark.
pub struct Ep {
    /// Pairs per batch (`2^mk`).
    pub nk: usize,
    /// Number of batches (`2^(m − mk)`).
    pub batches: usize,
    /// Batch index at whose boundary the checkpoint is taken.
    pub ckpt_at: usize,
}

impl Ep {
    /// Class S: `M = 24`, `MK = 16` → 256 batches of 65536 pairs.
    pub fn class_s() -> Self {
        Self::new(24, 16, 128)
    }

    /// A reduced instance for fast tests.
    pub fn mini() -> Self {
        Self::new(16, 12, 8)
    }

    /// `m` total log2 pairs, `mk` log2 pairs per batch.
    pub fn new(m: u32, mk: u32, ckpt_at: usize) -> Self {
        assert!(m > mk, "need at least two batches");
        let nk = 1usize << mk;
        let batches = 1usize << (m - mk);
        assert!(
            ckpt_at < batches,
            "checkpoint must fall inside the batch loop"
        );
        Ep {
            nk,
            batches,
            ckpt_at,
        }
    }

    /// Gaussian-acceptance statistics of one batch, in plain f64 (data-
    /// independent of the checkpoint state).
    fn batch_stats(&self, k: usize) -> (f64, f64, [f64; 10]) {
        // Every batch gets an independent seed by jumping the stream
        // 2·nk·k steps, as NPB does with its `randlc` power trick.
        let seed = Randlc::jump(EP_SEED, RANDLC_A, (2 * self.nk * k) as u64);
        let mut rng = Randlc::new(seed);
        let (mut bsx, mut bsy) = (0.0f64, 0.0f64);
        let mut bq = [0.0f64; 10];
        for _ in 0..self.nk {
            let x1 = 2.0 * rng.next() - 1.0;
            let x2 = 2.0 * rng.next() - 1.0;
            let t = x1 * x1 + x2 * x2;
            if t <= 1.0 {
                // Marsaglia polar transform.
                let t2 = (-2.0 * t.ln() / t).sqrt();
                let gx = x1 * t2;
                let gy = x2 * t2;
                let l = (gx.abs().max(gy.abs()) as usize).min(9);
                bq[l] += 1.0;
                bsx += gx;
                bsy += gy;
            }
        }
        (bsx, bsy, bq)
    }

    fn run_generic<R: Real>(&self, site: &mut dyn CkptSite<R>) -> RunOutcome<R> {
        let mut sx = [R::zero()];
        let mut sy = [R::zero()];
        let mut q: Vec<R> = vec![R::zero(); 10];
        let mut k_state = vec![0i64];
        for k in 0..self.batches {
            if k == self.ckpt_at {
                k_state[0] = k as i64;
                let mut views = [
                    VarRefMut::F64(&mut sx),
                    VarRefMut::F64(&mut sy),
                    VarRefMut::F64(&mut q),
                    VarRefMut::I64(&mut k_state),
                ];
                site.at_boundary(k, &mut views);
            }
            let (bsx, bsy, bq) = self.batch_stats(k);
            sx[0] += R::lit(bsx);
            sy[0] += R::lit(bsy);
            for (ql, &b) in q.iter_mut().zip(&bq) {
                *ql += R::lit(b);
            }
        }
        // The verification quantity: sums and all annulus counts (each
        // weighted distinctly so every q bin matters to the output).
        let mut out = sx[0] + sy[0];
        for (l, &ql) in q.iter().enumerate() {
            out += ql * (l as f64 + 1.0) * 1e-3;
        }
        RunOutcome { output: out }
    }
}

impl ScrutinyApp for Ep {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "EP".into(),
            class: if self.batches * self.nk == 1 << 24 {
                "S".into()
            } else {
                format!("n=2^{}", (self.batches * self.nk).trailing_zeros())
            },
            vars: vec![
                VarSpec::f64("sx", &[1]),
                VarSpec::f64("sy", &[1]),
                VarSpec::f64("q", &[10]),
                VarSpec::int_scalar("k"),
            ],
        }
    }

    fn checkpoint_iter(&self) -> usize {
        self.ckpt_at
    }

    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64> {
        self.run_generic(site)
    }

    fn run_ad(&self, site: &mut dyn CkptSite<Adj>) -> RunOutcome<Adj> {
        self.run_generic(site)
    }

    fn tape_capacity_hint(&self) -> usize {
        // Thirteen accumulations per remaining batch plus the output sum.
        (self.batches - self.ckpt_at) * 16 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::site::NoopSite;
    use scrutiny_core::{scrutinize, Policy, RestartConfig};

    #[test]
    fn gaussian_statistics_look_gaussian() {
        let ep = Ep::mini();
        let mut sums = (0.0, 0.0);
        let mut total = 0.0;
        for k in 0..ep.batches {
            let (sx, sy, q) = ep.batch_stats(k);
            sums.0 += sx;
            sums.1 += sy;
            total += q.iter().sum::<f64>();
        }
        let n = (ep.batches * ep.nk) as f64;
        // Acceptance rate of the polar method is π/4 ≈ 0.785.
        assert!((total / n - std::f64::consts::FRAC_PI_4).abs() < 0.01);
        // Means near zero (σ/√n scale).
        assert!(sums.0.abs() / total < 0.05);
        assert!(sums.1.abs() / total < 0.05);
    }

    #[test]
    fn batches_are_independent_of_order() {
        let ep = Ep::mini();
        let a = ep.batch_stats(5);
        let b = ep.batch_stats(5);
        assert_eq!(a.0, b.0);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn all_checkpoint_elements_critical() {
        let ep = Ep::mini();
        let report = scrutinize(&ep).unwrap();
        for var in &report.vars {
            assert_eq!(
                var.uncritical(),
                0,
                "EP accumulator {} should be fully critical",
                var.spec.name
            );
        }
        // Constant folding keeps the tape tiny despite 2^16 samples.
        assert!(
            report.tape_stats.nodes < 10_000,
            "tape exploded: {} nodes",
            report.tape_stats.nodes
        );
    }

    #[test]
    fn restart_is_bit_exact() {
        let ep = Ep::mini();
        let analysis = scrutinize(&ep).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            ..Default::default()
        };
        let report = scrutiny_core::checkpoint_restart_cycle(&ep, &analysis, &cfg).unwrap();
        assert!(report.verified);
        assert_eq!(report.abs_err, 0.0, "accumulator restart must be exact");
    }

    #[test]
    fn ad_and_f64_outputs_agree() {
        let ep = Ep::mini();
        let f = ep.run_f64(&mut NoopSite).output;
        let s = scrutiny_ad::TapeSession::new();
        let a = ep.run_ad(&mut NoopSite).output.value();
        drop(s);
        assert_eq!(f, a);
    }
}
