//! Long-running NPB driver with asynchronous checkpointing: the burn-in
//! wiring of the async engine into the NPB benchmarks.
//!
//! HPC production runs checkpoint *periodically* inside a long main loop;
//! the paper's single-boundary experiment is one period of that loop.
//! [`burn_in`] replays the period `epochs` times against a live
//! [`EngineHandle`]: each epoch captures the app's checkpoint state and
//! `submit`s it — the next epoch's compute then overlaps the previous
//! epoch's serialization and storage, exactly the overlap the engine
//! exists for — and the run ends with a restart-verification from the
//! newest engine-written checkpoint.
//!
//! [`burn_in_recover`] closes the lifecycle loop: burn in, damage the
//! newest checkpoint on the storage tier
//! ([`scrutiny_faultinj::StorageScenario`]), recover the newest version
//! that still verifies, and restart the benchmark trajectory from it.

use crate::{Cg, Ft};
use scrutiny_core::restart::capture_state;
use scrutiny_core::{
    checkpoint_recover_cycle_async, checkpoint_restart_cycle_async, scrutinize_with,
    submit_checkpoint, AnalysisReport, EngineError, EngineHandle, Policy, Recorder, RecoveryConfig,
    RestartConfig, ScrutinyApp, ScrutinyOptions, TapeCheckpointConfig, VarData, VarRecord,
};
use scrutiny_faultinj::StorageScenario;

/// Outcome of one [`burn_in`] run.
#[derive(Clone, Debug)]
pub struct BurnInReport {
    /// Benchmark name (from its spec).
    pub app: String,
    /// Checkpoints submitted (one per epoch) — all resolved.
    pub epochs: usize,
    /// Segments of the analysis tape the burn-in's criticality maps came
    /// from (the record ran through the segmented tape).
    pub tape_segments: usize,
    /// What the analysis sweeps did, **aggregated across both sweeps**
    /// (value + reachability): frontier traffic sums, thread/segment
    /// counts take the maximum. Earlier versions overwrote this with the
    /// value sweep alone, silently dropping the reachability sweep's
    /// share of the analysis cost.
    pub sweep: scrutiny_core::SweepStats,
    /// Stored payload bytes of each epoch, in submission order.
    pub epoch_payload_bytes: Vec<usize>,
    /// Sum of stored payload bytes across all epochs.
    pub payload_bytes: usize,
    /// Did a restart from the newest engine-written checkpoint reproduce
    /// the golden output within the app's tolerance?
    pub verified: bool,
    /// Relative error of that restart.
    pub rel_err: f64,
}

/// Run `epochs` checkpoint periods of `app` through `engine`, then verify
/// by restarting from the engine's newest checkpoint.
pub fn burn_in(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    engine: &EngineHandle,
    epochs: usize,
    policy: Policy,
) -> Result<BurnInReport, EngineError> {
    burn_in_observed(app, analysis, engine, epochs, policy, &Recorder::disabled())
}

/// [`burn_in`] reporting into a [`Recorder`]: each resolved epoch emits
/// an `npb.epoch` event (`epoch`, `version`, `payload_bytes`,
/// `total_bytes`, `wait_us`), so a JSONL dump of the recorder carries
/// the whole per-epoch trajectory. Pass the same recorder the engine
/// was opened with ([`scrutiny_core::EngineConfig::recorder`]) and the
/// epoch events interleave with the engine's submit/publish/commit
/// spans in one log.
pub fn burn_in_observed(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    engine: &EngineHandle,
    epochs: usize,
    policy: Policy,
    rec: &Recorder,
) -> Result<BurnInReport, EngineError> {
    if epochs == 0 {
        return Err(EngineError::InvalidConfig(
            "a burn-in needs at least one epoch".into(),
        ));
    }
    let mut tickets = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        // submit returns as soon as the snapshot is staged; the next
        // epoch's capture run below is the compute that overlaps this
        // epoch's serialization and storage.
        tickets.push(submit_checkpoint(app, analysis, policy, engine)?);
    }
    let mut epoch_payload_bytes = Vec::with_capacity(epochs);
    for (epoch, t) in tickets.into_iter().enumerate() {
        let version = t.version();
        let t0 = rec.now_us();
        let storage = engine.wait(t)?;
        rec.event(
            "npb.epoch",
            &[
                ("epoch", epoch.into()),
                ("version", version.into()),
                ("payload_bytes", storage.payload_bytes.into()),
                ("total_bytes", storage.total().into()),
                ("wait_us", rec.now_us().saturating_sub(t0).into()),
            ],
        );
        epoch_payload_bytes.push(storage.payload_bytes);
    }
    let cfg = RestartConfig {
        policy,
        ..Default::default()
    };
    let report = checkpoint_restart_cycle_async(app, analysis, &cfg, engine)?;
    Ok(BurnInReport {
        app: app.spec().name,
        epochs,
        tape_segments: analysis.tape_stats.segments,
        // Sum, don't overwrite: both sweeps contributed to the maps.
        sweep: analysis.sweep.merged_with(&analysis.reach_sweep),
        payload_bytes: epoch_payload_bytes.iter().sum(),
        epoch_payload_bytes,
        verified: report.verified,
        rel_err: report.rel_err,
    })
}

/// Outcome of one [`burn_in_delta`] run.
#[derive(Clone, Debug)]
pub struct DeltaBurnInReport {
    /// Benchmark name (from its spec).
    pub app: String,
    /// Epochs submitted (base + deltas + rebases) — all resolved.
    pub epochs: usize,
    /// Bytes written by the first (base) epoch.
    pub base_bytes: usize,
    /// Bytes written by each epoch in order (index 0 is the base; rebase
    /// epochs show up as full-sized entries between runs of small
    /// deltas).
    pub epoch_bytes: Vec<usize>,
    /// Total bytes written across all epochs.
    pub total_bytes: usize,
    /// Did a restart from the newest engine-written checkpoint reproduce
    /// the golden output within the app's tolerance?
    pub verified: bool,
    /// Relative error of that restart.
    pub rel_err: f64,
}

/// Apply a small localized update to every variable, the slowly-changing
/// long-loop state delta checkpoints exist for: each epoch perturbs a
/// different 1/16th window of each array (deterministically by epoch), so
/// most pages of the serialized state survive unchanged between epochs.
pub fn perturb_localized(vars: &mut [VarRecord], epoch: usize) {
    for var in vars.iter_mut() {
        let n = var.data.len();
        if n == 0 {
            continue;
        }
        let window = (n / 16).max(1);
        let start = (epoch * window) % n;
        let end = (start + window).min(n);
        match &mut var.data {
            VarData::F64(v) => {
                for x in &mut v[start..end] {
                    *x += 1e-3;
                }
            }
            VarData::C128(v) => {
                for (re, _) in &mut v[start..end] {
                    *re += 1e-3;
                }
            }
            VarData::I64(v) => {
                for x in &mut v[start..end] {
                    *x = x.wrapping_add(1);
                }
            }
        }
    }
}

/// Multi-epoch burn-in against a **delta-enabled** engine (one opened
/// with [`scrutiny_core::EngineConfig::delta`] set): epoch 0 publishes a
/// full base, later epochs perturb a localized window of every variable
/// ([`perturb_localized`]) and publish only the dirty pages — crossing a
/// rebase whenever the configured chain length is reached — and the run
/// ends with a restart-verification from the newest engine-written
/// checkpoint, which restores base → deltas through the standard reader.
pub fn burn_in_delta(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    engine: &EngineHandle,
    epochs: usize,
    policy: Policy,
) -> Result<DeltaBurnInReport, EngineError> {
    burn_in_delta_observed(app, analysis, engine, epochs, policy, &Recorder::disabled())
}

/// [`burn_in_delta`] reporting into a [`Recorder`]: each resolved epoch
/// emits an `npb.epoch` event, like [`burn_in_observed`].
pub fn burn_in_delta_observed(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    engine: &EngineHandle,
    epochs: usize,
    policy: Policy,
    rec: &Recorder,
) -> Result<DeltaBurnInReport, EngineError> {
    if epochs < 2 {
        return Err(EngineError::InvalidConfig(
            "a delta burn-in needs a base epoch and at least one delta epoch".into(),
        ));
    }
    let mut vars = capture_state(app);
    let plans = scrutiny_core::plan::plans_for(analysis, policy);
    let mut bytes = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        if epoch > 0 {
            perturb_localized(&mut vars, epoch);
        }
        let ticket = engine.submit(&vars, &plans)?;
        let version = ticket.version();
        let t0 = rec.now_us();
        let storage = engine.wait(ticket)?;
        rec.event(
            "npb.epoch",
            &[
                ("epoch", epoch.into()),
                ("version", version.into()),
                ("payload_bytes", storage.payload_bytes.into()),
                ("total_bytes", storage.total().into()),
                ("wait_us", rec.now_us().saturating_sub(t0).into()),
            ],
        );
        bytes.push(storage.total());
    }
    let cfg = RestartConfig {
        policy,
        ..Default::default()
    };
    let report = checkpoint_restart_cycle_async(app, analysis, &cfg, engine)?;
    Ok(DeltaBurnInReport {
        app: app.spec().name,
        epochs,
        base_bytes: bytes[0],
        total_bytes: bytes.iter().sum(),
        epoch_bytes: bytes,
        verified: report.verified,
        rel_err: report.rel_err,
    })
}

/// Outcome of one [`burn_in_recover`] run.
#[derive(Clone, Debug)]
pub struct RecoveryBurnInReport {
    /// Benchmark name (from its spec).
    pub app: String,
    /// Checkpoint epochs submitted before the fault — all resolved.
    pub epochs: usize,
    /// Name of the object the storage fault damaged.
    pub damaged: String,
    /// Newest version on the backend when the fault struck.
    pub newest_version: u64,
    /// Version the recovery scan actually restored.
    pub recovered_version: u64,
    /// Versions the scan rejected (newest first), from the
    /// [`scrutiny_core::RecoveryReport`].
    pub rejected_versions: Vec<u64>,
    /// Did the restart from the recovered checkpoint reproduce the
    /// golden output within the app's tolerance?
    pub verified: bool,
    /// Relative error of that restart.
    pub rel_err: f64,
}

/// Perturb only elements the analysis proved **uncritical** (per-epoch
/// moving window, like [`perturb_localized`]). This is the §IV.C
/// argument driving the recovery burn-in: epochs differ on disk (real
/// dirty pages under `Policy::Full`), yet *any* epoch restores a
/// verifying state, because the critical elements are bit-identical
/// across all of them — so falling back to an older checkpoint after
/// corruption must still pass verification.
pub fn perturb_uncritical(vars: &mut [VarRecord], analysis: &AnalysisReport, epoch: usize) {
    for (var, crit) in vars.iter_mut().zip(&analysis.vars) {
        let n = var.data.len();
        if n == 0 {
            continue;
        }
        let window = (n / 16).max(1);
        let start = (epoch * window) % n;
        let end = (start + window).min(n);
        let in_window = |i: usize| i >= start && i < end;
        match &mut var.data {
            VarData::F64(v) => {
                for i in crit.value_map.zeros().filter(|&i| in_window(i)) {
                    v[i] += 1e-3 * (epoch as f64 + 1.0);
                }
            }
            VarData::C128(v) => {
                for i in crit.value_map.zeros().filter(|&i| in_window(i)) {
                    v[i].0 += 1e-3 * (epoch as f64 + 1.0);
                }
            }
            // Integer control state is analyzed by liveness, not AD;
            // leave it alone.
            VarData::I64(_) => {}
        }
    }
}

/// Burn-in → corrupt → recover → verify: run `epochs` checkpoint
/// periods through `engine` (each epoch perturbs a fresh window of
/// *uncritical* elements via [`perturb_uncritical`], so epochs differ
/// on disk while every epoch's critical state stays bit-identical),
/// inject `scenario` against the newest version on the backend, then
/// recover the newest fully-verifiable checkpoint and restart-verify
/// the resumed trajectory from it. The report names the damaged object,
/// the rejected versions, and the version the run actually resumed
/// from.
pub fn burn_in_recover(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    engine: &EngineHandle,
    epochs: usize,
    policy: Policy,
    scenario: StorageScenario,
) -> Result<RecoveryBurnInReport, EngineError> {
    burn_in_recover_observed(
        app,
        analysis,
        engine,
        epochs,
        policy,
        scenario,
        &Recorder::disabled(),
    )
}

/// [`burn_in_recover`] reporting into a [`Recorder`]: per-epoch
/// `npb.epoch` events, the fault injection as a `faultinj.inject` event,
/// and the recovery scan's candidate/reject/recovered events all land in
/// one log. With the engine opened on the same recorder
/// ([`scrutiny_core::EngineConfig::recorder`]), the resulting JSONL dump
/// is a complete record of the lifecycle — every submit, publish,
/// commit, the injected damage, and the fallback walk — with no other
/// output needed (`tests/obs_lifecycle.rs` holds that contract).
#[allow(clippy::too_many_arguments)]
pub fn burn_in_recover_observed(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    engine: &EngineHandle,
    epochs: usize,
    policy: Policy,
    scenario: StorageScenario,
    rec: &Recorder,
) -> Result<RecoveryBurnInReport, EngineError> {
    if epochs < 2 {
        return Err(EngineError::InvalidConfig(
            "a recovery burn-in needs a victim epoch and at least one fallback epoch".into(),
        ));
    }
    let mut vars = capture_state(app);
    let plans = scrutiny_core::plan::plans_for(analysis, policy);
    let mut newest = 0;
    for epoch in 0..epochs {
        if epoch > 0 {
            perturb_uncritical(&mut vars, analysis, epoch);
        }
        let ticket = engine.submit(&vars, &plans)?;
        newest = ticket.version();
        let t0 = rec.now_us();
        let storage = engine.wait(ticket)?;
        rec.event(
            "npb.epoch",
            &[
                ("epoch", epoch.into()),
                ("version", newest.into()),
                ("payload_bytes", storage.payload_bytes.into()),
                ("total_bytes", storage.total().into()),
                ("wait_us", rec.now_us().saturating_sub(t0).into()),
            ],
        );
    }
    let damaged = scenario
        .inject_obs(engine.backend().as_ref(), newest, rec)
        .map_err(EngineError::from)?;
    let cfg = RestartConfig {
        policy,
        ..Default::default()
    };
    let recovery = RecoveryConfig {
        recorder: rec.clone(),
        ..Default::default()
    };
    let report = checkpoint_recover_cycle_async(app, analysis, &cfg, engine, &recovery)?;
    let recovered_version = report
        .recovery
        .recovered
        .expect("checkpoint_recover_cycle_async succeeded, so a version recovered");
    Ok(RecoveryBurnInReport {
        app: app.spec().name,
        epochs,
        damaged,
        newest_version: newest,
        recovered_version,
        rejected_versions: report.recovery.rejected_versions(),
        verified: report.restart.verified,
        rel_err: report.restart.rel_err,
    })
}

/// Outcome of one [`burn_in_bounded`] run: a burn-in whose criticality
/// maps came from a **bounded-memory** analysis tape, cross-checked
/// bit-for-bit against the unbounded analysis of the same run.
#[derive(Clone, Debug)]
pub struct BoundedBurnInReport {
    /// The burn-in itself (driven by the *bounded* analysis).
    pub burn_in: BurnInReport,
    /// Full logical tape footprint of the unbounded recording, bytes.
    pub unbounded_tape_bytes: usize,
    /// Residency budget the bounded analysis ran under, bytes.
    pub budget_bytes: usize,
    /// Highest tape residency the bounded analysis ever reached, bytes.
    pub peak_resident_bytes: usize,
    /// Segments the bounded sweeps re-recorded on demand.
    pub replayed_segments: u64,
    /// Did the bounded analysis reproduce the unbounded one bit-for-bit
    /// (criticality maps, every gradient bit, the primal output)?
    pub bit_identical: bool,
}

/// Scrutinize `app` twice — once unbounded, once under `ckpt`'s tape
/// residency budget — and verify the two analyses agree **bit for bit**:
/// same criticality maps, same gradient bits, same primal output. The
/// bounded report is returned for downstream use; divergence is an
/// [`EngineError::InvalidConfig`] naming the first mismatching variable.
pub fn scrutinize_bounded_vs_unbounded(
    app: &dyn ScrutinyApp,
    opts: &ScrutinyOptions,
    ckpt: TapeCheckpointConfig,
) -> Result<(AnalysisReport, AnalysisReport), EngineError> {
    let unbounded = scrutinize_with(app, opts)
        .map_err(|e| EngineError::InvalidConfig(format!("unbounded analysis failed: {e}")))?;
    let bounded = scrutinize_with(
        app,
        &ScrutinyOptions {
            tape_checkpoints: Some(ckpt),
            ..opts.clone()
        },
    )
    .map_err(|e| EngineError::InvalidConfig(format!("bounded analysis failed: {e}")))?;
    if let Some(name) = first_divergence(&unbounded, &bounded) {
        return Err(EngineError::InvalidConfig(format!(
            "bounded analysis diverged from unbounded on {name}"
        )));
    }
    Ok((unbounded, bounded))
}

/// First variable (or pseudo-field) on which two analyses disagree at
/// the bit level, if any.
fn first_divergence(a: &AnalysisReport, b: &AnalysisReport) -> Option<String> {
    if a.output_value.to_bits() != b.output_value.to_bits() {
        return Some("output_value".into());
    }
    for (va, vb) in a.vars.iter().zip(&b.vars) {
        if va.value_map != vb.value_map || va.structural_map != vb.structural_map {
            return Some(va.spec.name.clone());
        }
        for (ga, gb) in va.grad_mag.iter().zip(&vb.grad_mag) {
            if ga.to_bits() != gb.to_bits() {
                return Some(format!("{}.grad_mag", va.spec.name));
            }
        }
    }
    None
}

/// A burn-in whose analysis ran under **forced tape eviction**: the
/// residency budget is `ncheckpoints` segments of `segment_len` nodes —
/// callers pick values that make the full recording many times the
/// budget — so the sweeps must re-record evicted segments through the
/// replay closure. The bounded maps are verified bit-identical to the
/// unbounded analysis first, then drive the ordinary multi-epoch
/// engine burn-in with restart verification.
pub fn burn_in_bounded(
    app: &dyn ScrutinyApp,
    engine: &EngineHandle,
    epochs: usize,
    policy: Policy,
    segment_len: usize,
    ncheckpoints: usize,
) -> Result<BoundedBurnInReport, EngineError> {
    let opts = ScrutinyOptions {
        segment_len,
        ..ScrutinyOptions::default()
    };
    let ckpt = TapeCheckpointConfig::with_ncheckpoints(ncheckpoints);
    let (unbounded, bounded) = scrutinize_bounded_vs_unbounded(app, &opts, ckpt)?;
    let burn_in = burn_in_observed(app, &bounded, engine, epochs, policy, &Recorder::disabled())?;
    Ok(BoundedBurnInReport {
        burn_in,
        unbounded_tape_bytes: unbounded.tape_stats.bytes,
        budget_bytes: ckpt.budget_bytes(segment_len, bounded.tape_stats.segments),
        peak_resident_bytes: bounded.tape_stats.peak_resident_bytes,
        replayed_segments: bounded.tape_stats.replayed_segments,
        // scrutinize_bounded_vs_unbounded already errored otherwise.
        bit_identical: true,
    })
}

/// The two benchmarks wired into the engine burn-in by default: CG (the
/// classic pruned float vector + integer control state) and FT (the large
/// complex-typed state that exercises sharded serialization hardest).
pub fn burn_in_suite() -> Vec<Box<dyn ScrutinyApp>> {
    vec![Box::new(Cg::class_s()), Box::new(Ft::class_s())]
}

/// Reduced instances of the same two apps, for fast tests.
pub fn burn_in_suite_mini() -> Vec<Box<dyn ScrutinyApp>> {
    vec![Box::new(Cg::mini()), Box::new(Ft::mini())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::{scrutinize, EngineConfig, EngineHandle, MemBackend};
    use std::sync::Arc;

    #[test]
    fn delta_burn_in_cg_and_ft_base_to_delta_to_rebase() {
        use scrutiny_core::DeltaPolicy;
        for app in burn_in_suite_mini() {
            let analysis = scrutinize(app.as_ref()).unwrap();
            let engine = EngineHandle::open(
                Arc::new(MemBackend::new()),
                EngineConfig {
                    delta: Some(DeltaPolicy {
                        page_bytes: 128,
                        rebase_every: 3,
                    }),
                    ..Default::default()
                },
            )
            .unwrap();
            // 6 epochs with rebase_every = 3: base, 3 deltas, a rebase
            // (epoch 4), another delta — the full chain lifecycle.
            let report =
                burn_in_delta(app.as_ref(), &analysis, &engine, 6, Policy::PrunedValue).unwrap();
            assert_eq!(report.epochs, 6);
            assert!(
                report.verified,
                "{}: delta-chain restart failed (rel err {})",
                report.app, report.rel_err
            );
            for delta_epoch in [1, 2, 3, 5] {
                assert!(
                    report.epoch_bytes[delta_epoch] < report.base_bytes,
                    "{} epoch {delta_epoch}: delta ({}) must write less than the base ({})",
                    report.app,
                    report.epoch_bytes[delta_epoch],
                    report.base_bytes
                );
            }
            assert_eq!(engine.pending(), 0);
        }
    }

    #[test]
    fn recovery_burn_in_survives_a_flipped_byte_in_a_delta_chain() {
        use scrutiny_core::DeltaPolicy;
        for app in burn_in_suite_mini() {
            let analysis = scrutinize(app.as_ref()).unwrap();
            let engine = EngineHandle::open(
                Arc::new(MemBackend::new()),
                EngineConfig {
                    delta: Some(DeltaPolicy {
                        page_bytes: 128,
                        rebase_every: 3,
                    }),
                    ..Default::default()
                },
            )
            .unwrap();
            // Full plans so the uncritical perturbations produce real
            // dirty pages between epochs.
            let report = burn_in_recover(
                app.as_ref(),
                &analysis,
                &engine,
                4,
                Policy::Full,
                StorageScenario::FlippedPayloadByte,
            )
            .unwrap();
            assert_eq!(report.newest_version, 3);
            assert_eq!(
                report.recovered_version, 2,
                "{}: expected fallback to the previous epoch",
                report.app
            );
            assert_eq!(report.rejected_versions, vec![3], "{}", report.app);
            assert!(
                report.verified,
                "{}: resumed trajectory failed verification (rel err {})",
                report.app, report.rel_err
            );
        }
    }

    #[test]
    fn recovery_burn_in_survives_a_missing_commit_marker() {
        for app in burn_in_suite_mini() {
            let analysis = scrutinize(app.as_ref()).unwrap();
            let engine =
                EngineHandle::open(Arc::new(MemBackend::new()), EngineConfig::default()).unwrap();
            let report = burn_in_recover(
                app.as_ref(),
                &analysis,
                &engine,
                3,
                Policy::PrunedValue,
                StorageScenario::MissingCommitMarker,
            )
            .unwrap();
            assert_eq!(report.recovered_version, 1, "{}", report.app);
            assert_eq!(report.rejected_versions, vec![2], "{}", report.app);
            assert!(
                report.verified,
                "{}: resumed trajectory failed verification (rel err {})",
                report.app, report.rel_err
            );
        }
    }

    #[test]
    fn burn_in_cg_and_ft_through_the_engine() {
        for app in burn_in_suite_mini() {
            let analysis = scrutinize(app.as_ref()).unwrap();
            let engine =
                EngineHandle::open(Arc::new(MemBackend::new()), EngineConfig::default()).unwrap();
            let report = burn_in(app.as_ref(), &analysis, &engine, 3, Policy::PrunedValue).unwrap();
            assert_eq!(report.epochs, 3);
            assert!(report.payload_bytes > 0);
            assert!(report.tape_segments > 0);
            assert!(
                report.verified,
                "{}: engine restart failed (rel err {})",
                report.app, report.rel_err
            );
            assert_eq!(engine.pending(), 0);
        }
    }

    #[test]
    fn burn_in_with_forced_segmentation_and_parallel_sweeps() {
        // Drive the whole analyze→burn-in→restart pipeline with the tape
        // split into many small segments and the sweeps running parallel:
        // results (criticality, restart verification) must be unaffected,
        // and the report must surface the segmentation it ran with.
        use scrutiny_core::{scrutinize_with, ScrutinyOptions};
        for app in burn_in_suite_mini() {
            let analysis = scrutinize_with(
                app.as_ref(),
                &ScrutinyOptions {
                    segment_len: 4096,
                    threads: 4,
                    ..ScrutinyOptions::default()
                },
            )
            .unwrap();
            let engine =
                EngineHandle::open(Arc::new(MemBackend::new()), EngineConfig::default()).unwrap();
            let report = burn_in(app.as_ref(), &analysis, &engine, 2, Policy::PrunedValue).unwrap();
            assert!(
                report.tape_segments > 1,
                "{}: expected a segmented tape",
                report.app
            );
            assert!(
                report.sweep.parallel,
                "{}: expected a parallel sweep",
                report.app
            );
            assert!(report.sweep.cross_contribs > 0);
            assert!(
                report.verified,
                "{}: restart from segmented-analysis maps failed (rel err {})",
                report.app, report.rel_err
            );
        }
    }
}
