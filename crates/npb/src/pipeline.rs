//! Long-running NPB driver with asynchronous checkpointing: the burn-in
//! wiring of the async engine into the NPB benchmarks.
//!
//! HPC production runs checkpoint *periodically* inside a long main loop;
//! the paper's single-boundary experiment is one period of that loop.
//! [`burn_in`] replays the period `epochs` times against a live
//! [`EngineHandle`]: each epoch captures the app's checkpoint state and
//! `submit`s it — the next epoch's compute then overlaps the previous
//! epoch's serialization and storage, exactly the overlap the engine
//! exists for — and the run ends with a restart-verification from the
//! newest engine-written checkpoint.

use crate::{Cg, Ft};
use scrutiny_core::{
    checkpoint_restart_cycle_async, submit_checkpoint, AnalysisReport, EngineError, EngineHandle,
    Policy, RestartConfig, ScrutinyApp,
};

/// Outcome of one [`burn_in`] run.
#[derive(Clone, Debug)]
pub struct BurnInReport {
    /// Benchmark name (from its spec).
    pub app: String,
    /// Checkpoints submitted (one per epoch) — all resolved.
    pub epochs: usize,
    /// Sum of stored payload bytes across all epochs.
    pub payload_bytes: usize,
    /// Did a restart from the newest engine-written checkpoint reproduce
    /// the golden output within the app's tolerance?
    pub verified: bool,
    /// Relative error of that restart.
    pub rel_err: f64,
}

/// Run `epochs` checkpoint periods of `app` through `engine`, then verify
/// by restarting from the engine's newest checkpoint.
pub fn burn_in(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    engine: &EngineHandle,
    epochs: usize,
    policy: Policy,
) -> Result<BurnInReport, EngineError> {
    assert!(epochs >= 1, "burn-in needs at least one epoch");
    let mut tickets = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        // submit returns as soon as the snapshot is staged; the next
        // epoch's capture run below is the compute that overlaps this
        // epoch's serialization and storage.
        tickets.push(submit_checkpoint(app, analysis, policy, engine)?);
    }
    let mut payload_bytes = 0;
    for t in tickets {
        payload_bytes += engine.wait(t)?.payload_bytes;
    }
    let cfg = RestartConfig {
        policy,
        ..Default::default()
    };
    let report = checkpoint_restart_cycle_async(app, analysis, &cfg, engine)?;
    Ok(BurnInReport {
        app: app.spec().name,
        epochs,
        payload_bytes,
        verified: report.verified,
        rel_err: report.rel_err,
    })
}

/// The two benchmarks wired into the engine burn-in by default: CG (the
/// classic pruned float vector + integer control state) and FT (the large
/// complex-typed state that exercises sharded serialization hardest).
pub fn burn_in_suite() -> Vec<Box<dyn ScrutinyApp>> {
    vec![Box::new(Cg::class_s()), Box::new(Ft::class_s())]
}

/// Reduced instances of the same two apps, for fast tests.
pub fn burn_in_suite_mini() -> Vec<Box<dyn ScrutinyApp>> {
    vec![Box::new(Cg::mini()), Box::new(Ft::mini())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::{scrutinize, EngineConfig, EngineHandle, MemBackend};
    use std::sync::Arc;

    #[test]
    fn burn_in_cg_and_ft_through_the_engine() {
        for app in burn_in_suite_mini() {
            let analysis = scrutinize(app.as_ref());
            let engine =
                EngineHandle::open(Arc::new(MemBackend::new()), EngineConfig::default()).unwrap();
            let report = burn_in(app.as_ref(), &analysis, &engine, 3, Policy::PrunedValue).unwrap();
            assert_eq!(report.epochs, 3);
            assert!(report.payload_bytes > 0);
            assert!(
                report.verified,
                "{}: engine restart failed (rel err {})",
                report.app, report.rel_err
            );
            assert_eq!(engine.pending(), 0);
        }
    }
}
