//! CG — Conjugate Gradient (NPB class S: `NA = 1400`, `NONZER = 7`,
//! `NITER = 15`, `SHIFT = 10`).
//!
//! Checkpoint variables (paper Table I): `double x[1402]`, `int it`.
//! NPB declares `x` with `NA + 2` slots but every loop runs `0..NA`; the
//! paper finds exactly those 2 tail elements uncritical (Fig. 6), which
//! this port preserves.

use crate::common::{dot, SparseMatrix, RANDLC_SEED};
use scrutiny_ad::{Adj, Real};
use scrutiny_core::{AppSpec, CkptSite, RunOutcome, ScrutinyApp, VarRefMut, VarSpec};

/// The CG benchmark.
pub struct Cg {
    /// Matrix dimension (`NA`).
    pub na: usize,
    /// Off-diagonals per row in the generator (`NONZER`).
    pub nonzer: usize,
    /// Outer (main-loop) iterations (`NITER`).
    pub niter: usize,
    /// Inner conjugate-gradient iterations per outer step (25 in NPB).
    pub inner: usize,
    /// Eigenvalue shift.
    pub shift: f64,
    /// Main-loop index at whose boundary the checkpoint is taken.
    pub ckpt_at: usize,
    matrix: SparseMatrix,
}

impl Cg {
    /// Class S configuration, checkpointing near the end of the run (the
    /// criticality map is iteration-invariant; a late checkpoint keeps the
    /// AD tape small).
    pub fn class_s() -> Self {
        Self::new(1400, 7, 15, 25, 10.0, 14)
    }

    /// A reduced instance for fast tests.
    pub fn mini() -> Self {
        Self::new(64, 3, 6, 10, 8.0, 4)
    }

    /// Fully parameterized constructor.
    pub fn new(
        na: usize,
        nonzer: usize,
        niter: usize,
        inner: usize,
        shift: f64,
        ckpt_at: usize,
    ) -> Self {
        assert!(
            ckpt_at >= 1 && ckpt_at <= niter,
            "checkpoint must fall inside the main loop"
        );
        // The matrix is program input regenerated deterministically at
        // restart; it is not a checkpoint variable (matching NPB, which
        // rebuilds it in `makea` from the same seed).
        let matrix = SparseMatrix::random_spd(na, nonzer, shift, RANDLC_SEED);
        Cg {
            na,
            nonzer,
            niter,
            inner,
            shift,
            ckpt_at,
            matrix,
        }
    }

    /// One `conj_grad` call: approximately solve `A z = x`, returning `z`
    /// and `‖x − A z‖` (NPB computes and prints this residual).
    fn conj_grad<R: Real>(&self, x: &[R]) -> (Vec<R>, R) {
        let na = self.na;
        let mut z = vec![R::zero(); na];
        let mut r: Vec<R> = x[..na].to_vec();
        let mut p = r.clone();
        let mut q = vec![R::zero(); na];
        let mut rho = dot(&r, &r);
        for _ in 0..self.inner {
            self.matrix.spmv(&p, &mut q);
            let alpha = rho / dot(&p, &q);
            for j in 0..na {
                z[j] += p[j] * alpha;
                r[j] -= q[j] * alpha;
            }
            let rho0 = rho;
            rho = dot(&r, &r);
            let beta = rho / rho0;
            for j in 0..na {
                p[j] = r[j] + p[j] * beta;
            }
        }
        self.matrix.spmv(&z, &mut q);
        let mut sum = R::zero();
        for j in 0..na {
            let d = x[j] - q[j];
            sum += d * d;
        }
        (z, sum.sqrt())
    }

    fn run_generic<R: Real>(&self, site: &mut dyn CkptSite<R>) -> RunOutcome<R> {
        let na = self.na;
        // NPB initializes all NA+2 slots to 1.0 …
        let mut x: Vec<R> = vec![R::one(); na + 2];
        let mut it_state = vec![0i64];
        let mut zeta = R::zero();
        for it in 1..=self.niter {
            if it == self.ckpt_at {
                it_state[0] = it as i64;
                let mut views = [VarRefMut::F64(&mut x), VarRefMut::I64(&mut it_state)];
                site.at_boundary(it, &mut views);
            }
            let (z, _rnorm) = self.conj_grad(&x);
            let xz = dot(&x[..na], &z);
            zeta = R::lit(self.shift) + R::one() / xz;
            // … but only the first NA are ever read or written.
            let norm = dot(&z, &z).sqrt();
            for j in 0..na {
                x[j] = z[j] / norm;
            }
        }
        RunOutcome { output: zeta }
    }
}

impl ScrutinyApp for Cg {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "CG".into(),
            class: if self.na == 1400 {
                "S".into()
            } else {
                format!("na={}", self.na)
            },
            vars: vec![VarSpec::f64("x", &[self.na + 2]), VarSpec::int_scalar("it")],
        }
    }

    fn checkpoint_iter(&self) -> usize {
        self.ckpt_at
    }

    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64> {
        self.run_generic(site)
    }

    fn run_ad(&self, site: &mut dyn CkptSite<Adj>) -> RunOutcome<Adj> {
        self.run_generic(site)
    }

    fn tape_capacity_hint(&self) -> usize {
        let per_inner = 2 * self.matrix.nnz() + 10 * self.na;
        let remaining = self.niter - self.ckpt_at + 1;
        remaining * (self.inner + 1) * per_inner + 4 * self.na
    }
}

/// Reference eigen-estimate by plain power iteration on `A⁻¹`-free CG —
/// used by tests to sanity-check that `zeta` approaches `shift + 1/λ`.
pub fn zeta_reference(cg: &Cg) -> f64 {
    let mut site = scrutiny_core::site::NoopSite;
    cg.run_f64(&mut site).output
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::site::NoopSite;
    use scrutiny_core::{scrutinize, FillPolicy, Policy, RestartConfig};

    #[test]
    fn deterministic_and_finite() {
        let cg = Cg::mini();
        let a = cg.run_f64(&mut NoopSite).output;
        let b = cg.run_f64(&mut NoopSite).output;
        assert_eq!(a, b);
        assert!(a.is_finite());
        // zeta = shift + 1/(x·z) must sit above the shift for an SPD
        // matrix with positive Rayleigh quotients.
        assert!(a > cg.shift, "zeta {a} not above shift");
    }

    #[test]
    fn residual_decreases_within_conj_grad() {
        let cg = Cg::mini();
        let x = vec![1.0f64; cg.na + 2];
        let (_, rnorm) = cg.conj_grad(&x);
        let x_norm = dot(&x[..cg.na], &x[..cg.na]).sqrt();
        assert!(
            rnorm < 1e-6 * x_norm,
            "CG failed to reduce the residual: {rnorm}"
        );
    }

    #[test]
    fn mini_criticality_pattern() {
        let cg = Cg::mini();
        let report = scrutinize(&cg).unwrap();
        let x = report.var("x").unwrap();
        assert_eq!(x.total(), cg.na + 2);
        assert_eq!(
            x.uncritical(),
            2,
            "exactly the two tail slots are uncritical"
        );
        assert!(!x.value_map.get(cg.na));
        assert!(!x.value_map.get(cg.na + 1));
        let it = report.var("it").unwrap();
        assert_eq!(it.uncritical(), 0);
    }

    #[test]
    fn restart_with_garbage_holes_verifies() {
        let cg = Cg::mini();
        let analysis = scrutinize(&cg).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            fill: FillPolicy::Garbage(123),
            store_dir: None,
        };
        let report = scrutiny_core::checkpoint_restart_cycle(&cg, &analysis, &cfg).unwrap();
        assert!(report.verified, "rel err {}", report.rel_err);
    }

    #[test]
    fn criticality_stable_across_checkpoint_positions() {
        let a = scrutinize(&Cg::new(64, 3, 6, 10, 8.0, 2)).unwrap();
        let b = scrutinize(&Cg::new(64, 3, 6, 10, 8.0, 5)).unwrap();
        assert_eq!(a.var("x").unwrap().value_map, b.var("x").unwrap().value_map);
    }
}
