//! LU — Lower-Upper symmetric Gauss-Seidel (SSOR) solver (NPB class S:
//! 12³ grid, 50 iterations).
//!
//! Checkpoint variables (paper Table I): `double u[12][13][13][5]`,
//! `double rho_i[12][13][13]`, `double qs[12][13][13]`,
//! `double rsd[12][13][13][5]`, `int istep`.
//!
//! The paper's element-level findings, all reproduced here:
//!
//! * `u` components 0–3 follow the Fig. 3 pattern (read over the full
//!   12³ when `rho_i`/`qs` are recomputed from the conserved state):
//!   300 uncritical each.
//! * `u[..][4]` (total energy) is read only by the three directional
//!   flux sweeps — `[1-10][1-10][0-11] ∪ [1-10][0-11][1-10] ∪
//!   [0-11][1-10][1-10]` — the Fig. 7 pattern with |union| = 1600, i.e.
//!   428 uncritical, 128 more than Fig. 3. Total for `u`: **1628**.
//! * `rho_i`, `qs`: read over the full 12³ by the global relaxation-scale
//!   reduction (pseudo-time-step control) ⇒ 300 uncritical each.
//! * `rsd`: the per-iteration residual norm reads all `12³×5` (boundary
//!   residuals hold the non-zero forcing) ⇒ 1500 uncritical.
//!
//! Note the paper's Table II swaps the `rho_i` and `rsd` rows (the counts
//! 1500/10140 can only belong to the `[12][13][13][5]` array); Table III's
//! storage numbers confirm the unswapped assignment we reproduce.

use crate::common::{Arr3, Arr4};
use crate::pde::{blend_init, error_norm_interior, ExactSolution, GP, GP1, NCOMP};
use scrutiny_ad::{Adj, Real};
use scrutiny_core::{AppSpec, CkptSite, RunOutcome, ScrutinyApp, VarRefMut, VarSpec};

/// Ratio of specific heats' role in the pressure closure (NPB's c2).
const C2: f64 = 0.4;

/// The LU benchmark.
pub struct Lu {
    /// SSOR iterations (`itmax`; 50 at class S).
    pub niter: usize,
    /// Iteration index at whose boundary the checkpoint is taken (1-based).
    pub ckpt_at: usize,
    dt: f64,
    omega: f64,
    nu: f64,
    exact: ExactSolution,
    frct: Arr4<f64>,
}

impl Lu {
    /// Class S: 50 iterations; analysis checkpoint near the end.
    pub fn class_s() -> Self {
        Self::new(50, 48)
    }

    /// Reduced iteration count for fast tests (state size is class S).
    pub fn mini() -> Self {
        Self::new(8, 4)
    }

    /// General constructor.
    pub fn new(niter: usize, ckpt_at: usize) -> Self {
        assert!(
            ckpt_at >= 1 && ckpt_at <= niter,
            "checkpoint must fall inside the main loop"
        );
        let mut lu = Lu {
            niter,
            ckpt_at,
            dt: 0.1,
            omega: 0.2,
            nu: 0.35,
            exact: ExactSolution,
            frct: Arr4::zeros(GP, GP1, GP1, NCOMP),
        };
        lu.frct = lu.exact_forcing();
        lu
    }

    /// Derived state from the conserved variables, over the **full 12³**
    /// (NPB computes `rho_i`/`qs` everywhere the grid is defined).
    fn compute_aux<R: Real>(u: &Arr4<R>, rho_i: &mut Arr3<R>, qs: &mut Arr3<R>) {
        for k in 0..GP {
            for j in 0..GP {
                for i in 0..GP {
                    let inv = R::one() / u[(k, j, i, 0)];
                    rho_i[(k, j, i)] = inv;
                    let ke = u[(k, j, i, 1)] * u[(k, j, i, 1)]
                        + u[(k, j, i, 2)] * u[(k, j, i, 2)]
                        + u[(k, j, i, 3)] * u[(k, j, i, 3)];
                    qs[(k, j, i)] = ke * inv * 0.5;
                }
            }
        }
    }

    /// Compressible-flow-style flux vector at one point for direction
    /// `d` (0 = x/i, 1 = y/j, 2 = z/k). Reads all five components of `u`
    /// plus `rho_i` and `qs` — the reads that shape Fig. 7.
    #[inline]
    fn flux_at<R: Real>(
        u: &Arr4<R>,
        rho_i: &Arr3<R>,
        qs: &Arr3<R>,
        k: usize,
        j: usize,
        i: usize,
        d: usize,
    ) -> [R; NCOMP] {
        let vel = u[(k, j, i, d + 1)] * rho_i[(k, j, i)];
        let p = (u[(k, j, i, 4)] - qs[(k, j, i)]) * C2;
        let mut f = [R::zero(); NCOMP];
        f[0] = u[(k, j, i, d + 1)];
        for m in 1..4 {
            f[m] = u[(k, j, i, m)] * vel;
            if m == d + 1 {
                f[m] += p;
            }
        }
        f[4] = (u[(k, j, i, 4)] + p) * vel;
        f
    }

    /// `rhs`: `rsd = dt·(N(u) + frct)`. The forcing extends to boundary
    /// cells (NPB initializes `rsd = -frct` over the whole grid), so
    /// boundary residuals are non-zero — they are read by the norm and by
    /// nothing else.
    fn compute_rsd<R: Real>(&self, u: &Arr4<R>, rho_i: &Arr3<R>, qs: &Arr3<R>, rsd: &mut Arr4<R>) {
        for k in 0..GP {
            for j in 0..GP {
                for i in 0..GP {
                    for m in 0..NCOMP {
                        rsd[(k, j, i, m)] = R::lit(self.frct[(k, j, i, m)] * self.dt);
                    }
                }
            }
        }
        let mut flux: Vec<[R; NCOMP]> = vec![[R::zero(); NCOMP]; GP];
        // x sweep: slab [1-10][1-10][0-11].
        for k in 1..GP - 1 {
            for j in 1..GP - 1 {
                for (i, f) in flux.iter_mut().enumerate() {
                    *f = Self::flux_at(u, rho_i, qs, k, j, i, 0);
                }
                for i in 1..GP - 1 {
                    for m in 0..NCOMP {
                        let conv = (flux[i + 1][m] - flux[i - 1][m]) * 0.5;
                        let diss = (u[(k, j, i - 1, m)] - u[(k, j, i, m)] * 2.0
                            + u[(k, j, i + 1, m)])
                            * self.nu;
                        rsd[(k, j, i, m)] += (diss - conv) * self.dt;
                    }
                }
            }
        }
        // y sweep: slab [1-10][0-11][1-10].
        for k in 1..GP - 1 {
            for i in 1..GP - 1 {
                for (j, f) in flux.iter_mut().enumerate() {
                    *f = Self::flux_at(u, rho_i, qs, k, j, i, 1);
                }
                for j in 1..GP - 1 {
                    for m in 0..NCOMP {
                        let conv = (flux[j + 1][m] - flux[j - 1][m]) * 0.5;
                        let diss = (u[(k, j - 1, i, m)] - u[(k, j, i, m)] * 2.0
                            + u[(k, j + 1, i, m)])
                            * self.nu;
                        rsd[(k, j, i, m)] += (diss - conv) * self.dt;
                    }
                }
            }
        }
        // z sweep: slab [0-11][1-10][1-10].
        for j in 1..GP - 1 {
            for i in 1..GP - 1 {
                for (k, f) in flux.iter_mut().enumerate() {
                    *f = Self::flux_at(u, rho_i, qs, k, j, i, 2);
                }
                for k in 1..GP - 1 {
                    for m in 0..NCOMP {
                        let conv = (flux[k + 1][m] - flux[k - 1][m]) * 0.5;
                        let diss = (u[(k - 1, j, i, m)] - u[(k, j, i, m)] * 2.0
                            + u[(k + 1, j, i, m)])
                            * self.nu;
                        rsd[(k, j, i, m)] += (diss - conv) * self.dt;
                    }
                }
            }
        }
    }

    /// Manufactured forcing: `frct = −N(u_exact)` on the interior; smooth
    /// non-zero values on the boundary shell (read only by the norm).
    fn exact_forcing(&self) -> Arr4<f64> {
        let mut ue: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        for k in 0..GP {
            for j in 0..GP {
                for i in 0..GP {
                    let e = self.exact.eval(
                        ExactSolution::coord(i),
                        ExactSolution::coord(j),
                        ExactSolution::coord(k),
                    );
                    for m in 0..NCOMP {
                        ue[(k, j, i, m)] = e[m];
                    }
                }
            }
        }
        let mut rho_i: Arr3<f64> = Arr3::zeros(GP, GP1, GP1);
        let mut qs: Arr3<f64> = Arr3::zeros(GP, GP1, GP1);
        Self::compute_aux(&ue, &mut rho_i, &mut qs);
        // Run the operator with zero forcing to measure N(u_exact).
        let mut probe = Lu {
            niter: 1,
            ckpt_at: 1,
            dt: self.dt,
            omega: self.omega,
            nu: self.nu,
            exact: self.exact,
            frct: Arr4::zeros(GP, GP1, GP1, NCOMP),
        };
        let mut n_of_exact: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        probe.frct = Arr4::zeros(GP, GP1, GP1, NCOMP);
        probe.compute_rsd(&ue, &rho_i, &qs, &mut n_of_exact);
        let mut f: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        for k in 0..GP {
            let z = ExactSolution::coord(k);
            for j in 0..GP {
                let y = ExactSolution::coord(j);
                for i in 0..GP {
                    let x = ExactSolution::coord(i);
                    let interior = (1..GP - 1).contains(&k)
                        && (1..GP - 1).contains(&j)
                        && (1..GP - 1).contains(&i);
                    for m in 0..NCOMP {
                        f[(k, j, i, m)] = if interior {
                            // compute_rsd produced dt·N(u_exact); cancel it.
                            -n_of_exact[(k, j, i, m)] / self.dt
                        } else {
                            // Non-zero boundary forcing: read by the norm,
                            // never by the update.
                            0.01 * (1.0 + x + y + z + 0.1 * m as f64)
                        };
                    }
                }
            }
        }
        f
    }

    /// Residual norm over the **full 12³×5** — part of LU's convergence
    /// history, folded into the verification output (the read that makes
    /// all of `rsd` critical).
    fn rsd_norm<R: Real>(rsd: &Arr4<R>) -> R {
        let mut s = R::zero();
        for k in 0..GP {
            for j in 0..GP {
                for i in 0..GP {
                    for m in 0..NCOMP {
                        let v = rsd[(k, j, i, m)];
                        s += v * v;
                    }
                }
            }
        }
        (s / (GP * GP * GP * NCOMP) as f64).sqrt()
    }

    /// Global relaxation scale: a CFL-style smooth reduction over the
    /// derived state on the **full 12³** (pseudo-time-step control). This
    /// is the read that gives `rho_i`/`qs` their Fig. 3 criticality.
    fn relaxation_scale<R: Real>(rho_i: &Arr3<R>, qs: &Arr3<R>) -> R {
        let mut acc = R::zero();
        for k in 0..GP {
            for j in 0..GP {
                for i in 0..GP {
                    acc += rho_i[(k, j, i)] + qs[(k, j, i)];
                }
            }
        }
        R::one() / (R::one() + acc * (1e-3 / (GP * GP * GP) as f64))
    }

    fn run_generic<R: Real>(&self, site: &mut dyn CkptSite<R>) -> RunOutcome<R> {
        let mut u: Arr4<R> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        blend_init(&mut u, &self.exact);
        let mut rho_i: Arr3<R> = Arr3::zeros(GP, GP1, GP1);
        let mut qs: Arr3<R> = Arr3::zeros(GP, GP1, GP1);
        Self::compute_aux(&u, &mut rho_i, &mut qs);
        let mut rsd: Arr4<R> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        self.compute_rsd(&u, &rho_i, &qs, &mut rsd);
        let mut istep_state = vec![0i64];
        let mut history = R::zero();

        for istep in 1..=self.niter {
            if istep == self.ckpt_at {
                istep_state[0] = istep as i64;
                let mut views = [
                    VarRefMut::F64(u.flat_mut()),
                    VarRefMut::F64(rho_i.flat_mut()),
                    VarRefMut::F64(qs.flat_mut()),
                    VarRefMut::F64(rsd.flat_mut()),
                    VarRefMut::I64(&mut istep_state),
                ];
                site.at_boundary(istep, &mut views);
            }

            // Convergence history (reads rsd over the full grid).
            history += Self::rsd_norm(&rsd);
            // Pseudo-time-step control (reads rho_i/qs over the full grid).
            let scale = Self::relaxation_scale(&rho_i, &qs);

            // Lower-triangular sweep (NPB jacld/blts).
            for k in 1..GP - 1 {
                for j in 1..GP - 1 {
                    for i in 1..GP - 1 {
                        let dcoef = R::one()
                            / (R::one() + (rho_i[(k, j, i)] + qs[(k, j, i)] * 0.1) * self.dt);
                        for m in 0..NCOMP {
                            let tv = rsd[(k, j, i, m)]
                                + (rsd[(k - 1, j, i, m)]
                                    + rsd[(k, j - 1, i, m)]
                                    + rsd[(k, j, i - 1, m)])
                                    * self.omega;
                            rsd[(k, j, i, m)] = tv * dcoef * scale;
                        }
                    }
                }
            }
            // Upper-triangular sweep (NPB jacu/buts).
            for k in (1..GP - 1).rev() {
                for j in (1..GP - 1).rev() {
                    for i in (1..GP - 1).rev() {
                        let dcoef = R::one()
                            / (R::one() + (rho_i[(k, j, i)] + qs[(k, j, i)] * 0.1) * self.dt);
                        for m in 0..NCOMP {
                            let corr = (rsd[(k + 1, j, i, m)]
                                + rsd[(k, j + 1, i, m)]
                                + rsd[(k, j, i + 1, m)])
                                * (self.omega);
                            rsd[(k, j, i, m)] += corr * dcoef * scale;
                        }
                    }
                }
            }
            // Fold the increment into the solution.
            for k in 1..GP - 1 {
                for j in 1..GP - 1 {
                    for i in 1..GP - 1 {
                        for m in 0..NCOMP {
                            let inc = rsd[(k, j, i, m)];
                            u[(k, j, i, m)] += inc;
                        }
                    }
                }
            }
            // Refresh derived state and residual for the next iteration.
            Self::compute_aux(&u, &mut rho_i, &mut qs);
            self.compute_rsd(&u, &rho_i, &qs, &mut rsd);
        }

        let err = error_norm_interior(&u, &self.exact);
        let mut out = history * 0.05;
        for e in err {
            out += e;
        }
        RunOutcome { output: out }
    }

    /// Final interior solution error (testing aid).
    pub fn final_error(&self) -> f64 {
        let mut u: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        blend_init(&mut u, &self.exact);
        let mut rho_i: Arr3<f64> = Arr3::zeros(GP, GP1, GP1);
        let mut qs: Arr3<f64> = Arr3::zeros(GP, GP1, GP1);
        Self::compute_aux(&u, &mut rho_i, &mut qs);
        let mut rsd: Arr4<f64> = Arr4::zeros(GP, GP1, GP1, NCOMP);
        self.compute_rsd(&u, &rho_i, &qs, &mut rsd);
        for _ in 1..=self.niter {
            let scale = Self::relaxation_scale(&rho_i, &qs);
            for k in 1..GP - 1 {
                for j in 1..GP - 1 {
                    for i in 1..GP - 1 {
                        let dcoef =
                            1.0 / (1.0 + (rho_i[(k, j, i)] + qs[(k, j, i)] * 0.1) * self.dt);
                        for m in 0..NCOMP {
                            let tv = rsd[(k, j, i, m)]
                                + (rsd[(k - 1, j, i, m)]
                                    + rsd[(k, j - 1, i, m)]
                                    + rsd[(k, j, i - 1, m)])
                                    * self.omega;
                            rsd[(k, j, i, m)] = tv * dcoef * scale;
                        }
                    }
                }
            }
            for k in (1..GP - 1).rev() {
                for j in (1..GP - 1).rev() {
                    for i in (1..GP - 1).rev() {
                        let dcoef =
                            1.0 / (1.0 + (rho_i[(k, j, i)] + qs[(k, j, i)] * 0.1) * self.dt);
                        for m in 0..NCOMP {
                            let corr = (rsd[(k + 1, j, i, m)]
                                + rsd[(k, j + 1, i, m)]
                                + rsd[(k, j, i + 1, m)])
                                * self.omega;
                            rsd[(k, j, i, m)] += corr * dcoef * scale;
                        }
                    }
                }
            }
            for k in 1..GP - 1 {
                for j in 1..GP - 1 {
                    for i in 1..GP - 1 {
                        for m in 0..NCOMP {
                            u[(k, j, i, m)] += rsd[(k, j, i, m)];
                        }
                    }
                }
            }
            Self::compute_aux(&u, &mut rho_i, &mut qs);
            self.compute_rsd(&u, &rho_i, &qs, &mut rsd);
        }
        error_norm_interior(&u, &self.exact).iter().sum()
    }
}

impl ScrutinyApp for Lu {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "LU".into(),
            class: "S".into(),
            vars: vec![
                VarSpec::f64("u", &[GP, GP1, GP1, NCOMP]),
                VarSpec::f64("rho_i", &[GP, GP1, GP1]),
                VarSpec::f64("qs", &[GP, GP1, GP1]),
                VarSpec::f64("rsd", &[GP, GP1, GP1, NCOMP]),
                VarSpec::int_scalar("istep"),
            ],
        }
    }

    fn checkpoint_iter(&self) -> usize {
        self.ckpt_at
    }

    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64> {
        self.run_generic(site)
    }

    fn run_ad(&self, site: &mut dyn CkptSite<Adj>) -> RunOutcome<Adj> {
        self.run_generic(site)
    }

    fn tape_capacity_hint(&self) -> usize {
        let remaining = self.niter - self.ckpt_at + 1;
        remaining * 1_200_000 + 300_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_core::{scrutinize, Policy, RestartConfig};

    #[test]
    fn ssor_converges_toward_exact_solution() {
        let short = Lu::new(2, 1).final_error();
        let long = Lu::new(40, 1).final_error();
        assert!(long < 0.5 * short, "err(2) = {short}, err(40) = {long}");
    }

    /// Is element (k, j, i) inside the three-slab union of Fig. 7?
    fn in_union(k: usize, j: usize, i: usize) -> bool {
        let int = |x: usize| (1..GP - 1).contains(&x);
        (int(k) && int(j)) || (int(k) && int(i)) || (int(j) && int(i))
    }

    #[test]
    fn criticality_matches_paper_counts() {
        let lu = Lu::mini();
        let report = scrutinize(&lu).unwrap();

        let u = report.var("u").unwrap();
        assert_eq!(u.total(), 10_140);
        assert_eq!(u.uncritical(), 1_628, "paper: 1628 uncritical in LU's u");
        // Components 0–3: Fig. 3 pattern; component 4: Fig. 7 union.
        for k in 0..GP {
            for j in 0..GP1 {
                for i in 0..GP1 {
                    for m in 0..NCOMP {
                        let flat = ((k * GP1 + j) * GP1 + i) * NCOMP + m;
                        let expect = if j >= GP || i >= GP {
                            false
                        } else if m < 4 {
                            true
                        } else {
                            in_union(k, j, i)
                        };
                        assert_eq!(u.value_map.get(flat), expect, "u[{k}][{j}][{i}][{m}]");
                    }
                }
            }
        }

        for name in ["rho_i", "qs"] {
            let v = report.var(name).unwrap();
            assert_eq!(v.total(), 2_028);
            assert_eq!(v.uncritical(), 300, "paper: 300 uncritical in {name}");
        }

        let rsd = report.var("rsd").unwrap();
        assert_eq!(rsd.uncritical(), 1_500, "paper: 1500 uncritical in rsd");
    }

    #[test]
    fn restart_with_garbage_holes_verifies() {
        let lu = Lu::mini();
        let analysis = scrutinize(&lu).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            ..Default::default()
        };
        let report = scrutiny_core::checkpoint_restart_cycle(&lu, &analysis, &cfg).unwrap();
        assert!(report.verified, "rel err {}", report.rel_err);
    }

    #[test]
    fn criticality_stable_across_checkpoint_positions() {
        let a = scrutinize(&Lu::new(5, 2)).unwrap();
        let b = scrutinize(&Lu::new(5, 4)).unwrap();
        for name in ["u", "rho_i", "qs", "rsd"] {
            assert_eq!(
                a.var(name).unwrap().value_map,
                b.var(name).unwrap().value_map,
                "{name} map changed with checkpoint position"
            );
        }
    }
}
