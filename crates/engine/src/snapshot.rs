//! Staging layer: owned snapshots of application state, gated so a
//! bounded number are in flight.
//!
//! The compute thread cannot keep mutating its arrays while workers
//! serialize them, so `submit` first *stages* the variables — a plain
//! memcpy into an owned [`Snapshot`] — and returns; serialization and
//! I/O happen off-thread against the staged copy. An internal staging
//! gate bounds how many staged snapshots exist at once (two by default:
//! classic double buffering — a new snapshot can stage while the
//! previous one drains, and a third `submit` blocks instead of letting
//! checkpoint memory grow without bound).

use scrutiny_ckpt::{VarPlan, VarRecord};
use std::sync::{Condvar, Mutex};

/// An owned, immutable copy of one checkpoint's variables and plans,
/// decoupled from the application's live buffers.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Captured variable payloads (in spec order).
    pub vars: Vec<VarRecord>,
    /// Per-variable storage plans (same order and length as `vars`).
    pub plans: Vec<VarPlan>,
}

impl Snapshot {
    /// Build a snapshot from already-owned records.
    pub fn new(vars: Vec<VarRecord>, plans: Vec<VarPlan>) -> Self {
        Snapshot { vars, plans }
    }

    /// Stage a copy of borrowed records — the memcpy on the compute
    /// thread's critical path; everything after it is off-thread.
    pub fn capture(vars: &[VarRecord], plans: &[VarPlan]) -> Self {
        Snapshot {
            vars: vars.to_vec(),
            plans: plans.to_vec(),
        }
    }

    /// Total payload bytes held (full, unpruned sizes).
    pub fn full_bytes(&self) -> usize {
        self.vars.iter().map(|v| v.data.full_bytes()).sum()
    }
}

/// Counting gate over staged snapshots (a tiny semaphore; `std` has
/// none). Public because it is the engine's double-buffered admission
/// primitive: `scrutinyd` reuses it per tenant to bound how many
/// submissions a tenant may have in flight against the shared pool.
pub struct StagingGate {
    staged: Mutex<usize>,
    cv: Condvar,
    capacity: usize,
}

impl StagingGate {
    /// A gate admitting at most `capacity` concurrent holders.
    pub fn new(capacity: usize) -> Self {
        StagingGate {
            staged: Mutex::new(0),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Block until a staging slot is free, then claim it.
    pub fn acquire(&self) {
        let mut n = self.staged.lock().unwrap();
        while *n >= self.capacity {
            n = self.cv.wait(n).unwrap();
        }
        *n += 1;
    }

    /// Return a slot (called when a submission resolves, success or not).
    pub fn release(&self) {
        let mut n = self.staged.lock().unwrap();
        debug_assert!(*n > 0, "staging gate released more than acquired");
        *n = n.saturating_sub(1);
        drop(n);
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_ckpt::VarData;
    use std::sync::Arc;

    #[test]
    fn capture_is_deep() {
        let vars = vec![VarRecord::new("u", VarData::F64(vec![1.0, 2.0]))];
        let snap = Snapshot::capture(&vars, &[VarPlan::Full]);
        assert_eq!(snap.vars, vars);
        assert_eq!(snap.full_bytes(), 16);
    }

    #[test]
    fn gate_blocks_third_stager() {
        let gate = Arc::new(StagingGate::new(2));
        gate.acquire();
        gate.acquire();
        let g2 = gate.clone();
        let t = std::thread::spawn(move || {
            g2.acquire(); // blocks until a release
            g2.release();
        });
        // Give the thread a moment to reach the blocked state, then free
        // a slot; the thread must then finish.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "third acquire should have blocked");
        gate.release();
        t.join().unwrap();
        gate.release();
    }
}
