//! Pluggable storage backends: where the worker pool puts checkpoint
//! bytes.
//!
//! A backend is a flat, named object store — deliberately minimal so new
//! tiers (compressed, remote, batched) only implement five methods. The
//! engine layers the checkpoint layout on top, using the same file names
//! as [`scrutiny_ckpt::CheckpointStore`]:
//!
//! * monolithic: `ckpt_v.data` + `ckpt_v.aux`
//! * sharded: `ckpt_v.data.sNNN` + `ckpt_v.smf` manifest + `ckpt_v.aux`
//!
//! so a [`DirBackend`] directory is readable by the existing
//! [`scrutiny_ckpt::Checkpoint::load`] / restart path with no conversion.

use crate::error::EngineError;
use scrutiny_ckpt::names::{self, CkptName};
use scrutiny_ckpt::{write_file_atomic, CkptError};
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A named-object store the engine writes checkpoints into. Object names
/// follow the grammar of [`scrutiny_ckpt::names`].
///
/// Implementations must be safe to call from multiple worker threads at
/// once. `put` must be atomic per object: a reader never observes a
/// half-written object under its final name.
pub trait StorageBackend: Send + Sync {
    /// Durably store `bytes` under `name`, replacing any previous object.
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError>;
    /// Fetch a whole object. A missing object is
    /// [`CkptError::Io`] with [`std::io::ErrorKind::NotFound`] (the
    /// signal layout probing relies on); other errors mean the object
    /// may exist but could not be read.
    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError>;
    /// All object names, in no particular order.
    fn list(&self) -> Result<Vec<String>, CkptError>;
    /// Remove an object (idempotent: missing objects are not an error).
    fn delete(&self, name: &str) -> Result<(), CkptError>;
    /// Human-readable description for reports and error messages.
    fn label(&self) -> String;
}

/// Committed checkpoint versions in a backend, ascending.
pub fn list_versions(backend: &dyn StorageBackend) -> Result<Vec<u64>, EngineError> {
    let mut versions: Vec<u64> = backend
        .list()?
        .iter()
        .filter_map(|n| names::committed_version(n))
        .collect();
    versions.sort_unstable();
    versions.dedup();
    Ok(versions)
}

/// Read checkpoint `version` back out of a backend as `(data, aux)` byte
/// images for [`scrutiny_ckpt::Checkpoint::from_bytes`] — reassembling
/// and CRC-verifying the sharded layout, or reconstructing a delta chain
/// (see [`scrutiny_ckpt::delta`]), when no monolithic object exists.
/// Layout probing only follows a definite "no such object"; a permission
/// or I/O failure surfaces as itself.
pub fn read_version(
    backend: &dyn StorageBackend,
    version: u64,
) -> Result<(Vec<u8>, Vec<u8>), EngineError> {
    let aux = backend.get(&names::aux(version))?;
    let data = scrutiny_ckpt::delta::read_data_image(version, |name| backend.get(name))?;
    Ok((data, aux))
}

/// Delete every object of checkpoint `version` (commit markers — manifest
/// and delta — first, so a partial delete reads as uncommitted, never as
/// a corrupt checkpoint).
pub fn delete_version(backend: &dyn StorageBackend, version: u64) -> Result<(), EngineError> {
    backend.delete(&names::manifest(version))?;
    backend.delete(&names::delta(version))?;
    backend.delete(&names::data(version))?;
    backend.delete(&names::aux(version))?;
    for name in backend.list()? {
        if matches!(names::classify(&name), CkptName::Shard { version: v, .. } if v == version) {
            backend.delete(&name)?;
        }
    }
    Ok(())
}

/// Chain-aware keep-last-`keep` retention over a backend: delete every
/// committed version that is neither among the newest `keep` nor an
/// ancestor a retained delta chain still restores through (computed by
/// [`scrutiny_ckpt::delta::live_versions`]).
pub fn prune_chain_aware(backend: &dyn StorageBackend, keep: usize) -> Result<(), EngineError> {
    let committed = scrutiny_ckpt::delta::committed_kinds(backend.list()?);
    if committed.len() <= keep {
        return Ok(());
    }
    let live = scrutiny_ckpt::delta::live_versions(&committed, keep, |v| {
        scrutiny_ckpt::delta::parent_version(&backend.get(&names::delta(v))?)
    })?;
    // Newest first: a doomed chain's child deltas must stop looking
    // committed before their base disappears (`delete_version` removes
    // commit markers first within a version), so a crash mid-sweep never
    // leaves a committed-looking version whose ancestors are gone.
    for &(v, _) in committed.iter().rev() {
        if !live.contains(&v) {
            delete_version(backend, v)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// DirBackend — today's file layout, durable and reader-compatible.
// ---------------------------------------------------------------------------

/// Stores objects as files in one directory with write-fsync-rename
/// publication; the directory doubles as a [`scrutiny_ckpt::CheckpointStore`]
/// directory, so engine-written checkpoints restore through the existing
/// reader/restart path directly.
pub struct DirBackend {
    dir: PathBuf,
}

impl DirBackend {
    /// Open (creating if needed) a directory-backed object store.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirBackend { dir })
    }

    /// The backing directory (hand this to `CheckpointStore::open` or
    /// `Checkpoint::load` to restore through the standard path — but
    /// `drain()` the engine first: the store's open-time orphan sweep
    /// cannot tell a live writer's in-flight shards from crash debris).
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

impl StorageBackend for DirBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        write_file_atomic(&self.dir.join(name), bytes)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        Ok(fs::read(self.dir.join(name))?)
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<(), CkptError> {
        match fs::remove_file(self.dir.join(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn label(&self) -> String {
        format!("dir:{}", self.dir.display())
    }
}

// ---------------------------------------------------------------------------
// MemBackend — in-process store for tests, burn-in and benchmarks.
// ---------------------------------------------------------------------------

/// Keeps objects in a process-local map. No durability — meant for tests,
/// engine burn-in and as the fast tier in a [`ShardedBackend`] stripe.
#[derive(Default)]
pub struct MemBackend {
    objects: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemBackend {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of objects currently held.
    pub fn object_count(&self) -> usize {
        self.objects.lock().unwrap().len()
    }

    /// Total payload bytes currently held.
    pub fn total_bytes(&self) -> usize {
        self.objects.lock().unwrap().values().map(Vec::len).sum()
    }
}

impl StorageBackend for MemBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        self.objects
            .lock()
            .unwrap()
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        self.objects
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| {
                CkptError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("no object named {name:?}"),
                ))
            })
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        Ok(self.objects.lock().unwrap().keys().cloned().collect())
    }

    fn delete(&self, name: &str) -> Result<(), CkptError> {
        self.objects.lock().unwrap().remove(name);
        Ok(())
    }

    fn label(&self) -> String {
        "mem".into()
    }
}

// ---------------------------------------------------------------------------
// ShardedBackend — stripe objects across child backends.
// ---------------------------------------------------------------------------

/// Routes each object to one of several child backends: data shards are
/// striped round-robin by shard index (shard `i` → child `i mod n`, the
/// point of the combinator — each child absorbs a slice of the write
/// bandwidth), everything else by a stable hash of the name. Routing is
/// deterministic, so `get` finds what `put` stored.
pub struct ShardedBackend {
    children: Vec<Arc<dyn StorageBackend>>,
}

impl ShardedBackend {
    /// Build a stripe over `children` (at least one).
    pub fn new(children: Vec<Arc<dyn StorageBackend>>) -> Result<Self, EngineError> {
        if children.is_empty() {
            return Err(EngineError::InvalidConfig(
                "a sharded backend needs at least one child".into(),
            ));
        }
        Ok(ShardedBackend { children })
    }

    /// Number of child backends in the stripe.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    fn route(&self, name: &str) -> &dyn StorageBackend {
        let idx = match names::classify(name) {
            // Data shards stripe round-robin by shard index.
            CkptName::Shard { shard, .. } => shard % self.children.len(),
            _ => {
                // FNV-1a over the name: stable across runs and platforms.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                (h % self.children.len() as u64) as usize
            }
        };
        self.children[idx].as_ref()
    }
}

impl StorageBackend for ShardedBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        self.route(name).put(name, bytes)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        self.route(name).get(name)
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        let mut all = Vec::new();
        for c in &self.children {
            all.extend(c.list()?);
        }
        all.sort_unstable();
        all.dedup();
        Ok(all)
    }

    fn delete(&self, name: &str) -> Result<(), CkptError> {
        self.route(name).delete(name)
    }

    fn label(&self) -> String {
        let inner: Vec<String> = self.children.iter().map(|c| c.label()).collect();
        format!("sharded[{}]", inner.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_roundtrip_and_listing() {
        let b = MemBackend::new();
        b.put("a", b"one").unwrap();
        b.put("b", b"two").unwrap();
        assert_eq!(b.get("a").unwrap(), b"one");
        assert!(b.get("missing").is_err());
        let mut names = b.list().unwrap();
        names.sort();
        assert_eq!(names, ["a", "b"]);
        b.delete("a").unwrap();
        b.delete("a").unwrap(); // idempotent
        assert_eq!(b.object_count(), 1);
    }

    #[test]
    fn dir_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("scrutiny_dirbk_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let b = DirBackend::open(&dir).unwrap();
        b.put("x.data", b"payload").unwrap();
        assert_eq!(b.get("x.data").unwrap(), b"payload");
        assert_eq!(b.list().unwrap(), ["x.data"]);
        b.delete("x.data").unwrap();
        b.delete("x.data").unwrap(); // idempotent on missing
        assert!(b.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_backend_routes_deterministically_and_stripes_shards() {
        let kids: Vec<Arc<dyn StorageBackend>> = vec![
            Arc::new(MemBackend::new()),
            Arc::new(MemBackend::new()),
            Arc::new(MemBackend::new()),
        ];
        let handles: Vec<Arc<dyn StorageBackend>> = kids.clone();
        let s = ShardedBackend::new(kids).unwrap();
        // Shard objects stripe round-robin by index.
        for i in 0..6 {
            s.put(&names::shard(0, i), &[i as u8]).unwrap();
        }
        for (i, h) in handles.iter().enumerate() {
            let names = h.list().unwrap();
            assert_eq!(names.len(), 2, "child {i} got {names:?}");
        }
        // Everything routed is findable again and the union lists all.
        s.put(&names::aux(0), b"aux").unwrap();
        assert_eq!(s.get(&names::aux(0)).unwrap(), b"aux");
        assert_eq!(s.list().unwrap().len(), 7);
        assert_eq!(s.get(&names::shard(0, 4)).unwrap(), [4u8]);
    }

    #[test]
    fn empty_stripe_rejected() {
        assert!(matches!(
            ShardedBackend::new(Vec::new()),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn read_version_propagates_non_notfound_errors() {
        /// Aux reads succeed; the monolithic data read fails with a
        /// *permission* error, which must surface as-is instead of being
        /// masked by a sharded-layout probe.
        struct DeniedData;
        impl StorageBackend for DeniedData {
            fn put(&self, _: &str, _: &[u8]) -> Result<(), CkptError> {
                Ok(())
            }
            fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
                match names::classify(name) {
                    CkptName::Aux(_) => Ok(b"aux".to_vec()),
                    CkptName::Data(_) => Err(CkptError::Io(std::io::Error::new(
                        std::io::ErrorKind::PermissionDenied,
                        "denied",
                    ))),
                    _ => panic!("sharded probe must not run: asked for {name:?}"),
                }
            }
            fn list(&self) -> Result<Vec<String>, CkptError> {
                Ok(Vec::new())
            }
            fn delete(&self, _: &str) -> Result<(), CkptError> {
                Ok(())
            }
            fn label(&self) -> String {
                "denied".into()
            }
        }
        match read_version(&DeniedData, 3) {
            Err(EngineError::Ckpt(CkptError::Io(e))) => {
                assert_eq!(e.kind(), std::io::ErrorKind::PermissionDenied)
            }
            other => panic!("expected the permission error, got {other:?}"),
        }
    }
}
