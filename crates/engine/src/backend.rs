//! Pluggable storage backends: where the worker pool puts checkpoint
//! bytes.
//!
//! A backend is a flat, named object store — deliberately minimal so new
//! tiers (compressed, remote, batched) only implement five methods. The
//! engine layers the checkpoint layout on top, using the same file names
//! as [`scrutiny_ckpt::CheckpointStore`]:
//!
//! * monolithic: `ckpt_v.data` + `ckpt_v.aux`
//! * sharded: `ckpt_v.data.sNNN` + `ckpt_v.smf` manifest + `ckpt_v.aux`
//!
//! so a [`DirBackend`] directory is readable by the existing
//! [`scrutiny_ckpt::Checkpoint::load`] / restart path with no conversion.

use crate::error::EngineError;
use scrutiny_ckpt::names::{self, CkptName, Tenant};
use scrutiny_ckpt::{write_file_atomic, CkptError};
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A named-object store the engine writes checkpoints into. Object names
/// follow the grammar of [`scrutiny_ckpt::names`].
///
/// Implementations must be safe to call from multiple worker threads at
/// once. `put` must be atomic per object: a reader never observes a
/// half-written object under its final name.
pub trait StorageBackend: Send + Sync {
    /// Durably store `bytes` under `name`, replacing any previous object.
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError>;
    /// Fetch a whole object. A missing object is
    /// [`CkptError::Io`] with [`std::io::ErrorKind::NotFound`] (the
    /// signal layout probing relies on); other errors mean the object
    /// may exist but could not be read.
    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError>;
    /// All object names, in no particular order.
    fn list(&self) -> Result<Vec<String>, CkptError>;
    /// Remove an object (idempotent: missing objects are not an error).
    fn delete(&self, name: &str) -> Result<(), CkptError>;
    /// Human-readable description for reports and error messages.
    fn label(&self) -> String;
}

/// Committed checkpoint versions in a backend, ascending.
///
/// Tenant-scoped by construction: `committed_version` parses the
/// default-tenant grammar only, so over a raw pool this sees the default
/// tenant's chain, and over a [`NamespacedBackend`] it sees exactly that
/// tenant's chain (same for [`prune_chain_aware`], `committed_kinds`,
/// and [`crate::RecoveryManager`] scans — namespacing the backend scopes
/// every consumer at once).
pub fn list_versions(backend: &dyn StorageBackend) -> Result<Vec<u64>, EngineError> {
    let mut versions: Vec<u64> = backend
        .list()?
        .iter()
        .filter_map(|n| names::committed_version(n))
        .collect();
    versions.sort_unstable();
    versions.dedup();
    Ok(versions)
}

/// Every tenant namespace with at least one object in the pool,
/// ascending. The default tenant (un-prefixed names) is not listed —
/// it always exists. Prefixes that fail tenant-id validation (foreign
/// directories someone else made) are skipped, not errors.
pub fn list_tenants(backend: &dyn StorageBackend) -> Result<Vec<Tenant>, EngineError> {
    let mut tenants: Vec<Tenant> = backend
        .list()?
        .iter()
        .filter_map(|n| names::split_tenant(n).0.and_then(|t| Tenant::new(t).ok()))
        .collect();
    tenants.sort_unstable();
    tenants.dedup();
    Ok(tenants)
}

/// Read checkpoint `version` back out of a backend as `(data, aux)` byte
/// images for [`scrutiny_ckpt::Checkpoint::from_bytes`] — reassembling
/// and CRC-verifying the sharded layout, or reconstructing a delta chain
/// (see [`scrutiny_ckpt::delta`]), when no monolithic object exists.
/// Layout probing only follows a definite "no such object"; a permission
/// or I/O failure surfaces as itself.
pub fn read_version(
    backend: &dyn StorageBackend,
    version: u64,
) -> Result<(Vec<u8>, Vec<u8>), EngineError> {
    let aux = backend.get(&names::aux(version))?;
    let data = scrutiny_ckpt::delta::read_data_image(version, |name| backend.get(name))?;
    Ok((data, aux))
}

/// Delete every object of checkpoint `version` (commit markers — manifest
/// and delta — first, so a partial delete reads as uncommitted, never as
/// a corrupt checkpoint).
pub fn delete_version(backend: &dyn StorageBackend, version: u64) -> Result<(), EngineError> {
    backend.delete(&names::manifest(version))?;
    backend.delete(&names::delta(version))?;
    backend.delete(&names::data(version))?;
    backend.delete(&names::aux(version))?;
    for name in backend.list()? {
        if matches!(names::classify(&name), CkptName::Shard { version: v, .. } if v == version) {
            backend.delete(&name)?;
        }
    }
    Ok(())
}

/// Chain-aware keep-last-`keep` retention over a backend: delete every
/// committed version that is neither among the newest `keep` nor an
/// ancestor a retained delta chain still restores through (computed by
/// [`scrutiny_ckpt::delta::live_versions`]).
pub fn prune_chain_aware(backend: &dyn StorageBackend, keep: usize) -> Result<(), EngineError> {
    let committed = scrutiny_ckpt::delta::committed_kinds(backend.list()?);
    if committed.len() <= keep {
        return Ok(());
    }
    let live = scrutiny_ckpt::delta::live_versions(&committed, keep, |v| {
        scrutiny_ckpt::delta::parent_version(&backend.get(&names::delta(v))?)
    })?;
    // Newest first: a doomed chain's child deltas must stop looking
    // committed before their base disappears (`delete_version` removes
    // commit markers first within a version), so a crash mid-sweep never
    // leaves a committed-looking version whose ancestors are gone.
    for &(v, _) in committed.iter().rev() {
        if !live.contains(&v) {
            delete_version(backend, v)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// DirBackend — today's file layout, durable and reader-compatible.
// ---------------------------------------------------------------------------

/// Stores objects as files in one directory with write-fsync-rename
/// publication; the directory doubles as a [`scrutiny_ckpt::CheckpointStore`]
/// directory, so engine-written checkpoints restore through the existing
/// reader/restart path directly.
pub struct DirBackend {
    dir: PathBuf,
}

impl DirBackend {
    /// Open (creating if needed) a directory-backed object store.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirBackend { dir })
    }

    /// The backing directory (hand this to `CheckpointStore::open` or
    /// `Checkpoint::load` to restore through the standard path — but
    /// `drain()` the engine first: the store's open-time orphan sweep
    /// cannot tell a live writer's in-flight shards from crash debris).
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

impl StorageBackend for DirBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        let path = self.dir.join(name);
        // Tenant-namespaced names (`t1/ckpt_v...`) map to subdirectories;
        // create them on first write so a fresh pool needs no layout step.
        if name.contains('/') {
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent)?;
            }
        }
        write_file_atomic(&path, bytes)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        Ok(fs::read(self.dir.join(name))?)
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        // Recursive: tenant objects list under their pool-level names
        // (`t1/ckpt_v...`, `/`-joined regardless of platform separator).
        fn walk(dir: &std::path::Path, prefix: &str, out: &mut Vec<String>) -> std::io::Result<()> {
            for entry in fs::read_dir(dir)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let rel = if prefix.is_empty() {
                    name
                } else {
                    format!("{prefix}/{name}")
                };
                if entry.file_type()?.is_dir() {
                    walk(&entry.path(), &rel, out)?;
                } else {
                    out.push(rel);
                }
            }
            Ok(())
        }
        let mut names = Vec::new();
        walk(&self.dir, "", &mut names)?;
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<(), CkptError> {
        match fs::remove_file(self.dir.join(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn label(&self) -> String {
        format!("dir:{}", self.dir.display())
    }
}

// ---------------------------------------------------------------------------
// MemBackend — in-process store for tests, burn-in and benchmarks.
// ---------------------------------------------------------------------------

/// Keeps objects in a process-local map. No durability — meant for tests,
/// engine burn-in and as the fast tier in a [`ShardedBackend`] stripe.
#[derive(Default)]
pub struct MemBackend {
    objects: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemBackend {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of objects currently held.
    pub fn object_count(&self) -> usize {
        self.objects.lock().unwrap().len()
    }

    /// Total payload bytes currently held.
    pub fn total_bytes(&self) -> usize {
        self.objects.lock().unwrap().values().map(Vec::len).sum()
    }
}

impl StorageBackend for MemBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        self.objects
            .lock()
            .unwrap()
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        self.objects
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| {
                CkptError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("no object named {name:?}"),
                ))
            })
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        Ok(self.objects.lock().unwrap().keys().cloned().collect())
    }

    fn delete(&self, name: &str) -> Result<(), CkptError> {
        self.objects.lock().unwrap().remove(name);
        Ok(())
    }

    fn label(&self) -> String {
        "mem".into()
    }
}

// ---------------------------------------------------------------------------
// ShardedBackend — stripe objects across child backends.
// ---------------------------------------------------------------------------

/// Routes each object to one of several child backends: data shards are
/// striped round-robin by shard index (shard `i` → child `i mod n`, the
/// point of the combinator — each child absorbs a slice of the write
/// bandwidth), everything else by a stable hash of the name. Routing is
/// deterministic, so `get` finds what `put` stored.
pub struct ShardedBackend {
    children: Vec<Arc<dyn StorageBackend>>,
}

impl ShardedBackend {
    /// Build a stripe over `children` (at least one).
    pub fn new(children: Vec<Arc<dyn StorageBackend>>) -> Result<Self, EngineError> {
        if children.is_empty() {
            return Err(EngineError::InvalidConfig(
                "a sharded backend needs at least one child".into(),
            ));
        }
        Ok(ShardedBackend { children })
    }

    /// Number of child backends in the stripe.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    fn route(&self, name: &str) -> &dyn StorageBackend {
        // Classify within whatever namespace the object lives in, so a
        // tenant's data shards stripe by index exactly like the default
        // tenant's.
        let idx = match names::classify_scoped(name).1 {
            // Data shards stripe round-robin by shard index.
            CkptName::Shard { shard, .. } => shard % self.children.len(),
            _ => {
                // FNV-1a over the name: stable across runs and platforms.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                (h % self.children.len() as u64) as usize
            }
        };
        self.children[idx].as_ref()
    }
}

impl StorageBackend for ShardedBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        self.route(name).put(name, bytes)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        self.route(name).get(name)
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        let mut all = Vec::new();
        for c in &self.children {
            all.extend(c.list()?);
        }
        all.sort_unstable();
        all.dedup();
        Ok(all)
    }

    fn delete(&self, name: &str) -> Result<(), CkptError> {
        self.route(name).delete(name)
    }

    fn label(&self) -> String {
        let inner: Vec<String> = self.children.iter().map(|c| c.label()).collect();
        format!("sharded[{}]", inner.join(", "))
    }
}

// ---------------------------------------------------------------------------
// NamespacedBackend — one tenant's view of a shared pool.
// ---------------------------------------------------------------------------

/// Restricts a shared storage pool to one tenant's namespace (see
/// [`scrutiny_ckpt::names`], "Tenant namespaces"): `put`/`get`/`delete`
/// prefix names with `<tenant>/`, `list` returns only this tenant's
/// objects with the prefix stripped. An engine, recovery manager, prune,
/// or fault campaign handed a `NamespacedBackend` is tenant-scoped
/// without knowing tenancy exists — it sees a private pool speaking the
/// plain grammar.
///
/// [`NamespacedBackend::root`] is the **default tenant's** view: names
/// pass through un-prefixed, and `list` hides every namespaced object,
/// so root-scope sweeps cannot reach into tenant namespaces even through
/// backends (like [`MemBackend`]) that never interpret names.
///
/// Either view refuses names containing `/` with
/// [`CkptError::InvalidConfig`]: a namespace escape
/// (`put("../other", ..)`-style, spelled `other/...` here) is a caller
/// bug, never silently re-rooted.
pub struct NamespacedBackend {
    inner: Arc<dyn StorageBackend>,
    tenant: Option<Tenant>,
}

impl NamespacedBackend {
    /// `tenant`'s view of the pool `inner`.
    pub fn for_tenant(inner: Arc<dyn StorageBackend>, tenant: Tenant) -> Self {
        NamespacedBackend {
            inner,
            tenant: Some(tenant),
        }
    }

    /// The default tenant's (pool root) view of `inner`.
    pub fn root(inner: Arc<dyn StorageBackend>) -> Self {
        NamespacedBackend {
            inner,
            tenant: None,
        }
    }

    /// The tenant this view is scoped to; `None` for the root view.
    pub fn tenant(&self) -> Option<&Tenant> {
        self.tenant.as_ref()
    }

    fn full(&self, name: &str) -> Result<String, CkptError> {
        if name.contains('/') {
            return Err(CkptError::InvalidConfig(format!(
                "name {name:?} escapes the tenant namespace: object names \
                 inside a namespaced view must not contain '/'"
            )));
        }
        Ok(match &self.tenant {
            Some(t) => t.scoped(name),
            None => name.to_string(),
        })
    }
}

impl StorageBackend for NamespacedBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        self.inner.put(&self.full(name)?, bytes)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        self.inner.get(&self.full(name)?)
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        let mine = self.tenant.as_ref().map(|t| t.as_str());
        Ok(self
            .inner
            .list()?
            .into_iter()
            .filter_map(|n| match names::split_tenant(&n) {
                (t, local) if t == mine && !local.contains('/') => Some(local.to_string()),
                _ => None,
            })
            .collect())
    }

    fn delete(&self, name: &str) -> Result<(), CkptError> {
        self.inner.delete(&self.full(name)?)
    }

    fn label(&self) -> String {
        match &self.tenant {
            Some(t) => format!("tenant:{t}@{}", self.inner.label()),
            None => format!("tenant:@{}", self.inner.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_roundtrip_and_listing() {
        let b = MemBackend::new();
        b.put("a", b"one").unwrap();
        b.put("b", b"two").unwrap();
        assert_eq!(b.get("a").unwrap(), b"one");
        assert!(b.get("missing").is_err());
        let mut names = b.list().unwrap();
        names.sort();
        assert_eq!(names, ["a", "b"]);
        b.delete("a").unwrap();
        b.delete("a").unwrap(); // idempotent
        assert_eq!(b.object_count(), 1);
    }

    #[test]
    fn dir_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("scrutiny_dirbk_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let b = DirBackend::open(&dir).unwrap();
        b.put("x.data", b"payload").unwrap();
        assert_eq!(b.get("x.data").unwrap(), b"payload");
        assert_eq!(b.list().unwrap(), ["x.data"]);
        b.delete("x.data").unwrap();
        b.delete("x.data").unwrap(); // idempotent on missing
        assert!(b.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_backend_routes_deterministically_and_stripes_shards() {
        let kids: Vec<Arc<dyn StorageBackend>> = vec![
            Arc::new(MemBackend::new()),
            Arc::new(MemBackend::new()),
            Arc::new(MemBackend::new()),
        ];
        let handles: Vec<Arc<dyn StorageBackend>> = kids.clone();
        let s = ShardedBackend::new(kids).unwrap();
        // Shard objects stripe round-robin by index.
        for i in 0..6 {
            s.put(&names::shard(0, i), &[i as u8]).unwrap();
        }
        for (i, h) in handles.iter().enumerate() {
            let names = h.list().unwrap();
            assert_eq!(names.len(), 2, "child {i} got {names:?}");
        }
        // Everything routed is findable again and the union lists all.
        s.put(&names::aux(0), b"aux").unwrap();
        assert_eq!(s.get(&names::aux(0)).unwrap(), b"aux");
        assert_eq!(s.list().unwrap().len(), 7);
        assert_eq!(s.get(&names::shard(0, 4)).unwrap(), [4u8]);
    }

    #[test]
    fn empty_stripe_rejected() {
        assert!(matches!(
            ShardedBackend::new(Vec::new()),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn namespaced_views_partition_one_pool() {
        let pool: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let t1 = NamespacedBackend::for_tenant(pool.clone(), Tenant::new("t1").unwrap());
        let t2 = NamespacedBackend::for_tenant(pool.clone(), Tenant::new("t2").unwrap());
        let root = NamespacedBackend::root(pool.clone());
        t1.put(&names::data(1), b"one").unwrap();
        t2.put(&names::data(1), b"two").unwrap();
        root.put(&names::data(1), b"zero").unwrap();
        // Same grammar name, three distinct objects.
        assert_eq!(t1.get(&names::data(1)).unwrap(), b"one");
        assert_eq!(t2.get(&names::data(1)).unwrap(), b"two");
        assert_eq!(root.get(&names::data(1)).unwrap(), b"zero");
        // Each view lists only its own namespace, prefix-stripped.
        assert_eq!(t1.list().unwrap(), [names::data(1)]);
        assert_eq!(root.list().unwrap(), [names::data(1)]);
        assert_eq!(list_versions(&t1).unwrap(), [1]);
        // Deleting in one namespace leaves the others intact.
        t1.delete(&names::data(1)).unwrap();
        assert!(t1.get(&names::data(1)).is_err());
        assert_eq!(t2.get(&names::data(1)).unwrap(), b"two");
        assert_eq!(root.get(&names::data(1)).unwrap(), b"zero");
        // Escapes are refused, not re-rooted.
        assert!(matches!(
            t1.put("t2/evil", b"x"),
            Err(CkptError::InvalidConfig(_))
        ));
        assert!(matches!(
            root.get("t2/ckpt_000001.data"),
            Err(CkptError::InvalidConfig(_))
        ));
        let mut tenants: Vec<String> = list_tenants(pool.as_ref())
            .unwrap()
            .iter()
            .map(|t| t.as_str().to_string())
            .collect();
        tenants.sort();
        assert_eq!(tenants, ["t2"]);
    }

    #[test]
    fn dir_backend_lists_tenant_subdirectories() {
        let dir = std::env::temp_dir().join(format!("scrutiny_dirbk_ns_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let b = DirBackend::open(&dir).unwrap();
        b.put("ckpt_000001.data", b"root").unwrap();
        b.put("t1/ckpt_000001.data", b"tenant").unwrap();
        assert_eq!(b.get("t1/ckpt_000001.data").unwrap(), b"tenant");
        let mut all = b.list().unwrap();
        all.sort();
        assert_eq!(all, ["ckpt_000001.data", "t1/ckpt_000001.data"]);
        b.delete("t1/ckpt_000001.data").unwrap();
        assert_eq!(b.list().unwrap(), ["ckpt_000001.data"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_version_propagates_non_notfound_errors() {
        /// Aux reads succeed; the monolithic data read fails with a
        /// *permission* error, which must surface as-is instead of being
        /// masked by a sharded-layout probe.
        struct DeniedData;
        impl StorageBackend for DeniedData {
            fn put(&self, _: &str, _: &[u8]) -> Result<(), CkptError> {
                Ok(())
            }
            fn get(&self, name: &str) -> Result<Vec<u8>, CkptError> {
                match names::classify(name) {
                    CkptName::Aux(_) => Ok(b"aux".to_vec()),
                    CkptName::Data(_) => Err(CkptError::Io(std::io::Error::new(
                        std::io::ErrorKind::PermissionDenied,
                        "denied",
                    ))),
                    _ => panic!("sharded probe must not run: asked for {name:?}"),
                }
            }
            fn list(&self) -> Result<Vec<String>, CkptError> {
                Ok(Vec::new())
            }
            fn delete(&self, _: &str) -> Result<(), CkptError> {
                Ok(())
            }
            fn label(&self) -> String {
                "denied".into()
            }
        }
        match read_version(&DeniedData, 3) {
            Err(EngineError::Ckpt(CkptError::Io(e))) => {
                assert_eq!(e.kind(), std::io::ErrorKind::PermissionDenied)
            }
            other => panic!("expected the permission error, got {other:?}"),
        }
    }
}
