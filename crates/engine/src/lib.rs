//! # scrutiny-engine — asynchronous, sharded checkpoint pipeline
//!
//! The paper's storage reduction shrinks checkpoint *bytes*; this crate
//! removes the remaining cost from the compute thread's critical path:
//! the time spent serializing and writing them. Hascoët & Araya-Polo
//! frame checkpoint placement as a runtime policy decoupled from the
//! application, and the authors' AutoCheck work targets long-running
//! loops where checkpoint latency dominates — so the engine makes the
//! whole scrutinize→prune→checkpoint flow a background pipeline:
//!
//! * [`Snapshot`] / staging — `submit` memcpys the variables into an
//!   owned snapshot (double-buffered: a new snapshot stages while the
//!   previous one drains) and the compute loop resumes immediately.
//! * worker pool — `std::thread` workers behind a bounded queue
//!   serialize the pruned/tiered payload off-thread, **sharding large
//!   variables across workers** (via
//!   [`scrutiny_ckpt::shard::plan_shards`]) so a single big array does
//!   not serialize on one core. Output is bit-identical to the blocking
//!   writer's.
//! * [`StorageBackend`] — pluggable object stores: [`DirBackend`]
//!   (today's file layout, fsync-durable, readable by the existing
//!   reader/restart path), [`MemBackend`] (in-process, for tests and
//!   burn-in), and [`ShardedBackend`] (stripes shards across child
//!   backends).
//! * [`EngineHandle`] — `submit(vars, plans) -> Ticket`,
//!   `wait(ticket) -> StorageBreakdown`, `drain()`, with worker
//!   failures (including panics) propagated to the caller.
//! * delta mode ([`EngineConfig::delta`]) — epochs publish as base+delta
//!   chains ([`scrutiny_ckpt::delta`]): only the dirty pages of the
//!   AD-pruned serialized state are written after the base, with
//!   periodic rebases and chain-aware retention, so temporal and
//!   semantic redundancy removal compose. Page diffing happens in the
//!   worker pool, ordered by a version turnstile.
//!
//! ```
//! use scrutiny_engine::{EngineConfig, EngineHandle, MemBackend};
//! use scrutiny_ckpt::{VarData, VarPlan, VarRecord};
//! use std::sync::Arc;
//!
//! let engine = EngineHandle::open(Arc::new(MemBackend::new()),
//!                                 EngineConfig::default()).unwrap();
//! let vars = vec![VarRecord::new("u", VarData::F64(vec![1.0; 1000]))];
//! let ticket = engine.submit(&vars, &[VarPlan::Full]).unwrap();
//! // … compute continues here while workers serialize and store …
//! let storage = engine.wait(ticket).unwrap();
//! assert!(storage.total() > 8000);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod engine;
pub mod error;
pub mod snapshot;

pub use backend::{
    list_versions, prune_chain_aware, read_version, DirBackend, MemBackend, ShardedBackend,
    StorageBackend,
};
pub use engine::{EngineConfig, EngineHandle, Layout, Ticket};
pub use error::EngineError;
pub use snapshot::Snapshot;
// Re-export the delta-chain policy so delta-mode engines configure from
// one crate.
pub use scrutiny_ckpt::delta::DeltaPolicy;
