//! # scrutiny-engine — asynchronous, sharded checkpoint pipeline
//!
//! The paper's storage reduction shrinks checkpoint *bytes*; this crate
//! removes the remaining cost from the compute thread's critical path:
//! the time spent serializing and writing them. Hascoët & Araya-Polo
//! frame checkpoint placement as a runtime policy decoupled from the
//! application, and the authors' AutoCheck work targets long-running
//! loops where checkpoint latency dominates — so the engine makes the
//! whole scrutinize→prune→checkpoint flow a background pipeline:
//!
//! * [`Snapshot`] / staging — `submit` memcpys the variables into an
//!   owned snapshot (double-buffered: a new snapshot stages while the
//!   previous one drains) and the compute loop resumes immediately.
//! * worker pool — `std::thread` workers behind a bounded queue
//!   serialize the pruned/tiered payload off-thread, **sharding large
//!   variables across workers** (via
//!   [`scrutiny_ckpt::shard::plan_shards`]) so a single big array does
//!   not serialize on one core. Output is bit-identical to the blocking
//!   writer's.
//! * [`StorageBackend`] — pluggable object stores: [`DirBackend`]
//!   (today's file layout, fsync-durable, readable by the existing
//!   reader/restart path), [`MemBackend`] (in-process, for tests and
//!   burn-in), and [`ShardedBackend`] (stripes shards across child
//!   backends).
//! * [`EngineHandle`] — `submit(vars, plans) -> Ticket`,
//!   `wait(ticket) -> StorageBreakdown`, `drain()`, with worker
//!   failures (including panics) propagated to the caller.
//! * delta mode ([`EngineConfig::delta`]) — epochs publish as base+delta
//!   chains ([`scrutiny_ckpt::delta`]): only the dirty pages of the
//!   AD-pruned serialized state are written after the base, with
//!   periodic rebases and chain-aware retention, so temporal and
//!   semantic redundancy removal compose. Page diffing happens in the
//!   worker pool, ordered by a version turnstile.
//! * [`RecoveryManager`] — the corruption-tolerant read side: restores
//!   the newest checkpoint that fully verifies (shards and delta links
//!   fetched and CRC-checked concurrently by
//!   [`scrutiny_ckpt::restore`]), walking back across damaged versions
//!   and naming each rejected one in a typed [`RecoveryReport`].
//!
//! The whole lifecycle — submit asynchronously, lose a byte on the
//! storage tier, recover to the newest intact version:
//!
//! ```
//! use scrutiny_engine::{
//!     EngineConfig, EngineHandle, MemBackend, RecoveryConfig, RecoveryManager,
//!     StorageBackend,
//! };
//! use scrutiny_ckpt::{names, VarData, VarPlan, VarRecord};
//! use std::sync::Arc;
//!
//! let mem = Arc::new(MemBackend::new());
//! let engine = EngineHandle::open(mem.clone(), EngineConfig::default()).unwrap();
//!
//! // Two checkpoint epochs; compute overlaps the workers' serialization.
//! for epoch in 0..2 {
//!     let vars = vec![VarRecord::new("u", VarData::F64(vec![epoch as f64; 1000]))];
//!     let ticket = engine.submit(&vars, &[VarPlan::Full]).unwrap();
//!     // … compute continues here while workers serialize and store …
//!     let storage = engine.wait(ticket).unwrap();
//!     assert!(storage.total() > 8000);
//! }
//!
//! // The storage tier damages a byte of the newest checkpoint…
//! let mut bytes = mem.get(&names::data(1)).unwrap();
//! bytes[100] ^= 0xFF;
//! mem.put(&names::data(1), &bytes).unwrap();
//!
//! // …so recovery rejects version 1 (CRC mismatch) and falls back.
//! let recovered = RecoveryManager::new(mem, RecoveryConfig::default())
//!     .recover_latest()
//!     .unwrap();
//! assert_eq!(recovered.version, 0);
//! assert_eq!(recovered.report.rejected_versions(), vec![1]);
//! assert!(recovered.checkpoint.var("u").is_ok());
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod engine;
pub mod error;
pub mod recovery;
pub mod snapshot;

pub use backend::{
    list_tenants, list_versions, prune_chain_aware, read_version, DirBackend, MemBackend,
    NamespacedBackend, ShardedBackend, StorageBackend,
};
pub use engine::{EngineConfig, EngineHandle, Layout, Ticket};
pub use error::EngineError;
pub use recovery::{
    Recovered, RecoveryConfig, RecoveryManager, RecoveryReport, RecoveryWalk, RejectedVersion,
};
pub use snapshot::{Snapshot, StagingGate};
// Re-export the delta-chain policy and the restore pipeline's knobs so
// delta-mode engines and recovery callers configure from one crate.
pub use scrutiny_ckpt::delta::DeltaPolicy;
pub use scrutiny_ckpt::restore::{RestoreOptions, RestoreStats};
