//! Recovery: find the newest checkpoint in a backend that still
//! verifies, restoring it through the parallel pipeline and falling
//! back across damaged versions instead of erroring out.
//!
//! The write path keeps several versions precisely so that a damaged
//! newest checkpoint is an inconvenience, not a lost run ("save several
//! versions of checkpoint files to make the data more durable", paper
//! §II.A; divide-and-conquer checkpointing likewise assumes recovery
//! can select among multiple viable snapshots). [`RecoveryManager`]
//! implements that selection:
//!
//! 1. Scan the backend for every version that left *any* artifact —
//!    including ones whose commit marker is missing, so the report can
//!    name them instead of silently skipping them.
//! 2. Newest-first, fully verify each candidate: auxiliary file
//!    present, every shard/delta CRC good (checked concurrently by
//!    [`scrutiny_ckpt::restore`]), delta parents resolvable, and the
//!    assembled image parses through
//!    [`scrutiny_ckpt::Checkpoint::from_bytes`] (whole-file CRC +
//!    structural cross-checks).
//! 3. An *integrity* failure (bad CRC, truncation, missing object,
//!    broken delta parent) rejects the candidate and the scan walks
//!    back; an *environmental* failure (permissions, I/O other than
//!    not-found) aborts — retrying older versions cannot fix a dead
//!    disk, and silently degrading to an older checkpoint would hide
//!    it.
//!
//! The outcome is a [`Recovered`] checkpoint plus a [`RecoveryReport`]
//! naming every rejected version and why; if nothing verifies, the
//! typed [`EngineError::Unrecoverable`] carries the same report.

use crate::backend::StorageBackend;
use crate::error::EngineError;
use scrutiny_ckpt::names::{self, CkptName};
use scrutiny_ckpt::restore::{read_data_image_parallel_obs, RestoreOptions, RestoreStats};
use scrutiny_ckpt::{Checkpoint, CkptError};
use scrutiny_obs::{span, Recorder, Snapshot};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Tuning knobs for a recovery scan.
#[derive(Clone, Debug, Default)]
pub struct RecoveryConfig {
    /// Worker threads for the parallel restore of each candidate
    /// (see [`RestoreOptions::threads`]; 0 — the default — is auto,
    /// 1 is serial).
    pub threads: usize,
    /// Candidates examined before giving up (0 — the default — scans
    /// every version the backend holds). Bounds worst-case recovery
    /// latency when a backend holds a long history of damaged
    /// checkpoints.
    pub max_scan: usize,
    /// Observability sink for the scan: candidate/reject/recovered
    /// events, the `engine.recovery.scan` span, and the winning
    /// restore's `ckpt.restore.*` telemetry all land here. Defaults to
    /// [`Recorder::disabled`] (no overhead).
    pub recorder: Recorder,
}

/// One candidate the scan examined and refused, and the typed reason.
#[derive(Debug)]
pub struct RejectedVersion {
    /// The checkpoint version that failed verification.
    pub version: u64,
    /// Why it failed (the restore/parse error, or a missing commit
    /// marker).
    pub error: CkptError,
}

/// What a recovery scan did: which versions it examined, which it
/// rejected and why, and what the winning restore looked like.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// The version that recovered, if any.
    pub recovered: Option<u64>,
    /// Every rejected candidate, newest first, with its typed reason.
    pub rejected: Vec<RejectedVersion>,
    /// Candidates examined (rejected plus the winner, if any).
    pub scanned: usize,
    /// Pipeline stats of the winning restore.
    pub restore: Option<RestoreStats>,
}

impl RecoveryReport {
    /// The rejected versions, newest first (convenience for asserts and
    /// log lines; the full reasons live in [`RecoveryReport::rejected`]).
    pub fn rejected_versions(&self) -> Vec<u64> {
        self.rejected.iter().map(|r| r.version).collect()
    }
}

/// A successfully recovered checkpoint: the verified byte images, the
/// parsed form, and the scan report that led here.
///
/// Holding both the raw images and the parsed [`Checkpoint`] is
/// deliberate — the images are what bit-identity audits and re-publish
/// paths need, and they already exist when verification finishes — but
/// it does mean roughly twice the checkpoint's footprint is live until
/// one side is dropped. Callers that only materialize variables should
/// move `checkpoint` out and drop the rest.
pub struct Recovered {
    /// Version that verified.
    pub version: u64,
    /// Its reconstructed data-file image (bit-identical to a serial
    /// load).
    pub data: Vec<u8>,
    /// Its auxiliary-file image.
    pub aux: Vec<u8>,
    /// The parsed checkpoint, ready for materialization.
    pub checkpoint: Checkpoint,
    /// What the scan rejected on the way, and the restore stats.
    pub report: RecoveryReport,
}

// `Checkpoint` holds parsed payloads and has no `Debug`; summarize.
impl std::fmt::Debug for Recovered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recovered")
            .field("version", &self.version)
            .field("data_bytes", &self.data.len())
            .field("aux_bytes", &self.aux.len())
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

/// Is this error a *statement about the checkpoint* (damaged, truncated,
/// missing pieces) rather than about the environment? Integrity failures
/// make the scan fall back; environmental ones abort it.
fn is_integrity_failure(e: &CkptError) -> bool {
    match e {
        CkptError::Corrupt(_)
        | CkptError::ChecksumMismatch { .. }
        | CkptError::MissingVar(_)
        | CkptError::PlanMismatch(_) => true,
        CkptError::Io(io) => io.kind() == std::io::ErrorKind::NotFound,
        // Policy refusals (quota, backpressure, drain) and bad
        // configuration say nothing about the stored bytes: abort.
        CkptError::InvalidConfig(_) | CkptError::Rejected(_) => false,
    }
}

/// The corruption-tolerant read side of the engine: restores the newest
/// fully-verifiable checkpoint from a backend, walking back across
/// damaged versions. See the [module docs](self) for the scan contract.
pub struct RecoveryManager {
    backend: Arc<dyn StorageBackend>,
    cfg: RecoveryConfig,
}

impl RecoveryManager {
    /// A manager over `backend` (typically
    /// [`crate::EngineHandle::backend`], or any store directory wrapped
    /// in a [`crate::DirBackend`]).
    pub fn new(backend: Arc<dyn StorageBackend>, cfg: RecoveryConfig) -> Self {
        RecoveryManager { backend, cfg }
    }

    /// Every version the backend holds *any* artifact of — committed or
    /// not — newest first. Uncommitted versions (aux/shards with no
    /// commit marker: an interrupted write, or a marker lost to
    /// corruption cleanup) are scan candidates so the report can name
    /// them.
    pub fn candidates(&self) -> Result<Vec<u64>, EngineError> {
        Ok(Self::scan_listing(&self.backend.list()?).0)
    }

    /// Derive the candidate walk order (all versions with artifacts,
    /// newest first) and the committed set from **one** backend listing
    /// — listing once keeps the two views consistent (a version
    /// committed between two listings must not be rejected as
    /// marker-less against a stale snapshot) and halves the listing I/O
    /// per scan.
    fn scan_listing(listing: &[String]) -> (Vec<u64>, BTreeSet<u64>) {
        let mut versions = BTreeSet::new();
        let mut committed = BTreeSet::new();
        for name in listing {
            match names::classify(name) {
                CkptName::Data(v) | CkptName::Manifest(v) | CkptName::Delta(v) => {
                    versions.insert(v);
                    committed.insert(v);
                }
                CkptName::Aux(v) => {
                    versions.insert(v);
                }
                CkptName::Shard { version, .. } => {
                    versions.insert(version);
                }
                CkptName::Tmp | CkptName::Foreign | CkptName::Other => {}
            }
        }
        (versions.into_iter().rev().collect(), committed)
    }

    /// Fully verify and restore one specific version: commit marker
    /// present, parallel image reconstruction with every CRC checked,
    /// auxiliary file read, and the pair parsed through
    /// [`Checkpoint::from_bytes`]. No fallback — the typed error says
    /// exactly what is wrong with *this* version. (Lists the backend
    /// once to find the commit markers; a scan over many candidates
    /// should go through [`RecoveryManager::recover_latest`], which
    /// shares one listing across the whole walk.)
    pub fn restore_version(
        &self,
        version: u64,
    ) -> Result<(Vec<u8>, Vec<u8>, Checkpoint, RestoreStats), CkptError> {
        let (_, committed) = Self::scan_listing(&self.backend.list()?);
        self.restore_committed(version, &committed)
    }

    /// [`RecoveryManager::restore_version`] against an already-derived
    /// committed set (one [`RecoveryManager::scan_listing`] pass serves
    /// a whole scan). Cheap checks run first: the commit marker and the
    /// small auxiliary file reject a broken candidate before any shard
    /// is fetched or hashed.
    fn restore_committed(
        &self,
        version: u64,
        committed: &BTreeSet<u64>,
    ) -> Result<(Vec<u8>, Vec<u8>, Checkpoint, RestoreStats), CkptError> {
        if !committed.contains(&version) {
            return Err(CkptError::Corrupt(format!(
                "version {version} has checkpoint artifacts but no commit marker \
                 (data, manifest, or delta file)"
            )));
        }
        let backend = self.backend.as_ref();
        let aux = backend.get(&names::aux(version))?;
        let (data, stats) = read_data_image_parallel_obs(
            version,
            &|name: &str| backend.get(name),
            &RestoreOptions {
                threads: self.cfg.threads,
            },
            &self.cfg.recorder,
        )?;
        let checkpoint = Checkpoint::from_bytes(&data, &aux)?;
        Ok((data, aux, checkpoint, stats))
    }

    /// Restore the newest checkpoint that fully verifies, walking back
    /// across versions that do not. Returns the recovered checkpoint
    /// with a report naming every rejected version; if no candidate
    /// verifies (or the scan budget runs out first),
    /// [`EngineError::Unrecoverable`] carries the same report.
    pub fn recover_latest(&self) -> Result<Recovered, EngineError> {
        let rec = &self.cfg.recorder;
        let (candidates, committed) = Self::scan_listing(&self.backend.list()?);
        let _scan = span!(
            rec,
            "engine.recovery.scan",
            candidates = candidates.len(),
            max_scan = self.cfg.max_scan
        );
        let mut report = RecoveryReport::default();
        for version in candidates {
            if self.cfg.max_scan > 0 && report.scanned >= self.cfg.max_scan {
                rec.event(
                    "engine.recovery.budget_exhausted",
                    &[("scanned", report.scanned.into())],
                );
                break;
            }
            report.scanned += 1;
            rec.event("engine.recovery.candidate", &[("version", version.into())]);
            match self.restore_committed(version, &committed) {
                Ok((data, aux, checkpoint, stats)) => {
                    rec.event(
                        "engine.recovery.recovered",
                        &[
                            ("version", version.into()),
                            ("data_bytes", data.len().into()),
                            ("aux_bytes", aux.len().into()),
                            ("rejected", report.rejected.len().into()),
                        ],
                    );
                    report.recovered = Some(version);
                    report.restore = Some(stats);
                    return Ok(Recovered {
                        version,
                        data,
                        aux,
                        checkpoint,
                        report,
                    });
                }
                Err(e) if is_integrity_failure(&e) => {
                    rec.event(
                        "engine.recovery.reject",
                        &[
                            ("version", version.into()),
                            ("reason", e.to_string().into()),
                        ],
                    );
                    report.rejected.push(RejectedVersion { version, error: e });
                }
                Err(e) => {
                    rec.event(
                        "engine.recovery.abort",
                        &[("version", version.into()), ("error", e.to_string().into())],
                    );
                    return Err(e.into());
                }
            }
        }
        Err(EngineError::Unrecoverable(Box::new(report)))
    }
}

/// The shape of a recovery scan reconstructed **from the observability
/// log alone** — no [`RecoveryReport`] in hand. This is the
/// log-completeness contract of the recovery events: everything a
/// post-mortem needs (what was examined, what was refused and why, what
/// won) survives the trip through JSONL.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryWalk {
    /// Versions examined, in scan order (newest first).
    pub candidates: Vec<u64>,
    /// `(version, reason)` for every rejected candidate, in scan order.
    pub rejected: Vec<(u64, String)>,
    /// The version that recovered, if the scan succeeded.
    pub recovered: Option<u64>,
}

impl RecoveryWalk {
    /// Rebuild the walk from the `engine.recovery.*` events of a
    /// snapshot (live, or parsed back from JSONL).
    pub fn from_snapshot(snap: &Snapshot) -> RecoveryWalk {
        let mut walk = RecoveryWalk::default();
        let field_u64 = |ev: &scrutiny_obs::Event, key: &str| -> Option<u64> {
            ev.fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
                if let scrutiny_obs::FieldValue::U64(n) = v {
                    Some(*n)
                } else {
                    None
                }
            })
        };
        let field_str = |ev: &scrutiny_obs::Event, key: &str| -> Option<String> {
            ev.fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
                if let scrutiny_obs::FieldValue::Str(s) = v {
                    Some(s.clone())
                } else {
                    None
                }
            })
        };
        for ev in &snap.events {
            if ev.kind != scrutiny_obs::EventKind::Point {
                continue;
            }
            match ev.name.as_str() {
                "engine.recovery.candidate" => {
                    if let Some(v) = field_u64(ev, "version") {
                        walk.candidates.push(v);
                    }
                }
                "engine.recovery.reject" => {
                    if let Some(v) = field_u64(ev, "version") {
                        walk.rejected
                            .push((v, field_str(ev, "reason").unwrap_or_default()));
                    }
                }
                "engine.recovery.recovered" => {
                    walk.recovered = field_u64(ev, "version");
                }
                _ => {}
            }
        }
        walk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::engine::{EngineConfig, EngineHandle, Layout};
    use scrutiny_ckpt::{VarData, VarPlan, VarRecord};

    fn state(tag: f64) -> (Vec<VarRecord>, Vec<VarPlan>) {
        (
            vec![VarRecord::new(
                "u",
                VarData::F64((0..300).map(|i| i as f64 + tag).collect()),
            )],
            vec![VarPlan::Full],
        )
    }

    fn filled_backend(layout: Layout, epochs: u64) -> Arc<MemBackend> {
        let mem = Arc::new(MemBackend::new());
        let eng = EngineHandle::open(
            mem.clone(),
            EngineConfig {
                workers: 2,
                target_shards: 3,
                layout,
                ..Default::default()
            },
        )
        .unwrap();
        for e in 0..epochs {
            let (vars, plans) = state(e as f64 * 0.5);
            let t = eng.submit(&vars, &plans).unwrap();
            eng.wait(t).unwrap();
        }
        mem
    }

    #[test]
    fn clean_backend_recovers_newest() {
        let mem = filled_backend(Layout::Monolithic, 3);
        let mgr = RecoveryManager::new(mem, RecoveryConfig::default());
        let r = mgr.recover_latest().unwrap();
        assert_eq!(r.version, 2);
        assert!(r.report.rejected.is_empty());
        assert_eq!(r.report.scanned, 1);
        assert!(r.checkpoint.var("u").is_ok());
    }

    #[test]
    fn corrupt_newest_falls_back_with_named_rejection() {
        let mem = filled_backend(Layout::Sharded, 3);
        // Flip a payload byte of version 2's first shard.
        let name = names::shard(2, 0);
        let mut bytes = mem.get(&name).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        mem.put(&name, &bytes).unwrap();

        let mgr = RecoveryManager::new(mem, RecoveryConfig::default());
        let r = mgr.recover_latest().unwrap();
        assert_eq!(r.version, 1);
        assert_eq!(r.report.rejected_versions(), vec![2]);
        assert!(matches!(
            r.report.rejected[0].error,
            CkptError::ChecksumMismatch { .. }
        ));
        assert_eq!(r.report.scanned, 2);
    }

    #[test]
    fn version_without_commit_marker_is_named_not_skipped() {
        let mem = filled_backend(Layout::Monolithic, 2);
        mem.delete(&names::data(1)).unwrap(); // aux survives

        let mgr = RecoveryManager::new(mem, RecoveryConfig::default());
        let r = mgr.recover_latest().unwrap();
        assert_eq!(r.version, 0);
        assert_eq!(r.report.rejected_versions(), vec![1]);
        let msg = r.report.rejected[0].error.to_string();
        assert!(msg.contains("commit marker"), "{msg}");
    }

    #[test]
    fn nothing_recoverable_is_a_typed_error_with_the_report() {
        let mem = filled_backend(Layout::Monolithic, 2);
        for v in 0..2u64 {
            let name = names::data(v);
            let mut bytes = mem.get(&name).unwrap();
            bytes[20] ^= 0xFF;
            mem.put(&name, &bytes).unwrap();
        }
        let mgr = RecoveryManager::new(mem, RecoveryConfig::default());
        match mgr.recover_latest() {
            Err(EngineError::Unrecoverable(report)) => {
                assert_eq!(report.rejected_versions(), vec![1, 0]);
                assert_eq!(report.scanned, 2);
            }
            other => panic!("expected Unrecoverable, got {:?}", other.map(|r| r.version)),
        }
    }

    #[test]
    fn max_scan_bounds_the_walk() {
        let mem = filled_backend(Layout::Monolithic, 4);
        for v in 2..4u64 {
            let name = names::data(v);
            let mut bytes = mem.get(&name).unwrap();
            bytes[9] ^= 0xFF;
            mem.put(&name, &bytes).unwrap();
        }
        let mgr = RecoveryManager::new(
            mem,
            RecoveryConfig {
                max_scan: 2,
                ..Default::default()
            },
        );
        // Versions 3 and 2 are corrupt and exhaust the budget; 1 would
        // verify but is out of scan range.
        match mgr.recover_latest() {
            Err(EngineError::Unrecoverable(report)) => {
                assert_eq!(report.scanned, 2);
                assert_eq!(report.rejected_versions(), vec![3, 2]);
            }
            other => panic!("expected Unrecoverable, got {:?}", other.map(|r| r.version)),
        }
    }

    #[test]
    fn environmental_errors_abort_instead_of_degrading() {
        /// Listing works; every get is a permission failure.
        struct Denied(MemBackend);
        impl StorageBackend for Denied {
            fn put(&self, n: &str, b: &[u8]) -> Result<(), CkptError> {
                self.0.put(n, b)
            }
            fn get(&self, _: &str) -> Result<Vec<u8>, CkptError> {
                Err(CkptError::Io(std::io::Error::new(
                    std::io::ErrorKind::PermissionDenied,
                    "denied",
                )))
            }
            fn list(&self) -> Result<Vec<String>, CkptError> {
                self.0.list()
            }
            fn delete(&self, n: &str) -> Result<(), CkptError> {
                self.0.delete(n)
            }
            fn label(&self) -> String {
                "denied".into()
            }
        }
        let inner = MemBackend::new();
        inner.put(&names::data(0), b"x").unwrap();
        inner.put(&names::aux(0), b"x").unwrap();
        let mgr = RecoveryManager::new(Arc::new(Denied(inner)), RecoveryConfig::default());
        match mgr.recover_latest() {
            Err(EngineError::Ckpt(CkptError::Io(e))) => {
                assert_eq!(e.kind(), std::io::ErrorKind::PermissionDenied)
            }
            other => panic!(
                "expected the permission error, got {:?}",
                other.map(|r| r.version)
            ),
        }
    }
}
