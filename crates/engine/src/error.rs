//! Engine error type: checkpoint failures plus worker-pool failure modes.

use scrutiny_ckpt::CkptError;
use std::fmt;

/// Errors surfaced by the asynchronous checkpoint engine.
#[derive(Debug)]
pub enum EngineError {
    /// A checkpoint serialization/storage error (propagated from the
    /// worker that hit it to the `wait`/`drain` caller).
    Ckpt(CkptError),
    /// A worker panicked while processing a submission; the payload is
    /// the panic message. The engine keeps running — only the affected
    /// ticket fails.
    WorkerPanic(String),
    /// The engine was configured unusably (zero workers, zero staging
    /// buffers, …).
    InvalidConfig(String),
    /// `wait` was called with a ticket this engine never issued (or one
    /// that was already waited on).
    UnknownTicket(u64),
    /// A recovery scan examined every candidate checkpoint and none
    /// fully verified; the report names each rejected version and why
    /// (see [`crate::recovery::RecoveryManager`]).
    Unrecoverable(Box<crate::recovery::RecoveryReport>),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Ckpt(e) => write!(f, "checkpoint error: {e}"),
            EngineError::WorkerPanic(m) => write!(f, "checkpoint worker panicked: {m}"),
            EngineError::InvalidConfig(m) => write!(f, "invalid engine configuration: {m}"),
            EngineError::UnknownTicket(id) => {
                write!(f, "ticket {id} was never issued or already resolved")
            }
            EngineError::Unrecoverable(report) => {
                write!(
                    f,
                    "no recoverable checkpoint: scanned {} version(s), rejected [{}]",
                    report.scanned,
                    report
                        .rejected
                        .iter()
                        .map(|r| format!("{}: {}", r.version, r.error))
                        .collect::<Vec<_>>()
                        .join("; ")
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Ckpt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CkptError> for EngineError {
    fn from(e: CkptError) -> Self {
        EngineError::Ckpt(e)
    }
}
