//! The asynchronous checkpoint engine: a bounded worker pool that takes a
//! staged snapshot off the compute thread, serializes it in shards, and
//! publishes it through a [`StorageBackend`].
//!
//! Lifecycle of one submission:
//!
//! 1. `submit` acquires a staging slot (double-buffered by default),
//!    memcpys the variables into an owned [`Snapshot`], plans the shard
//!    split, enqueues one task per shard on the bounded queue, and
//!    returns a [`Ticket`] — the compute thread resumes immediately.
//! 2. Workers pop shard tasks and serialize their segments concurrently,
//!    so one large array does not serialize on a single core.
//! 3. The worker that finishes the *last* shard of a submission seals the
//!    segments (whole-file CRC + shard manifest), serializes the tiny
//!    auxiliary file, writes everything through the backend (commit
//!    marker last), applies retention, records the result, and frees the
//!    staging slot.
//! 4. `wait(ticket)` / `drain()` deliver the [`StorageBreakdown`] — or
//!    the worker's failure — back on the compute thread.

use crate::backend::{list_versions, prune_chain_aware, StorageBackend};
use crate::error::EngineError;
use crate::snapshot::{Snapshot, StagingGate};
use scrutiny_ckpt::delta::{publish_epoch, DeltaPolicy};
use scrutiny_ckpt::names;
use scrutiny_ckpt::shard::{plan_shards_with, seal_shards, serialize_shard, ShardPlan};
use scrutiny_ckpt::{
    rebalance_breakdown, serialize_aux, AtRest, CodecConfig, StorageBreakdown, VarPlan, VarRecord,
};
use scrutiny_obs::{point, span, Counter, Gauge, HistHandle, Recorder};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How the engine lays checkpoints out in the backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// One `ckpt_v.data` object, byte-identical to the blocking writer's
    /// file (workers still serialize shards in parallel; the finisher
    /// concatenates them).
    Monolithic,
    /// One object per shard plus a manifest — segments stay separate so a
    /// [`crate::backend::ShardedBackend`] can stripe them across tiers.
    Sharded,
}

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads serializing and writing (≥ 1).
    pub workers: usize,
    /// Bounded task-queue depth; `submit` applies backpressure beyond it.
    pub queue_depth: usize,
    /// Staged snapshots allowed in flight (2 = double buffering).
    pub max_staged: usize,
    /// Shard-split target per submission (usually = `workers`).
    pub target_shards: usize,
    /// Storage layout for published checkpoints.
    pub layout: Layout,
    /// Keep only the newest `k` checkpoints when set. Retention is
    /// chain-aware: a base (or intermediate delta) is never deleted while
    /// a retained delta still restores through it.
    pub keep: Option<usize>,
    /// When set, publish base+delta chains (see [`scrutiny_ckpt::delta`]):
    /// the first epoch after `open` is a full base, later epochs store
    /// only the dirty pages of the serialized (AD-pruned) data file, and
    /// the chain rebases to a fresh full checkpoint every
    /// `rebase_every` deltas. Page diffing runs in the worker pool — the
    /// compute thread still pays only the staging memcpy. Bases are
    /// published monolithically; `layout` is ignored in delta mode.
    pub delta: Option<DeltaPolicy>,
    /// Storage codec (see [`scrutiny_ckpt::compress`]): the lo-tier
    /// element codec applied during shard serialization, and the
    /// optional `SCRUTCZB` at-rest compression applied to published
    /// data/shard/delta objects (never aux or manifest — the small
    /// control files stay directly inspectable). The default is a
    /// strict passthrough: byte streams identical to an engine without
    /// compression. Readers sniff the container magic per object, so a
    /// backend can mix compressed and raw checkpoints freely.
    pub codec: CodecConfig,
    /// Observability sink. The engine emits per-version spans
    /// (`engine.submit` → `engine.shard_serialize` → `engine.publish` →
    /// `engine.commit`), queue-depth/inflight gauges, and
    /// publish/commit counters through it. Defaults to
    /// [`Recorder::disabled`], which costs a branch per touch point.
    pub recorder: Recorder,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2);
        EngineConfig {
            workers,
            queue_depth: 4 * workers,
            max_staged: 2,
            target_shards: workers,
            layout: Layout::Monolithic,
            keep: None,
            delta: None,
            codec: CodecConfig::default(),
            recorder: Recorder::disabled(),
        }
    }
}

/// Receipt for one submission; redeem with [`EngineHandle::wait`].
/// Deliberately neither `Copy` nor `Clone`: a ticket resolves exactly
/// once.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    version: u64,
}

impl Ticket {
    /// The checkpoint version this submission publishes as.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// One serialized shard: `(bytes, payload_bytes)`.
type Segment = (Vec<u8>, usize);

struct Submission {
    id: u64,
    version: u64,
    snapshot: Snapshot,
    plan: ShardPlan,
    /// Per-shard `(bytes, payload_bytes)`, filled by workers.
    segments: Mutex<Vec<Option<Segment>>>,
    remaining: AtomicUsize,
    /// Set by the first `resolve` for this submission. Guards against a
    /// second failing shard resolving again after `wait` already drained
    /// the first result from the `done` map (which would underflow
    /// `pending` and over-release the staging gate).
    resolved: AtomicBool,
}

struct Task {
    sub: Arc<Submission>,
    shard: usize,
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct ResultsState {
    /// Tickets issued and not yet redeemed by `wait`/`drain`.
    outstanding: HashSet<u64>,
    /// Resolved `(version, result)` pairs awaiting redemption.
    done: HashMap<u64, (u64, Result<StorageBreakdown, EngineError>)>,
    /// Submissions not yet resolved (outstanding minus done).
    pending: usize,
    next_id: u64,
}

/// Delta-chain bookkeeping (present only when `cfg.delta` is set).
///
/// Deltas are diffs against the *previous published epoch*, so publishes
/// must happen in version order even though shard serialization is
/// concurrent. `turn` is a version-ordered turnstile: a finisher waits
/// until every older version has **resolved** (published or failed), so a
/// failed epoch never wedges the chain — the next delta simply patches
/// the last image that actually reached the backend.
struct Chain {
    state: Mutex<ChainState>,
    cv: Condvar,
}

struct ChainState {
    /// Every version below this has resolved.
    turn: u64,
    /// Resolved versions at or above `turn` (out-of-order failures).
    resolved: BTreeSet<u64>,
    /// Last successfully published data-file image and its version — the
    /// parent of the next delta.
    prev: Option<(u64, Vec<u8>)>,
    /// Consecutive delta epochs since the last full base.
    deltas_since_base: usize,
}

impl Chain {
    fn new(turn: u64) -> Self {
        Chain {
            state: Mutex::new(ChainState {
                turn,
                resolved: BTreeSet::new(),
                prev: None,
                deltas_since_base: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Mark `version` resolved and advance the turnstile past every
    /// consecutively resolved version. Called from `Shared::resolve` —
    /// the one point every submission passes exactly once.
    fn mark_resolved(&self, version: u64) {
        let mut s = self.state.lock().unwrap();
        s.resolved.insert(version);
        loop {
            let turn = s.turn;
            if !s.resolved.remove(&turn) {
                break;
            }
            s.turn += 1;
        }
        drop(s);
        self.cv.notify_all();
    }
}

/// Pre-resolved obs handles for the engine's hot paths: one registry
/// lookup at `open`, then a relaxed atomic per update.
struct EngineObs {
    rec: Recorder,
    queue_depth: Gauge,
    inflight: Gauge,
    submit_us: HistHandle,
    commit_bytes: HistHandle,
    submissions: Counter,
    commits: Counter,
    publish_failures: Counter,
    /// Pre-compression bytes fed to the at-rest codec (delta-mode and
    /// monolithic/sharded data objects alike); 0 with `AtRest::None`.
    raw_bytes: Counter,
    /// Post-compression bytes actually written for those objects. The
    /// ratio `compressed_bytes / raw_bytes` is the fleet-level at-rest
    /// compression factor.
    compressed_bytes: Counter,
}

impl EngineObs {
    fn new(rec: Recorder) -> Self {
        EngineObs {
            queue_depth: rec.gauge("engine.queue_depth"),
            inflight: rec.gauge("engine.inflight"),
            submit_us: rec.histogram("engine.submit_us"),
            commit_bytes: rec.histogram("engine.commit_bytes"),
            submissions: rec.counter("engine.submissions"),
            commits: rec.counter("engine.commits"),
            publish_failures: rec.counter("engine.publish_failures"),
            raw_bytes: rec.counter("engine.raw_bytes"),
            compressed_bytes: rec.counter("engine.compressed_bytes"),
            rec,
        }
    }
}

/// Compress one storage object under a `ckpt.compress` span, feeding the
/// `engine.raw_bytes` / `engine.compressed_bytes` counters. Passthrough
/// (no span, no counters) when the codec's at-rest method is `None`.
fn compress_object(obs: &EngineObs, at_rest: AtRest, raw: Vec<u8>) -> Vec<u8> {
    if at_rest == AtRest::None {
        return raw;
    }
    let _span = span!(obs.rec, "ckpt.compress", raw_bytes = raw.len());
    let stored = scrutiny_ckpt::compress::compress(&raw, at_rest);
    obs.raw_bytes.add(raw.len() as u64);
    obs.compressed_bytes.add(stored.len() as u64);
    stored
}

struct Shared {
    backend: Arc<dyn StorageBackend>,
    cfg: EngineConfig,
    obs: EngineObs,
    queue: Mutex<QueueState>,
    /// Workers sleep here waiting for tasks.
    task_cv: Condvar,
    /// Submitters sleep here waiting for queue space.
    space_cv: Condvar,
    results: Mutex<ResultsState>,
    results_cv: Condvar,
    gate: StagingGate,
    next_version: AtomicU64,
    /// Held across version allocation *and* task enqueueing so queue
    /// order always matches version order — the delta turnstile relies
    /// on it (see [`EngineHandle::enqueue`]). Serializes submitters only;
    /// workers never take it.
    submit_order: Mutex<()>,
    /// Delta-chain turnstile and parent image; `None` unless `cfg.delta`.
    chain: Option<Chain>,
}

impl Shared {
    /// Record the outcome of a submission exactly once and free its
    /// staging slot. Later calls for the same submission (e.g. the last
    /// shard finishing after a sibling already failed, or two shards
    /// failing independently) are no-ops — the guard is the submission's
    /// own flag, not the `done` map, which `wait` drains concurrently.
    fn resolve(&self, sub: &Submission, result: Result<StorageBreakdown, EngineError>) {
        if sub.resolved.swap(true, Ordering::AcqRel) {
            return;
        }
        // Every submission passes here exactly once: the single place the
        // published/failed events and the inflight gauge are emitted.
        match &result {
            Ok(bd) => {
                self.obs.commits.inc();
                self.obs.commit_bytes.record(bd.total() as u64);
                point!(
                    self.obs.rec,
                    "engine.published",
                    version = sub.version,
                    payload_bytes = bd.payload_bytes,
                    aux_bytes = bd.aux_bytes,
                    header_bytes = bd.header_bytes,
                    total_bytes = bd.total()
                );
            }
            Err(e) => {
                self.obs.publish_failures.inc();
                point!(
                    self.obs.rec,
                    "engine.publish_failed",
                    version = sub.version,
                    error = e.to_string()
                );
            }
        }
        {
            let mut r = self.results.lock().unwrap();
            r.done.insert(sub.id, (sub.version, result));
            r.pending -= 1;
            self.obs.inflight.set(r.pending as i64);
        }
        self.results_cv.notify_all();
        if let Some(chain) = &self.chain {
            chain.mark_resolved(sub.version);
        }
        self.gate.release();
    }
}

/// Handle to a running engine. Dropping it drains queued work and joins
/// the workers.
pub struct EngineHandle {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl EngineHandle {
    /// Start an engine over `backend`. Scans the backend so new
    /// checkpoints continue the existing version numbering.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        cfg: EngineConfig,
    ) -> Result<EngineHandle, EngineError> {
        for (what, v) in [
            ("workers", cfg.workers),
            ("queue_depth", cfg.queue_depth),
            ("max_staged", cfg.max_staged),
            ("target_shards", cfg.target_shards),
        ] {
            if v == 0 {
                return Err(EngineError::InvalidConfig(format!("{what} must be >= 1")));
            }
        }
        if cfg.keep == Some(0) {
            return Err(EngineError::InvalidConfig(
                "retention must keep at least one checkpoint".into(),
            ));
        }
        if let Some(delta) = &cfg.delta {
            delta.validate()?;
        }
        cfg.codec.validate()?;
        let next_version = list_versions(backend.as_ref())?.last().map_or(0, |v| v + 1);
        let shared = Arc::new(Shared {
            chain: cfg.delta.as_ref().map(|_| Chain::new(next_version)),
            obs: EngineObs::new(cfg.recorder.clone()),
            cfg: cfg.clone(),
            backend,
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            task_cv: Condvar::new(),
            space_cv: Condvar::new(),
            results: Mutex::new(ResultsState {
                outstanding: HashSet::new(),
                done: HashMap::new(),
                pending: 0,
                next_id: 0,
            }),
            results_cv: Condvar::new(),
            gate: StagingGate::new(cfg.max_staged),
            next_version: AtomicU64::new(next_version),
            submit_order: Mutex::new(()),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("scrutiny-ckpt-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn checkpoint worker")
            })
            .collect();
        Ok(EngineHandle { shared, workers })
    }

    /// The backend this engine publishes into.
    pub fn backend(&self) -> Arc<dyn StorageBackend> {
        self.shared.backend.clone()
    }

    /// The recorder this engine reports into (disabled unless the config
    /// set one).
    pub fn recorder(&self) -> &Recorder {
        &self.shared.obs.rec
    }

    /// Stage a copy of `vars`/`plans` and hand it to the worker pool;
    /// returns as soon as the copy is staged and enqueued. Blocks only
    /// for backpressure (staging gate full or task queue full).
    pub fn submit(&self, vars: &[VarRecord], plans: &[VarPlan]) -> Result<Ticket, EngineError> {
        self.shared.gate.acquire();
        let snapshot = Snapshot::capture(vars, plans);
        self.enqueue(snapshot)
    }

    /// Like [`EngineHandle::submit`] but consumes an already-owned
    /// snapshot, skipping the staging copy.
    pub fn submit_owned(&self, snapshot: Snapshot) -> Result<Ticket, EngineError> {
        self.shared.gate.acquire();
        self.enqueue(snapshot)
    }

    fn enqueue(&self, snapshot: Snapshot) -> Result<Ticket, EngineError> {
        let obs = &self.shared.obs;
        let t0 = obs.rec.is_enabled().then(std::time::Instant::now);
        let plan = match plan_shards_with(
            &snapshot.vars,
            &snapshot.plans,
            self.shared.cfg.target_shards,
            self.shared.cfg.codec.lo,
        ) {
            Ok(p) => p,
            Err(e) => {
                self.shared.gate.release();
                return Err(e.into());
            }
        };
        let nshards = plan.shard_count();
        // Version allocation and task enqueueing must be one atomic step
        // with respect to other submitters: if submitter B could push its
        // tasks before submitter A with the older version, a delta-mode
        // finisher for B would park in the turnstile waiting for A while
        // A's tasks sit behind B's in the queue — with few workers (or a
        // full queue) nothing would ever run them. `submit_order` is held
        // across both, so queue order always equals version order.
        // Backpressure waits happen while holding it; workers free queue
        // space without ever taking it, so the wait always makes progress.
        let _order = self.shared.submit_order.lock().unwrap();
        let (id, version) = {
            let mut r = self.shared.results.lock().unwrap();
            let id = r.next_id;
            r.next_id += 1;
            r.outstanding.insert(id);
            r.pending += 1;
            obs.inflight.set(r.pending as i64);
            (id, self.shared.next_version.fetch_add(1, Ordering::Relaxed))
        };
        // The submit span covers task enqueueing — including any
        // backpressure wait on the bounded queue, which is exactly what
        // an operator wants attributed to the submitting thread.
        let submit_span = span!(
            obs.rec,
            "engine.submit",
            version = version,
            shards = nshards
        );
        obs.submissions.inc();
        let sub = Arc::new(Submission {
            id,
            version,
            snapshot,
            plan,
            segments: Mutex::new((0..nshards).map(|_| None).collect()),
            remaining: AtomicUsize::new(nshards),
            resolved: AtomicBool::new(false),
        });
        let mut q = self.shared.queue.lock().unwrap();
        for shard in 0..nshards {
            while q.tasks.len() >= self.shared.cfg.queue_depth {
                q = self.shared.space_cv.wait(q).unwrap();
            }
            q.tasks.push_back(Task {
                sub: sub.clone(),
                shard,
            });
            self.shared.task_cv.notify_one();
        }
        obs.queue_depth.set(q.tasks.len() as i64);
        drop(q);
        drop(submit_span);
        if let Some(t0) = t0 {
            obs.submit_us.record_duration(t0.elapsed());
        }
        Ok(Ticket { id, version })
    }

    /// Block until `ticket`'s submission is durably stored (or failed),
    /// returning its storage accounting. Worker-side failures — backend
    /// errors, serialization errors, even worker panics — surface here.
    pub fn wait(&self, ticket: Ticket) -> Result<StorageBreakdown, EngineError> {
        let mut r = self.shared.results.lock().unwrap();
        loop {
            if let Some((_version, res)) = r.done.remove(&ticket.id) {
                r.outstanding.remove(&ticket.id);
                return res;
            }
            if !r.outstanding.contains(&ticket.id) {
                return Err(EngineError::UnknownTicket(ticket.id));
            }
            r = self.shared.results_cv.wait(r).unwrap();
        }
    }

    /// Block until every outstanding submission resolves; returns
    /// `(version, breakdown)` per unredeemed ticket, oldest first. The
    /// first worker failure (if any) is returned instead.
    pub fn drain(&self) -> Result<Vec<(u64, StorageBreakdown)>, EngineError> {
        let mut r = self.shared.results.lock().unwrap();
        while r.pending > 0 {
            r = self.shared.results_cv.wait(r).unwrap();
        }
        let mut ids: Vec<u64> = r.done.keys().copied().collect();
        ids.sort_unstable();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let (version, res) = r.done.remove(&id).expect("id taken from done");
            r.outstanding.remove(&id);
            match res {
                Ok(bd) => out.push((version, bd)),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Submissions not yet resolved (diagnostic).
    pub fn pending(&self) -> usize {
        self.shared.results.lock().unwrap().pending
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.task_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    shared.obs.queue_depth.set(q.tasks.len() as i64);
                    shared.space_cv.notify_one();
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = shared.task_cv.wait(q).unwrap();
            }
        };
        let sub = task.sub.clone();
        match catch_unwind(AssertUnwindSafe(|| process_task(&shared, &task))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => shared.resolve(&sub, Err(e)),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked with a non-string payload".into());
                shared.resolve(&sub, Err(EngineError::WorkerPanic(msg)));
            }
        }
    }
}

fn process_task(shared: &Shared, task: &Task) -> Result<(), EngineError> {
    let sub = &task.sub;
    let seg = {
        let _span = span!(
            shared.obs.rec,
            "engine.shard_serialize",
            version = sub.version,
            shard = task.shard
        );
        serialize_shard(
            &sub.snapshot.vars,
            &sub.snapshot.plans,
            &sub.plan,
            task.shard,
        )
    };
    sub.segments.lock().unwrap()[task.shard] = Some(seg);
    // The worker finishing the last shard publishes the checkpoint.
    if sub.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_submission(shared, sub)?;
    }
    Ok(())
}

fn finish_submission(shared: &Shared, sub: &Submission) -> Result<(), EngineError> {
    let segments = std::mem::take(&mut *sub.segments.lock().unwrap());
    if segments.iter().any(Option::is_none) {
        // A sibling shard failed and already resolved this submission.
        return Ok(());
    }
    let mut shards = Vec::with_capacity(segments.len());
    let mut payload_bytes = 0usize;
    for seg in segments {
        let (bytes, payload) = seg.expect("checked above");
        payload_bytes += payload;
        shards.push(bytes);
    }
    let (sealed, manifest) = seal_shards(shards);
    let (aux, pair_bytes) = serialize_aux(&sub.snapshot.vars, &sub.snapshot.plans);

    if shared.chain.is_some() {
        return finish_delta(shared, sub, sealed, aux, pair_bytes, payload_bytes);
    }

    let data_len: usize = sealed.iter().map(Vec::len).sum();
    let mut breakdown = StorageBreakdown {
        payload_bytes,
        aux_bytes: pair_bytes,
        header_bytes: data_len - payload_bytes + (aux.len() - pair_bytes),
    };

    let v = sub.version;
    let backend = shared.backend.as_ref();
    let obs = &shared.obs;
    let at_rest = shared.cfg.codec.at_rest;
    let publish = span!(obs.rec, "engine.publish", version = v);
    match shared.cfg.layout {
        Layout::Monolithic => {
            let mut data = Vec::with_capacity(data_len);
            for s in &sealed {
                data.extend_from_slice(s);
            }
            let data = compress_object(obs, at_rest, data);
            breakdown = rebalance_breakdown(breakdown, data_len, data.len());
            // Aux first: once the data object (the commit marker the
            // store scans for) exists, the checkpoint is complete.
            backend.put(&names::aux(v), &aux)?;
            // The commit span is emitted only after the marker write
            // succeeded, so the log never shows a commit for an
            // unpublished version.
            let t_commit = obs.rec.now_us();
            backend.put(&names::data(v), &data)?;
            commit_span(obs, t_commit, v, &names::data(v), data.len());
        }
        Layout::Sharded => {
            // The manifest (sealed above) carries the *raw* shard
            // lengths and CRCs; readers decode each container before
            // checking it. The manifest itself is never compressed —
            // it is the commit marker and stays directly inspectable.
            let mut stored_len = 0usize;
            for (i, s) in sealed.into_iter().enumerate() {
                let s = compress_object(obs, at_rest, s);
                stored_len += s.len();
                backend.put(&names::shard(v, i), &s)?;
            }
            breakdown = rebalance_breakdown(breakdown, data_len, stored_len);
            backend.put(&names::aux(v), &aux)?;
            // Manifest last: it is the sharded layout's commit marker.
            let t_commit = obs.rec.now_us();
            let manifest_bytes = manifest.to_bytes();
            backend.put(&names::manifest(v), &manifest_bytes)?;
            commit_span(obs, t_commit, v, &names::manifest(v), manifest_bytes.len());
        }
    }

    apply_retention(shared);
    // Close the publish span before the ticket resolves: a waiter may
    // snapshot the recorder the moment `wait` returns, and must not see
    // its own completed epoch as an open span.
    drop(publish);
    shared.resolve(sub, Ok(breakdown));
    Ok(())
}

/// Emit the per-version `engine.commit` span retroactively, wrapping the
/// (successful) commit-marker write. Exactly one of these exists per
/// *published* version — a failed epoch emits `engine.publish_failed`
/// instead — which is what makes a recovery walk reconstructable from the
/// log alone.
fn commit_span(obs: &EngineObs, start_us: u64, version: u64, object: &str, marker_bytes: usize) {
    if !obs.rec.is_enabled() {
        return;
    }
    obs.rec.closed_span(
        "engine.commit",
        start_us,
        &[
            ("version", version.into()),
            ("object", object.into()),
            ("marker_bytes", marker_bytes.into()),
        ],
    );
}

/// The checkpoint is durably committed when this runs, so retention is
/// best-effort: a transient sweep failure must not resolve the ticket as
/// Err (a caller would resubmit a checkpoint that exists). A version the
/// sweep misses is retried by the next submission's sweep. The sweep is
/// chain-aware: it keeps every ancestor a retained delta restores through.
fn apply_retention(shared: &Shared) {
    if let Some(keep) = shared.cfg.keep {
        let _ = prune_chain_aware(shared.backend.as_ref(), keep);
    }
}

/// Publish one epoch of a delta chain. Serialization already happened in
/// parallel (the sealed shards); this worker assembles the full image,
/// waits for its turn in version order, then either diffs against the
/// previous epoch's image (delta) or publishes the image whole (base —
/// the first epoch, or a rebase after `rebase_every` deltas).
fn finish_delta(
    shared: &Shared,
    sub: &Submission,
    sealed: Vec<Vec<u8>>,
    aux: Vec<u8>,
    pair_bytes: usize,
    payload_bytes: usize,
) -> Result<(), EngineError> {
    let chain = shared.chain.as_ref().expect("delta mode");
    let policy = shared.cfg.delta.as_ref().expect("delta mode");
    let v = sub.version;

    // Assemble before taking the turnstile: pure CPU work that can
    // overlap other epochs' publishes.
    let data_len: usize = sealed.iter().map(Vec::len).sum();
    let mut image = Vec::with_capacity(data_len);
    for s in &sealed {
        image.extend_from_slice(s);
    }

    // Wait for every older version to resolve; while we hold the turn
    // (turn == v, and only `resolve` advances it) no other finisher can
    // touch the chain, so the lock itself is dropped during I/O.
    let (prev, deltas_since_base) = {
        let mut s = chain.state.lock().unwrap();
        while s.turn < v {
            s = chain.cv.wait(s).unwrap();
        }
        (s.prev.take(), s.deltas_since_base)
    };

    let backend = shared.backend.as_ref();
    let obs = &shared.obs;
    let at_rest = shared.cfg.codec.at_rest;
    let publish = span!(obs.rec, "engine.publish", version = v);
    // The base-vs-delta decision, write order, and accounting are the
    // store's exact `publish_epoch` — the two writers cannot drift.
    // Diffing inside `publish_epoch` sees only raw images (the chain's
    // cached parent stays uncompressed); at-rest compression happens
    // here, per stored data/delta object, never for the aux file. The
    // put closure spots the commit marker (the object whose name carries
    // a committed version) and wraps that one write in the commit span.
    let saved = std::cell::Cell::new((0usize, 0usize)); // (raw, stored)
    let result = publish_epoch(
        v,
        policy,
        prev.as_ref(),
        deltas_since_base,
        &image,
        payload_bytes,
        &aux,
        pair_bytes,
        |name, bytes| {
            let stored_vec;
            let bytes = match (at_rest, names::classify(name)) {
                (AtRest::None, _) | (_, names::CkptName::Aux(_)) => bytes,
                _ => {
                    stored_vec = compress_object(obs, at_rest, bytes.to_vec());
                    let (r, s) = saved.get();
                    saved.set((r + bytes.len(), s + stored_vec.len()));
                    stored_vec.as_slice()
                }
            };
            if names::committed_version(name) == Some(v) {
                let t_commit = obs.rec.now_us();
                backend.put(name, bytes)?;
                commit_span(obs, t_commit, v, name, bytes.len());
                Ok(())
            } else {
                backend.put(name, bytes)
            }
        },
    );
    let result = result.map(|(bd, n)| {
        let (raw, stored) = saved.get();
        (rebalance_breakdown(bd, raw, stored), n)
    });

    let mut s = chain.state.lock().unwrap();
    match result {
        Ok((breakdown, new_deltas_since_base)) => {
            s.prev = Some((v, image));
            s.deltas_since_base = new_deltas_since_base;
            drop(s);
            apply_retention(shared);
            // Span end before resolve — see `finish_submission`.
            drop(publish);
            shared.resolve(sub, Ok(breakdown));
        }
        Err(e) => {
            // This epoch never reached the backend: the chain's parent is
            // still the previous image; the next epoch patches that.
            s.prev = prev;
            drop(s);
            drop(publish);
            shared.resolve(sub, Err(e.into()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{read_version, MemBackend};
    use scrutiny_ckpt::writer::serialize;
    use scrutiny_ckpt::{Bitmap, Checkpoint, FillPolicy, Regions, VarData};

    fn sample(n: usize, scale: f64) -> (Vec<VarRecord>, Vec<VarPlan>) {
        let vars = vec![
            VarRecord::new(
                "u",
                VarData::F64((0..n).map(|i| i as f64 * scale).collect()),
            ),
            VarRecord::new("it", VarData::I64(vec![n as i64])),
        ];
        let crit = Bitmap::from_fn(n, |i| i % 5 != 0);
        let plans = vec![VarPlan::Pruned(Regions::from_bitmap(&crit)), VarPlan::Full];
        (vars, plans)
    }

    fn engine(layout: Layout) -> (EngineHandle, Arc<MemBackend>) {
        let mem = Arc::new(MemBackend::new());
        let cfg = EngineConfig {
            workers: 3,
            target_shards: 3,
            layout,
            ..Default::default()
        };
        (EngineHandle::open(mem.clone(), cfg).unwrap(), mem)
    }

    #[test]
    fn submit_wait_matches_blocking_serialize() {
        let (eng, mem) = engine(Layout::Monolithic);
        let (vars, plans) = sample(500, 0.25);
        let ticket = eng.submit(&vars, &plans).unwrap();
        let v = ticket.version();
        let bd = eng.wait(ticket).unwrap();

        let blocking = serialize(&vars, &plans).unwrap();
        assert_eq!(bd, blocking.breakdown, "storage accounting must match");
        let (data, aux) = read_version(mem.as_ref(), v).unwrap();
        assert_eq!(data, blocking.data, "engine bytes must be bit-identical");
        assert_eq!(aux, blocking.aux);
    }

    #[test]
    fn sharded_layout_restores_identically() {
        let (eng, mem) = engine(Layout::Sharded);
        let (vars, plans) = sample(777, 1.5);
        let ticket = eng.submit(&vars, &plans).unwrap();
        let v = ticket.version();
        eng.wait(ticket).unwrap();

        let (data, aux) = read_version(mem.as_ref(), v).unwrap();
        let blocking = serialize(&vars, &plans).unwrap();
        assert_eq!(data, blocking.data);
        let ck = Checkpoint::from_bytes(&data, &aux).unwrap();
        let got = ck
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Sentinel(-1.0))
            .unwrap();
        let VarData::F64(want) = &vars[0].data else {
            unreachable!()
        };
        for i in 0..want.len() {
            if i % 5 != 0 {
                assert_eq!(got[i], want[i]);
            }
        }
    }

    #[test]
    fn versions_are_monotonic_and_drain_resolves_all() {
        let (eng, _mem) = engine(Layout::Monolithic);
        let (vars, plans) = sample(64, 2.0);
        let mut versions = Vec::new();
        for _ in 0..5 {
            versions.push(eng.submit(&vars, &plans).unwrap().version());
        }
        let resolved = eng.drain().unwrap();
        assert_eq!(resolved.len(), 5);
        assert_eq!(versions, vec![0, 1, 2, 3, 4]);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn backend_failure_propagates_to_wait() {
        struct FailingBackend;
        impl StorageBackend for FailingBackend {
            fn put(&self, _: &str, _: &[u8]) -> Result<(), scrutiny_ckpt::CkptError> {
                Err(scrutiny_ckpt::CkptError::Corrupt("disk on fire".into()))
            }
            fn get(&self, n: &str) -> Result<Vec<u8>, scrutiny_ckpt::CkptError> {
                Err(scrutiny_ckpt::CkptError::MissingVar(n.into()))
            }
            fn list(&self) -> Result<Vec<String>, scrutiny_ckpt::CkptError> {
                Ok(Vec::new())
            }
            fn delete(&self, _: &str) -> Result<(), scrutiny_ckpt::CkptError> {
                Ok(())
            }
            fn label(&self) -> String {
                "failing".into()
            }
        }
        let eng = EngineHandle::open(Arc::new(FailingBackend), EngineConfig::default()).unwrap();
        let (vars, plans) = sample(32, 1.0);
        let ticket = eng.submit(&vars, &plans).unwrap();
        match eng.wait(ticket) {
            Err(EngineError::Ckpt(scrutiny_ckpt::CkptError::Corrupt(m))) => {
                assert!(m.contains("disk on fire"))
            }
            other => panic!("expected the backend failure, got {other:?}"),
        }
        // The engine stays usable for the next submission's failure too.
        let t2 = eng.submit(&vars, &plans).unwrap();
        assert!(eng.wait(t2).is_err());
    }

    #[test]
    fn retention_keeps_newest_k() {
        let mem = Arc::new(MemBackend::new());
        let cfg = EngineConfig {
            workers: 2,
            keep: Some(2),
            ..Default::default()
        };
        let eng = EngineHandle::open(mem.clone(), cfg).unwrap();
        let (vars, plans) = sample(64, 1.0);
        for _ in 0..5 {
            let t = eng.submit(&vars, &plans).unwrap();
            eng.wait(t).unwrap();
        }
        let versions = list_versions(mem.as_ref()).unwrap();
        assert_eq!(versions, vec![3, 4]);
        drop(eng);

        // A reopened engine continues the numbering.
        let eng = EngineHandle::open(mem.clone(), EngineConfig::default()).unwrap();
        let t = eng.submit(&vars, &plans).unwrap();
        assert_eq!(t.version(), 5);
        eng.wait(t).unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mem: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        for cfg in [
            EngineConfig {
                workers: 0,
                ..Default::default()
            },
            EngineConfig {
                queue_depth: 0,
                ..Default::default()
            },
            EngineConfig {
                max_staged: 0,
                ..Default::default()
            },
            EngineConfig {
                keep: Some(0),
                ..Default::default()
            },
        ] {
            assert!(matches!(
                EngineHandle::open(mem.clone(), cfg),
                Err(EngineError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn delta_mode_publishes_base_deltas_and_rebases_bit_identically() {
        let mem = Arc::new(MemBackend::new());
        let cfg = EngineConfig {
            workers: 3,
            target_shards: 3,
            delta: Some(DeltaPolicy {
                page_bytes: 256,
                rebase_every: 2,
            }),
            ..Default::default()
        };
        let eng = EngineHandle::open(mem.clone(), cfg).unwrap();
        let (mut vars, plans) = sample(400, 1.0);
        let mut totals = Vec::new();
        for epoch in 0..5u64 {
            if let VarData::F64(v) = &mut vars[0].data {
                v[7] = epoch as f64 * 3.5; // localized update
            }
            let t = eng.submit(&vars, &plans).unwrap();
            let v = t.version();
            let bd = eng.wait(t).unwrap();
            totals.push(bd.total());
            // Whatever the layout on disk, the reconstructed image is
            // bit-identical to a blocking monolithic save of this epoch.
            let (data, aux) = read_version(mem.as_ref(), v).unwrap();
            let blocking = serialize(&vars, &plans).unwrap();
            assert_eq!(data, blocking.data, "epoch {epoch}");
            assert_eq!(aux, blocking.aux, "epoch {epoch}");
        }
        // rebase_every = 2 → 0 base, 1-2 deltas, 3 rebase, 4 delta.
        let names_held = mem.list().unwrap();
        for (v, is_delta) in [(0, false), (1, true), (2, true), (3, false), (4, true)] {
            assert_eq!(
                names_held.iter().any(|n| n == &names::delta(v)),
                is_delta,
                "version {v} delta object"
            );
            assert_eq!(
                names_held.iter().any(|n| n == &names::data(v)),
                !is_delta,
                "version {v} data object"
            );
        }
        // Delta epochs write far fewer bytes than the base (the pruned
        // aux file is rewritten every epoch and dominates the delta's
        // total here, so the bar is 2×, not 10×).
        assert!(
            totals[1] < totals[0] / 2,
            "delta {} vs base {}",
            totals[1],
            totals[0]
        );
        assert!(totals[4] < totals[3] / 2);
    }

    #[test]
    fn delta_chain_survives_a_failed_epoch() {
        /// Fails every put of version 1; everything else goes to memory.
        struct FailV1(MemBackend);
        impl StorageBackend for FailV1 {
            fn put(&self, name: &str, bytes: &[u8]) -> Result<(), scrutiny_ckpt::CkptError> {
                if names::committed_version(name) == Some(1)
                    || matches!(
                        names::classify(name),
                        scrutiny_ckpt::names::CkptName::Aux(1)
                    )
                {
                    return Err(scrutiny_ckpt::CkptError::Corrupt("epoch 1 lost".into()));
                }
                self.0.put(name, bytes)
            }
            fn get(&self, name: &str) -> Result<Vec<u8>, scrutiny_ckpt::CkptError> {
                self.0.get(name)
            }
            fn list(&self) -> Result<Vec<String>, scrutiny_ckpt::CkptError> {
                self.0.list()
            }
            fn delete(&self, name: &str) -> Result<(), scrutiny_ckpt::CkptError> {
                self.0.delete(name)
            }
            fn label(&self) -> String {
                "fail-v1".into()
            }
        }
        let backend = Arc::new(FailV1(MemBackend::new()));
        let cfg = EngineConfig {
            workers: 2,
            delta: Some(DeltaPolicy {
                page_bytes: 256,
                rebase_every: 10,
            }),
            ..Default::default()
        };
        let eng = EngineHandle::open(backend.clone(), cfg).unwrap();
        let (mut vars, plans) = sample(300, 2.0);
        let mut wanted = Vec::new();
        let mut results = Vec::new();
        for epoch in 0..3u64 {
            if let VarData::F64(v) = &mut vars[0].data {
                v[0] = epoch as f64 + 0.25;
            }
            let t = eng.submit(&vars, &plans).unwrap();
            wanted.push(serialize(&vars, &plans).unwrap().data);
            results.push(eng.wait(t));
        }
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "epoch 1's failure must surface");
        assert!(results[2].is_ok(), "the chain continues past a failure");
        // Epoch 2's delta patches epoch 0 (the last image that landed),
        // and still reconstructs epoch 2's state bit-identically.
        let (data, _) = read_version(backend.as_ref(), 2).unwrap();
        assert_eq!(data, wanted[2]);
        assert!(read_version(backend.as_ref(), 1).is_err());
    }

    #[test]
    fn delta_mode_retention_is_chain_aware() {
        let mem = Arc::new(MemBackend::new());
        let cfg = EngineConfig {
            workers: 2,
            keep: Some(2),
            delta: Some(DeltaPolicy {
                page_bytes: 256,
                rebase_every: 3,
            }),
            ..Default::default()
        };
        let eng = EngineHandle::open(mem.clone(), cfg).unwrap();
        let (mut vars, plans) = sample(300, 1.0);
        for epoch in 0..4u64 {
            if let VarData::F64(v) = &mut vars[0].data {
                v[1] = epoch as f64;
            }
            let t = eng.submit(&vars, &plans).unwrap();
            eng.wait(t).unwrap();
        }
        // 0 base, 1..=3 deltas: keep=2 would naively leave {2, 3}, but
        // they restore through 1 and 0 — everything must survive.
        assert_eq!(list_versions(mem.as_ref()).unwrap(), vec![0, 1, 2, 3]);
        assert!(read_version(mem.as_ref(), 3).is_ok());

        // 4 rebases (full), 5 is a delta on 4: the old chain may go.
        for epoch in 4..6u64 {
            if let VarData::F64(v) = &mut vars[0].data {
                v[1] = epoch as f64;
            }
            let t = eng.submit(&vars, &plans).unwrap();
            eng.wait(t).unwrap();
        }
        assert_eq!(list_versions(mem.as_ref()).unwrap(), vec![4, 5]);
        assert!(read_version(mem.as_ref(), 5).is_ok());
    }

    #[test]
    fn invalid_delta_policy_rejected() {
        let mem: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        for delta in [
            DeltaPolicy {
                page_bytes: 0,
                rebase_every: 4,
            },
            DeltaPolicy {
                page_bytes: 4096,
                rebase_every: 0,
            },
        ] {
            assert!(matches!(
                EngineHandle::open(
                    mem.clone(),
                    EngineConfig {
                        delta: Some(delta),
                        ..Default::default()
                    }
                ),
                Err(EngineError::Ckpt(scrutiny_ckpt::CkptError::InvalidConfig(
                    _
                )))
            ));
        }
    }

    #[test]
    fn compressed_publishes_restore_bit_identically_in_every_layout() {
        use scrutiny_ckpt::compress::is_container;
        // Smooth values compress well under the bit-plane codec.
        let vars = vec![VarRecord::new(
            "u",
            VarData::F64((0..2048).map(|i| 1.0 + i as f64 * 1e-7).collect()),
        )];
        let plans = vec![VarPlan::Full];
        let blocking = serialize(&vars, &plans).unwrap();
        let codec = CodecConfig {
            at_rest: AtRest::Auto,
            ..Default::default()
        };
        for (layout, delta) in [
            (Layout::Monolithic, None),
            (Layout::Sharded, None),
            (
                Layout::Monolithic,
                Some(DeltaPolicy {
                    page_bytes: 256,
                    rebase_every: 4,
                }),
            ),
        ] {
            let mem = Arc::new(MemBackend::new());
            let cfg = EngineConfig {
                workers: 3,
                target_shards: 3,
                layout,
                delta,
                codec,
                recorder: Recorder::new(),
                ..Default::default()
            };
            let eng = EngineHandle::open(mem.clone(), cfg).unwrap();
            let t = eng.submit(&vars, &plans).unwrap();
            let v = t.version();
            let bd = eng.wait(t).unwrap();
            // Reconstructed image is bit-identical to the raw writer's.
            let (data, aux) = read_version(mem.as_ref(), v).unwrap();
            assert_eq!(data, blocking.data, "{layout:?} delta={}", delta.is_some());
            assert_eq!(aux, blocking.aux);
            // The stored payload object really is a container, the
            // breakdown tracks the stored (smaller) bytes, and the
            // compression counters observed the shrink.
            let first_obj = if layout == Layout::Sharded && delta.is_none() {
                mem.get(&names::shard(v, 0)).unwrap()
            } else {
                mem.get(&names::data(v)).unwrap()
            };
            assert!(is_container(&first_obj), "{layout:?}");
            assert!(
                bd.total() < blocking.breakdown.total(),
                "{layout:?}: {} !< {}",
                bd.total(),
                blocking.breakdown.total()
            );
            let snap = eng.recorder().snapshot();
            let raw = snap.counter("engine.raw_bytes").unwrap_or(0);
            let stored = snap.counter("engine.compressed_bytes").unwrap_or(0);
            assert!(stored > 0 && stored < raw, "{layout:?}: {stored} vs {raw}");
        }
    }

    #[test]
    fn drop_drains_queued_work() {
        let mem = Arc::new(MemBackend::new());
        let eng = EngineHandle::open(mem.clone(), EngineConfig::default()).unwrap();
        let (vars, plans) = sample(2000, 0.5);
        let t = eng.submit(&vars, &plans).unwrap();
        let v = t.version();
        drop(eng); // joins workers; queued serialization must complete
        assert!(read_version(mem.as_ref(), v).is_ok());
    }
}
