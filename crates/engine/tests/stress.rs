//! Engine concurrency stress: many snapshots submitted from compute
//! threads while workers drain.
//!
//! Run in release in CI (`cargo test --release -p scrutiny-engine --test
//! stress`): debug-mode timing serializes the pipeline enough to hide
//! races, which would make this suite toothless.

use scrutiny_ckpt::writer::serialize;
use scrutiny_ckpt::{
    Bitmap, Checkpoint, CheckpointStore, FillPolicy, Region, Regions, VarData, VarPlan, VarRecord,
};
use scrutiny_engine::{
    read_version, DirBackend, EngineConfig, EngineHandle, Layout, MemBackend, ShardedBackend,
    StorageBackend,
};
use std::sync::Arc;

/// Deterministic per-submission state: distinct values and plans so a
/// cross-wired version or a torn shard cannot go unnoticed.
fn snapshot_for(i: u64) -> (Vec<VarRecord>, Vec<VarPlan>) {
    let n = 600 + (i as usize % 7) * 31;
    let f: Vec<f64> = (0..n)
        .map(|j| (i as f64 + 1.0) * (j as f64).sin())
        .collect();
    let c: Vec<(f64, f64)> = (0..40)
        .map(|j| (i as f64 + j as f64, -(j as f64)))
        .collect();
    let vars = vec![
        VarRecord::new("u", VarData::F64(f)),
        VarRecord::new("y", VarData::C128(c)),
        VarRecord::new("it", VarData::I64(vec![i as i64])),
    ];
    let crit = Bitmap::from_fn(n, |j| (j as u64 + i) % 4 != 0);
    let plans = vec![
        VarPlan::Pruned(Regions::from_bitmap(&crit)),
        VarPlan::Full,
        VarPlan::Full,
    ];
    (vars, plans)
}

#[test]
fn stress_every_ticket_resolves_and_bytes_match_blocking_save() {
    const PER_THREAD: u64 = 16;
    const THREADS: u64 = 2;

    let mem = Arc::new(MemBackend::new());
    let cfg = EngineConfig {
        workers: 4,
        queue_depth: 6,
        max_staged: 2,
        target_shards: 4,
        layout: Layout::Monolithic,
        ..Default::default()
    };
    let engine = EngineHandle::open(mem.clone(), cfg).unwrap();

    // Submit from multiple compute threads while workers drain; every
    // ticket must resolve with the exact accounting of a blocking save.
    let versions: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let engine = &engine;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for k in 0..PER_THREAD {
                    let i = t * PER_THREAD + k;
                    let (vars, plans) = snapshot_for(i);
                    let ticket = engine.submit(&vars, &plans).unwrap();
                    let version = ticket.version();
                    let bd = engine.wait(ticket).unwrap();
                    let blocking = serialize(&vars, &plans).unwrap();
                    assert_eq!(bd, blocking.breakdown, "submission {i} accounting");
                    out.push((version, i));
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(versions.len(), (THREADS * PER_THREAD) as usize);
    assert_eq!(engine.pending(), 0, "every ticket must have resolved");
    let mut seen: Vec<u64> = versions.iter().map(|&(v, _)| v).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), versions.len(), "versions must be unique");

    // Engine-written bytes are bit-identical to the blocking writer's.
    for &(version, i) in &versions {
        let (vars, plans) = snapshot_for(i);
        let blocking = serialize(&vars, &plans).unwrap();
        let (data, aux) = read_version(mem.as_ref(), version).unwrap();
        assert_eq!(data, blocking.data, "submission {i} data bytes");
        assert_eq!(aux, blocking.aux, "submission {i} aux bytes");
    }
}

#[test]
fn stress_sharded_layout_on_striped_dirs_roundtrips_through_the_reader() {
    let root = std::env::temp_dir().join(format!("scrutiny_stress_dirs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let stripe = ShardedBackend::new(vec![
        Arc::new(DirBackend::open(root.join("tier0")).unwrap()) as Arc<dyn StorageBackend>,
        Arc::new(DirBackend::open(root.join("tier1")).unwrap()),
    ])
    .unwrap();
    let backend: Arc<dyn StorageBackend> = Arc::new(stripe);
    let cfg = EngineConfig {
        workers: 3,
        target_shards: 5,
        layout: Layout::Sharded,
        keep: Some(4),
        ..Default::default()
    };
    let engine = EngineHandle::open(backend.clone(), cfg).unwrap();

    for i in 0..10u64 {
        let (vars, plans) = snapshot_for(i);
        engine.submit(&vars, &plans).unwrap();
    }
    let resolved = engine.drain().unwrap();
    assert_eq!(resolved.len(), 10);

    // Retention kept the newest 4; each survivor reassembles from the
    // stripe and parses through the standard reader.
    let versions = scrutiny_engine::list_versions(backend.as_ref()).unwrap();
    assert_eq!(versions, vec![6, 7, 8, 9]);
    for &v in &versions {
        let (vars, _plans) = snapshot_for(v);
        let (data, aux) = read_version(backend.as_ref(), v).unwrap();
        let ck = Checkpoint::from_bytes(&data, &aux).unwrap();
        let VarData::F64(want) = &vars[0].data else {
            unreachable!()
        };
        let got = ck
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Sentinel(f64::NAN))
            .unwrap();
        for (j, (&g, &w)) in got.iter().zip(want).enumerate() {
            if (j as u64 + v) % 4 != 0 {
                assert_eq!(g, w, "version {v} element {j}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stress_delta_mode_with_concurrent_submitters_and_one_worker() {
    // Delta mode publishes in version order behind a turnstile, which is
    // only safe because `submit` holds the engine's submit-order lock
    // across version allocation *and* task enqueueing. With concurrent
    // submitters and a single worker, any version/queue-order inversion
    // would park the worker forever on an earlier version whose tasks
    // nothing can run — this test deadlocks (and times out) if that
    // ordering ever breaks.
    use scrutiny_ckpt::DeltaPolicy;
    let mem = Arc::new(MemBackend::new());
    let cfg = EngineConfig {
        workers: 1,
        queue_depth: 2,
        max_staged: 4,
        target_shards: 2,
        delta: Some(DeltaPolicy {
            page_bytes: 256,
            rebase_every: 5,
        }),
        ..Default::default()
    };
    let engine = EngineHandle::open(mem.clone(), cfg).unwrap();
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let engine = &engine;
            scope.spawn(move || {
                for k in 0..6 {
                    let (vars, plans) = snapshot_for(t * 10 + k);
                    let ticket = engine.submit(&vars, &plans).unwrap();
                    engine.wait(ticket).unwrap();
                }
            });
        }
    });
    assert_eq!(engine.pending(), 0);
    // Every version still reconstructs through the chain reader.
    for v in scrutiny_engine::list_versions(mem.as_ref()).unwrap() {
        read_version(mem.as_ref(), v).unwrap();
    }
}

#[test]
fn engine_written_dir_checkpoint_restores_via_checkpoint_store() {
    let dir = std::env::temp_dir().join(format!("scrutiny_stress_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Write one monolithic and one sharded checkpoint into the same dir.
    let backend = Arc::new(DirBackend::open(&dir).unwrap());
    for layout in [Layout::Monolithic, Layout::Sharded] {
        let engine = EngineHandle::open(
            backend.clone(),
            EngineConfig {
                layout,
                target_shards: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let vals: Vec<f64> = (0..512).map(|j| j as f64 * 0.125).collect();
        let vars = vec![VarRecord::new("u", VarData::F64(vals))];
        let plans = vec![VarPlan::Pruned(Regions::from_runs(vec![Region {
            start: 0,
            end: 500,
        }]))];
        let t = engine.submit(&vars, &plans).unwrap();
        engine.wait(t).unwrap();
    }

    // The pre-existing store opens the directory (sweeping nothing it
    // shouldn't), sees both versions and restores each bit-identically.
    let store = CheckpointStore::open(&dir, 5).unwrap();
    assert_eq!(store.versions().unwrap(), vec![0, 1]);
    for v in [0, 1] {
        let ck = store.load(v).unwrap();
        let got = ck
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Zero)
            .unwrap();
        for (j, &g) in got.iter().enumerate().take(500) {
            assert_eq!(g, j as f64 * 0.125, "version {v} element {j}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
