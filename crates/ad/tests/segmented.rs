//! Stress/property suite for the segmented tape and its parallel sweeps.
//!
//! The contract under test: the parallel value sweep and the parallel
//! structural sweep are **bit-identical** to the serial seed sweep — on
//! random tapes (property tests), on adversarial segment-boundary shapes
//! (unit tests), and regardless of segment length (a recording split into
//! many tiny segments must sweep to the same bits as the same recording in
//! one monolithic segment).
//!
//! CI runs this suite under `cargo test --release` next to the engine
//! stress and delta round-trip suites, where debug-mode timing cannot hide
//! frontier-merge ordering races.

use proptest::prelude::*;
use scrutiny_ad::{AdError, Adj, Gradient, Real, SweepConfig, TapeConfig, TapeSession};

/// Deterministic splitmix64, so every generated tape reproduces exactly.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn session(segment_len: usize) -> TapeSession {
    TapeSession::with_config(TapeConfig {
        segment_len,
        ..TapeConfig::default()
    })
}

/// Record a random expression DAG (must be called inside a session).
/// Heavy fan-out and mixed constants on purpose: fan-out creates the
/// repeated same-slot adjoint accumulation where floating-point ordering
/// bugs would show, constants exercise folding around segment boundaries.
fn record_random(seed: u64) -> (Vec<Adj>, Adj) {
    let mut st = seed;
    let n_leaves = 1 + (splitmix(&mut st) % 24) as usize;
    let mut pool: Vec<Adj> = (0..n_leaves)
        .map(|i| Adj::leaf((splitmix(&mut st) % 1000) as f64 / 100.0 - 5.0 + i as f64 * 0.01))
        .collect();
    pool.push(Adj::constant(1.5));
    pool.push(Adj::constant(-0.25));
    let n_ops = 32 + (splitmix(&mut st) % 480) as usize;
    for _ in 0..n_ops {
        let a = pool[(splitmix(&mut st) as usize) % pool.len()];
        let b = pool[(splitmix(&mut st) as usize) % pool.len()];
        let v = match splitmix(&mut st) % 8 {
            0 => a + b,
            1 => a - b,
            2 => a * b,
            3 => a / (b * b + 1.0), // denominator ≥ 1: stays finite
            4 => a.sin(),
            5 => (a * a + 1.0).sqrt(),
            6 => a.rmax(b),
            _ => a * 0.5 + b * 2.0,
        };
        pool.push(v);
    }
    // Sum a handful of late pool entries so the output usually depends on
    // nodes spread across many segments.
    let mut out = Adj::constant(0.0);
    for _ in 0..4 {
        out += pool[pool.len() - 1 - (splitmix(&mut st) as usize) % (pool.len() / 2)];
    }
    (pool, out)
}

fn grad_bits(g: &Gradient) -> Vec<u64> {
    (0..g.len())
        .map(|i| g.of_node(i as u64).to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel sweeps (several worker counts) are bit-identical to the
    /// serial sweep on random multi-segment tapes.
    #[test]
    fn parallel_sweep_matches_serial_bit_for_bit(seed in 0u64..u64::MAX) {
        let s = session(16);
        let (_, out) = record_random(seed);
        let tape = s.finish();
        let (serial, sstats) = tape.gradient_sweep(out, SweepConfig::serial()).unwrap();
        let (reach_serial, _) = tape.reachable_sweep(out, SweepConfig::serial()).unwrap();
        prop_assert!(!sstats.parallel);
        for threads in [2usize, 3, 8] {
            let cfg = SweepConfig::with_threads(threads);
            let (par, pstats) = tape.gradient_sweep(out, cfg).unwrap();
            prop_assert_eq!(grad_bits(&serial), grad_bits(&par));
            if out.index().is_some() && pstats.segments > 1 {
                prop_assert!(pstats.parallel);
                prop_assert!(pstats.threads > 1);
            }
            let (reach_par, _) = tape.reachable_sweep(out, cfg).unwrap();
            prop_assert_eq!(&reach_serial, &reach_par);
        }
    }

    /// The datadep analyzer's liveness bits agree bit-for-bit with the
    /// structural sweep they refactor, on random multi-segment tapes,
    /// across serial and parallel configurations — and its def-use bits
    /// honor the invariant that only consumed nodes (or the output) can
    /// be live.
    #[test]
    fn datadep_agrees_with_structural_sweep_bit_for_bit(seed in 0u64..u64::MAX) {
        let s = session(16);
        let (_, out) = record_random(seed);
        let tape = s.finish();
        let reach = tape.reachable_serial(out).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let cfg = SweepConfig::with_threads(threads);
            let dd = tape.datadep_sweep(out, cfg).unwrap();
            prop_assert_eq!(&reach, dd.live_bits());
            prop_assert_eq!(dd.seed(), out.index());
            for i in 0..tape.len() as u64 {
                // An unconsumed node can only be live if it is the output.
                if dd.live(i) && !dd.used(i) {
                    prop_assert_eq!(Some(i), out.index());
                }
            }
        }
        // Every live node has a witness path ending at the output; every
        // dead node has none. (Capped to keep the property cheap.)
        let dd = tape.datadep_sweep(out, SweepConfig::serial()).unwrap();
        for i in (0..tape.len() as u64).take(64) {
            match dd.witness_path(&tape, i, 8) {
                Some(w) => {
                    prop_assert!(dd.live(i));
                    prop_assert_eq!(w.nodes[0], i);
                    if w.nodes.len() < 8 {
                        prop_assert_eq!(*w.nodes.last().unwrap(), out.index().unwrap());
                        prop_assert_eq!(w.hops, w.nodes.len() - 1);
                    } else {
                        prop_assert!(w.hops >= w.nodes.len() - 1);
                    }
                }
                None => prop_assert!(!dd.live(i)),
            }
        }
    }

    /// Segmentation itself must not change the sweep: the same recording
    /// split into tiny segments sweeps to the same bits as one monolithic
    /// segment (the seed layout).
    #[test]
    fn segment_length_is_invisible_to_results(seed in 0u64..u64::MAX) {
        let s = session(1 << 22); // effectively monolithic
        let (_, out_mono) = record_random(seed);
        let mono = s.finish();
        let g_mono = mono.gradient_serial(out_mono).unwrap();
        let r_mono = mono.reachable_serial(out_mono).unwrap();
        prop_assert_eq!(mono.stats().segments <= 1, true);

        let s = session(8);
        let (_, out_seg) = record_random(seed);
        let seg = s.finish();
        prop_assert_eq!(mono.len(), seg.len());
        let (g_seg, _) = seg.gradient_sweep(out_seg, SweepConfig::with_threads(4)).unwrap();
        let (r_seg, _) = seg.reachable_sweep(out_seg, SweepConfig::with_threads(4)).unwrap();
        prop_assert_eq!(grad_bits(&g_mono), grad_bits(&g_seg));
        prop_assert_eq!(r_mono, r_seg);
    }
}

// ---- segment-boundary edge cases ----------------------------------------

/// Pad the active tape with throwaway tracked nodes until the next node
/// lands at `offset` within its 8-node segment.
fn pad_to_offset(s: &TapeSession, x: Adj, offset: usize) {
    while s.recorded() % 8 != offset {
        let _ = x + 1.0;
    }
}

fn check_all_configs(tape: &scrutiny_ad::Tape, out: Adj) {
    let serial = tape.gradient_serial(out).unwrap();
    let reach = tape.reachable_serial(out).unwrap();
    let dd = tape.datadep_sweep(out, SweepConfig::serial()).unwrap();
    assert_eq!(dd.live_bits(), &reach[..]);
    for threads in [2usize, 4] {
        let cfg = SweepConfig::with_threads(threads);
        let (par, _) = tape.gradient_sweep(out, cfg).unwrap();
        assert_eq!(grad_bits(&serial), grad_bits(&par));
        let (rpar, _) = tape.reachable_sweep(out, cfg).unwrap();
        assert_eq!(reach, rpar);
        let dd_par = tape.datadep_sweep(out, cfg).unwrap();
        assert_eq!(dd_par.live_bits(), &reach[..]);
    }
}

#[test]
fn leaf_in_first_segment_output_in_last() {
    let s = session(8);
    let x = Adj::leaf(3.0);
    let mut y = x;
    for _ in 0..100 {
        y *= 2.0; // ~13 segments of chain
    }
    let tape = s.finish();
    assert!(tape.segment_count() > 10);
    let g = tape.gradient(y).unwrap();
    assert_eq!(g.wrt(x), 2f64.powi(100));
    check_all_configs(&tape, y);
}

#[test]
fn cross_segment_parents_accumulate_in_serial_order() {
    // One leaf in segment 0 receives dozens of adjoint contributions from
    // every later segment — the exact pattern where a frontier merge with
    // the wrong ordering would change the floating-point sum.
    let s = session(8);
    let x = Adj::leaf(1.1);
    let mut out = Adj::constant(0.0);
    for i in 0..120 {
        out += x * (0.1 + i as f64 * 0.37);
    }
    let tape = s.finish();
    assert!(tape.segment_count() > 20);
    check_all_configs(&tape, out);
}

#[test]
fn output_at_segment_boundary_offsets() {
    for offset in [0usize, 7] {
        let s = session(8);
        let x = Adj::leaf(2.0);
        pad_to_offset(&s, x, offset);
        let out = x * 4.0;
        let tape = s.finish();
        assert_eq!(tape.gradient(out).unwrap().wrt(x), 4.0);
        check_all_configs(&tape, out);
    }
}

#[test]
fn empty_tape_sweeps() {
    let s = TapeSession::new();
    let c = Adj::constant(2.0) * 3.0;
    let tape = s.finish();
    assert!(tape.is_empty());
    let g = tape.gradient(c).unwrap();
    assert!(g.is_empty());
    assert!(tape.reachable(c).unwrap().is_empty());
}

#[test]
fn constant_output_on_multi_segment_tape() {
    let s = session(8);
    let x = Adj::leaf(1.0);
    for _ in 0..40 {
        let _ = x * 2.0;
    }
    let c = Adj::constant(5.0);
    let tape = s.finish();
    assert!(tape.segment_count() > 1);
    let g = tape.gradient(c).unwrap();
    assert_eq!(g.len(), tape.len());
    assert!((0..g.len()).all(|i| g.of_node(i as u64) == 0.0));
    assert!(tape.reachable(c).unwrap().iter().all(|&b| !b));
    let dd = tape.datadep(c).unwrap();
    assert_eq!(dd.live_count(), 0);
    assert_eq!(dd.seed(), None);
}

#[test]
fn datadep_cross_segment_fan_in_is_live_with_deep_witness() {
    // The fan-in shape from `cross_segment_parents_accumulate_in_serial_order`:
    // one leaf in segment 0 consumed by every later segment. The leaf must
    // be live under every thread count, and its greedy witness must route
    // through the *first* live consumer, crossing all segments to the out.
    let s = session(8);
    let x = Adj::leaf(1.1);
    let mut out = Adj::constant(0.0);
    for i in 0..120 {
        out += x * (0.1 + i as f64 * 0.37);
    }
    let tape = s.finish();
    assert!(tape.segment_count() > 20);
    let reach = tape.reachable_serial(out).unwrap();
    for threads in [1usize, 2, 4] {
        let dd = tape
            .datadep_sweep(out, SweepConfig::with_threads(threads))
            .unwrap();
        assert_eq!(dd.live_bits(), &reach[..]);
        assert!(dd.live(x.index().unwrap()));
        let w = dd
            .witness_path(&tape, x.index().unwrap(), usize::MAX)
            .unwrap();
        assert_eq!(w.nodes[0], x.index().unwrap());
        assert_eq!(*w.nodes.last().unwrap(), out.index().unwrap());
        // Path edges are genuine parent links in increasing id order.
        for pair in w.nodes.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}

#[test]
fn overflow_surfaces_as_typed_error_not_abort() {
    let s = TapeSession::with_config(TapeConfig {
        segment_len: 8,
        node_limit: 20,
        ..TapeConfig::default()
    });
    let x = Adj::leaf(1.0);
    let mut y = x;
    for _ in 0..100 {
        y += x; // blows the budget; the run continues
    }
    let tape = s.finish();
    assert!(tape.overflowed());
    assert_eq!(
        tape.gradient(y).unwrap_err(),
        AdError::TapeOverflow { limit: 20 }
    );
    assert_eq!(
        tape.datadep(y).unwrap_err(),
        AdError::TapeOverflow { limit: 20 }
    );
}

#[test]
fn out_of_range_seed_is_typed() {
    let s = session(8);
    let _x = Adj::leaf(1.0);
    let tape = s.finish();
    match tape.gradient_of(99) {
        Err(AdError::NodeOutOfRange { node: 99, len: 1 }) => {}
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
}

#[test]
fn sweep_stats_report_parallelism_and_frontier_traffic() {
    let s = session(8);
    let x = Adj::leaf(1.0);
    let mut out = Adj::constant(0.0);
    for _ in 0..64 {
        out += x * 2.0;
    }
    let tape = s.finish();
    let (_, stats) = tape
        .gradient_sweep(out, SweepConfig::with_threads(4))
        .unwrap();
    assert!(stats.parallel);
    assert_eq!(stats.threads, 4);
    assert_eq!(stats.segments, tape.segment_count());
    assert!(stats.cross_contribs > 0, "x fans in from every segment");
    let (_, serial) = tape.gradient_sweep(out, SweepConfig::serial()).unwrap();
    assert!(!serial.parallel);
    assert_eq!(serial.cross_contribs, 0);
}
