//! Property-based validation of the reverse-mode engine.
//!
//! Each property runs the same randomly generated expression through the
//! reverse tape, the forward-mode oracle and (where cheap) central finite
//! differences, and checks calculus identities hold.

use proptest::prelude::*;
use scrutiny_ad::{Adj, Dual, Real, TapeSession};

/// Reverse-mode gradient of a 2-input scalar function.
fn rev_grad2(f: impl Fn(Adj, Adj) -> Adj, x: f64, y: f64) -> (f64, f64, f64) {
    let s = TapeSession::new();
    let xa = Adj::leaf(x);
    let ya = Adj::leaf(y);
    let out = f(xa, ya);
    let tape = s.finish();
    let g = tape.gradient(out).unwrap();
    (out.value(), g.wrt(xa), g.wrt(ya))
}

/// Forward-mode gradient of the same function via two seeded passes.
fn fwd_grad2(f: impl Fn(Dual, Dual) -> Dual, x: f64, y: f64) -> (f64, f64, f64) {
    let ox = f(Dual::variable(x), Dual::constant(y));
    let oy = f(Dual::constant(x), Dual::variable(y));
    (ox.value(), ox.tangent(), oy.tangent())
}

fn finite(v: f64) -> bool {
    v.is_finite()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// d(x+y)/dx == 1, d(x+y)/dy == 1 regardless of values.
    #[test]
    fn sum_rule(x in -1e6f64..1e6, y in -1e6f64..1e6) {
        let (_, dx, dy) = rev_grad2(|a, b| a + b, x, y);
        prop_assert_eq!(dx, 1.0);
        prop_assert_eq!(dy, 1.0);
    }

    /// Product rule: d(xy)/dx == y, d(xy)/dy == x.
    #[test]
    fn product_rule(x in -1e3f64..1e3, y in -1e3f64..1e3) {
        let (_, dx, dy) = rev_grad2(|a, b| a * b, x, y);
        prop_assert_eq!(dx, y);
        prop_assert_eq!(dy, x);
    }

    /// Quotient rule against forward mode.
    #[test]
    fn quotient_rule(x in -1e3f64..1e3, y in 0.1f64..1e3) {
        let (v, dx, dy) = rev_grad2(|a, b| a / b, x, y);
        let (fv, fdx, fdy) = fwd_grad2(|a, b| a / b, x, y);
        prop_assert!((v - fv).abs() <= 1e-12 * fv.abs().max(1.0));
        prop_assert!((dx - fdx).abs() <= 1e-12 * fdx.abs().max(1.0));
        prop_assert!((dy - fdy).abs() <= 1e-12 * fdy.abs().max(1.0));
    }

    /// A nontrivial composite expression: forward and reverse must agree
    /// to near machine precision.
    #[test]
    fn forward_reverse_agree(x in 0.1f64..10.0, y in 0.1f64..10.0) {
        fn f<R: Real>(a: R, b: R) -> R {
            let t = (a * b + 1.0).sqrt();
            let u = (t + a * 0.25).ln();
            let w = u.sin() * b.cos() + (a / b).exp() * 1e-2;
            w.abs() + t.powi(3) * 1e-3
        }
        let (rv, rdx, rdy) = rev_grad2(f::<Adj>, x, y);
        let (fv, fdx, fdy) = fwd_grad2(f::<Dual>, x, y);
        prop_assume!(finite(rv) && finite(rdx) && finite(rdy));
        let tol = |r: f64| 1e-10 * r.abs().max(1.0);
        prop_assert!((rv - fv).abs() <= tol(fv), "value: {rv} vs {fv}");
        prop_assert!((rdx - fdx).abs() <= tol(fdx), "d/dx: {rdx} vs {fdx}");
        prop_assert!((rdy - fdy).abs() <= tol(fdy), "d/dy: {rdy} vs {fdy}");
    }

    /// Gradient of a sum over a vector of leaves is 1 for every element,
    /// no matter how the summation tree is shaped.
    #[test]
    fn sum_reduction_gradients(vals in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
        let s = TapeSession::new();
        let leaves: Vec<Adj> = vals.iter().map(|&v| Adj::leaf(v)).collect();
        // Pairwise (tree) reduction, a different association than a fold.
        let mut layer: Vec<Adj> = leaves.clone();
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|c| if c.len() == 2 { c[0] + c[1] } else { c[0] }).collect();
        }
        let out = layer[0];
        let tape = s.finish();
        let g = tape.gradient(out).unwrap();
        for &l in &leaves {
            prop_assert_eq!(g.wrt(l), 1.0);
        }
    }

    /// Structural reachability is a superset of value-criticality.
    #[test]
    fn structural_superset(x in -10.0f64..10.0, y in -10.0f64..10.0, pick in 0u8..4) {
        let s = TapeSession::new();
        let xa = Adj::leaf(x);
        let ya = Adj::leaf(y);
        let out = match pick {
            0 => xa * ya,
            1 => xa - xa + ya,            // x cancels
            2 => xa * Adj::constant(0.0) + ya, // x multiplied by literal zero
            _ => xa.rmax(ya),             // only one branch active
        };
        let tape = s.finish();
        let g = tape.gradient(out).unwrap();
        let r = tape.reachable(out).unwrap();
        for leaf in [xa, ya] {
            if g.wrt(leaf) != 0.0 {
                prop_assert!(r[leaf.index().unwrap() as usize],
                    "leaf with non-zero gradient must be structurally reachable");
            }
        }
    }

    /// Leaves created but never used stay uncritical under both analyses.
    #[test]
    fn unused_leaves_are_uncritical(n_used in 1usize..16, n_unused in 1usize..16) {
        let s = TapeSession::new();
        let used: Vec<Adj> = (0..n_used).map(|i| Adj::leaf(i as f64 + 1.0)).collect();
        let unused: Vec<Adj> = (0..n_unused).map(|i| Adj::leaf(-(i as f64) - 1.0)).collect();
        let out = used.iter().fold(Adj::constant(0.0), |a, &b| a + b * b);
        let tape = s.finish();
        let g = tape.gradient(out).unwrap();
        let r = tape.reachable(out).unwrap();
        for &l in &unused {
            prop_assert_eq!(g.wrt(l), 0.0);
            prop_assert!(!r[l.index().unwrap() as usize]);
        }
        for &l in &used {
            prop_assert!(g.wrt(l) != 0.0 || l.value() == 0.0);
        }
    }

    /// Overwriting a slot before reading it makes the original leaf
    /// uncritical — the core mechanism behind the paper's findings.
    #[test]
    #[allow(unused_assignments)]
    fn overwrite_before_read(init in -5.0f64..5.0, fresh in -5.0f64..5.0) {
        let s = TapeSession::new();
        let ckpt = Adj::leaf(init);
        let mut slot = ckpt;
        slot = Adj::leaf(fresh); // a later write wins
        let out = slot * slot + 1.0;
        let tape = s.finish();
        let g = tape.gradient(out).unwrap();
        prop_assert_eq!(g.wrt(ckpt), 0.0);
        let r = tape.reachable(out).unwrap();
        prop_assert!(!r[ckpt.index().unwrap() as usize]);
    }
}
