//! The memory-budget harness for divide-and-conquer tape checkpointing:
//! on randomly generated recordings, a checkpointed tape must (a) never
//! let resident arena bytes exceed the configured budget — during
//! recording *or* while the sweeps replay evicted segments — and (b)
//! produce gradients, reachability, and datadep liveness **bit-identical**
//! to the same program recorded unbounded. Violations of either property
//! are exactly the silent failure modes eviction could introduce, so both
//! are checked on every case.
//!
//! The error-path tests pin down the typed-error contract: an impossible
//! budget is [`AdError::InvalidConfig`], sweeping an evicted tape without
//! a replay closure is [`AdError::SegmentEvicted`], a non-deterministic
//! replay closure is [`AdError::ReplayDivergence`], and a poisoned
//! (overflowed) tape keeps reporting [`AdError::TapeOverflow`] — never a
//! panic.

use proptest::prelude::*;
use scrutiny_ad::{
    AdError, Adj, SweepConfig, Tape, TapeCheckpointConfig, TapeConfig, TapeSession, NODE_BYTES,
};

/// One deterministic straight-line program: fold `ops` over a two-leaf
/// seed state. Each op byte picks the arithmetic, so the recording is a
/// pure function of `(ops, x0, y0)` — exactly what a replay closure
/// needs to be.
fn run_program(ops: &[u8], x0: f64, y0: f64) -> Adj {
    let x = Adj::leaf(x0);
    let y = Adj::leaf(y0);
    let mut acc = x * y;
    for (i, &op) in ops.iter().enumerate() {
        acc = match op % 5 {
            0 => acc + x,
            1 => acc * y,
            2 => acc - x * 0.5,
            3 => (acc * acc + 1.0).sqrt(),
            _ => acc / (y * y + 2.0),
        };
        // Touch both leaves periodically so liveness stays interesting.
        if i % 7 == 0 {
            acc += x * y;
        }
    }
    acc
}

/// Record `ops` on a tape with the given segment length and optional
/// residency budget.
fn record(
    ops: &[u8],
    x0: f64,
    y0: f64,
    segment_len: usize,
    checkpoint: Option<TapeCheckpointConfig>,
) -> (Adj, Tape) {
    let session = TapeSession::with_config(TapeConfig {
        segment_len,
        checkpoint,
        ..TapeConfig::default()
    });
    let out = run_program(ops, x0, y0);
    (out, session.finish())
}

const SEG: usize = 32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random programs, random budgets: peak residency stays under the
    /// budget and every sweep result is bit-identical to the unbounded
    /// recording.
    #[test]
    fn residency_bounded_and_sweeps_bit_identical(
        ops in proptest::collection::vec(0u8..255, 64..512),
        n in 1usize..6,
        x0 in 0.5f64..2.0,
        y0 in 0.5f64..2.0,
    ) {
        let (out, full) = record(&ops, x0, y0, SEG, None);
        let segments = full.segment_count();
        prop_assume!(segments > 2);
        let (base, _) = full.gradient_sweep(out, SweepConfig::serial()).unwrap();
        let (base_reach, _) = full.reachable_sweep(out, SweepConfig::serial()).unwrap();

        let ckpt = TapeCheckpointConfig::with_ncheckpoints(n);
        let budget = ckpt.budget_bytes(SEG, segments);
        let (out_b, bounded) = record(&ops, x0, y0, SEG, Some(ckpt));
        prop_assert!(
            bounded.peak_resident_bytes() <= budget,
            "recording peak {} over budget {budget} (ncheckpoints={n})",
            bounded.peak_resident_bytes()
        );

        let replay = || { let _ = run_program(&ops, x0, y0); };
        let (grads, stats) = bounded
            .gradient_sweep_replay(out_b, SweepConfig::serial(), &replay)
            .unwrap();
        prop_assert!(
            stats.peak_resident_bytes <= budget,
            "sweep peak {} over budget {budget} (ncheckpoints={n})",
            stats.peak_resident_bytes
        );
        for i in 0..base.len() {
            prop_assert_eq!(
                base.of_node(i as u64).to_bits(),
                grads.of_node(i as u64).to_bits()
            );
        }
        let (reach, _) = bounded
            .reachable_sweep_replay(out_b, SweepConfig::serial(), &replay)
            .unwrap();
        prop_assert_eq!(&base_reach, &reach);
        let dd = bounded
            .datadep_sweep_replay(out_b, SweepConfig::serial(), &replay)
            .unwrap();
        prop_assert_eq!(dd.live_bits(), &reach[..]);
        if n < segments {
            prop_assert!(
                bounded.stats().replayed_segments > 0,
                "budget {n} < {segments} segments must have forced replays"
            );
        }
    }

    /// The budget really is a *byte* contract: `for_budget_bytes` resolves
    /// to a segment count whose residency never exceeds the raw byte
    /// figure it was asked for.
    #[test]
    fn byte_budget_is_respected(
        ops in proptest::collection::vec(0u8..255, 64..256),
        budget_segs in 1usize..5,
    ) {
        let budget = budget_segs * SEG * NODE_BYTES;
        let ckpt = TapeCheckpointConfig::for_budget_bytes(budget, SEG).unwrap();
        let (out, tape) = record(&ops, 1.25, 0.75, SEG, Some(ckpt));
        let replay = || { let _ = run_program(&ops, 1.25, 0.75); };
        let (_, stats) = tape
            .gradient_sweep_replay(out, SweepConfig::serial(), &replay)
            .unwrap();
        prop_assert!(tape.peak_resident_bytes() <= budget);
        prop_assert!(stats.peak_resident_bytes <= budget);
    }
}

#[test]
fn budget_below_one_segment_is_invalid_config() {
    let err = TapeCheckpointConfig::for_budget_bytes(SEG * NODE_BYTES - 1, SEG).unwrap_err();
    assert!(matches!(err, AdError::InvalidConfig { .. }), "{err}");
}

#[test]
fn evicted_sweep_without_replayer_is_segment_evicted() {
    let ops = vec![1u8; 256];
    let (out, tape) = record(
        &ops,
        1.5,
        0.5,
        SEG,
        Some(TapeCheckpointConfig::with_ncheckpoints(1)),
    );
    assert!(tape.stats().evicted_segments > 0);
    let err = tape.gradient_sweep(out, SweepConfig::serial()).unwrap_err();
    assert!(matches!(err, AdError::SegmentEvicted { .. }), "{err}");
}

#[test]
fn divergent_replay_is_replay_divergence() {
    let ops = vec![3u8; 256];
    let (out, tape) = record(
        &ops,
        1.5,
        0.5,
        SEG,
        Some(TapeCheckpointConfig::with_ncheckpoints(1)),
    );
    // Same node count, different arithmetic: the digest check must
    // refuse the re-recorded bytes.
    let bad = || {
        let _ = run_program(&ops, 1.5, 0.625);
    };
    let err = tape
        .gradient_sweep_replay(out, SweepConfig::serial(), &bad)
        .unwrap_err();
    assert!(matches!(err, AdError::ReplayDivergence { .. }), "{err}");
}

#[test]
fn overflowed_checkpointed_tape_stays_a_typed_error() {
    let session = TapeSession::with_config(TapeConfig {
        segment_len: SEG,
        node_limit: 64,
        checkpoint: Some(TapeCheckpointConfig::with_ncheckpoints(1)),
        ..TapeConfig::default()
    });
    let out = run_program(&vec![0u8; 256], 1.0, 2.0);
    let tape = session.finish();
    let replay = || {
        let _ = run_program(&vec![0u8; 256], 1.0, 2.0);
    };
    let err = tape
        .gradient_sweep_replay(out, SweepConfig::serial(), &replay)
        .unwrap_err();
    assert_eq!(err, AdError::TapeOverflow { limit: 64 });
}
