//! Typed errors for tape recording and reverse sweeps.
//!
//! The seed tape `assert!`ed on overflow and on out-of-range sweep seeds,
//! aborting whatever long NPB record was in flight. Both conditions are now
//! ordinary values: recording past the node budget *poisons* the tape (the
//! run keeps going, arithmetic folds to constants) and every sweep entry
//! point reports the poisoning — or a bad seed — as an [`AdError`] that
//! `scrutiny-core` surfaces to its callers.

use std::fmt;

/// Failure modes of recording onto or sweeping a [`crate::Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdError {
    /// Recording hit the configured node budget
    /// ([`crate::TapeConfig::node_limit`]). The tape is poisoned: nodes
    /// past the budget were dropped, so any gradient computed from it
    /// would silently be wrong.
    TapeOverflow {
        /// The node budget that was exhausted.
        limit: u64,
    },
    /// A sweep was seeded at a node id that is not on the tape.
    NodeOutOfRange {
        /// The requested seed node.
        node: u64,
        /// Nodes actually recorded.
        len: u64,
    },
}

impl fmt::Display for AdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdError::TapeOverflow { limit } => {
                write!(
                    f,
                    "tape overflow: recording exceeded the {limit}-node budget"
                )
            }
            AdError::NodeOutOfRange { node, len } => {
                write!(f, "sweep seed node {node} is not on the tape (len {len})")
            }
        }
    }
}

impl std::error::Error for AdError {}
