//! Typed errors for tape recording and reverse sweeps.
//!
//! The seed tape `assert!`ed on overflow and on out-of-range sweep seeds,
//! aborting whatever long NPB record was in flight. Both conditions are now
//! ordinary values: recording past the node budget *poisons* the tape (the
//! run keeps going, arithmetic folds to constants) and every sweep entry
//! point reports the poisoning — or a bad seed — as an [`AdError`] that
//! `scrutiny-core` surfaces to its callers.

use std::fmt;

/// Failure modes of recording onto or sweeping a [`crate::Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdError {
    /// Recording hit the configured node budget
    /// ([`crate::TapeConfig::node_limit`]). The tape is poisoned: nodes
    /// past the budget were dropped, so any gradient computed from it
    /// would silently be wrong.
    TapeOverflow {
        /// The node budget that was exhausted.
        limit: u64,
    },
    /// A sweep was seeded at a node id that is not on the tape.
    NodeOutOfRange {
        /// The requested seed node.
        node: u64,
        /// Nodes actually recorded.
        len: u64,
    },
    /// A configuration knob was self-contradictory — e.g. a tape
    /// checkpoint byte budget smaller than a single segment, which could
    /// not hold even the open recording segment.
    InvalidConfig {
        /// What was wrong with the configuration.
        reason: &'static str,
    },
    /// A sweep reached a segment that was evicted under a
    /// [`crate::TapeCheckpointConfig`] but no replay closure was
    /// registered to re-record it (use the `*_replay` sweep entry
    /// points on a checkpointed tape).
    SegmentEvicted {
        /// The evicted segment the sweep needed.
        segment: u64,
    },
    /// Re-recording an evicted segment produced different bytes than the
    /// original recording: the replay closure is not deterministic (or
    /// not the closure that produced the tape). `segment == u64::MAX`
    /// means the *total* replayed node count diverged; otherwise
    /// `expected`/`actual` are the recorded and re-recorded segment
    /// digests (or lengths) for `segment`.
    ReplayDivergence {
        /// Segment whose re-recording diverged (`u64::MAX`: whole-tape
        /// node count mismatch).
        segment: u64,
        /// Recorded digest / length / node count.
        expected: u64,
        /// Re-recorded digest / length / node count.
        actual: u64,
    },
}

impl fmt::Display for AdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdError::TapeOverflow { limit } => {
                write!(
                    f,
                    "tape overflow: recording exceeded the {limit}-node budget"
                )
            }
            AdError::NodeOutOfRange { node, len } => {
                write!(f, "sweep seed node {node} is not on the tape (len {len})")
            }
            AdError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            AdError::SegmentEvicted { segment } => {
                write!(
                    f,
                    "segment {segment} was evicted under the tape checkpoint \
                     policy and no replay closure is registered"
                )
            }
            AdError::ReplayDivergence {
                segment,
                expected,
                actual,
            } => {
                if *segment == u64::MAX {
                    write!(
                        f,
                        "replay divergence: re-recording produced {actual} nodes \
                         where the original recording produced {expected}"
                    )
                } else {
                    write!(
                        f,
                        "replay divergence in segment {segment}: re-recorded \
                         content {actual:#018x} != recorded {expected:#018x}"
                    )
                }
            }
        }
    }
}

impl std::error::Error for AdError {}
