//! Fixed-size chunked arenas backing the tape, with optional
//! divide-and-conquer eviction.
//!
//! The seed tape was one contiguous `Vec` per column. That had two scaling
//! walls: growing past the reserved capacity copied the *entire* recording
//! (multi-hundred-MiB `memcpy` spikes mid-kernel on NPB tapes), and node
//! ids were `u32`, capping a tape at 2³²−1 nodes with an `assert!` behind
//! it. Segmented storage removes both. Nodes live in fixed-size segments
//! whose columns are allocated exactly once and never move; a node id is a
//! `u64` that splits into `segment = id >> shift` and `offset = id & mask`
//! (segment-local indexing), so capacity is bounded by the configured
//! [`node budget`](crate::TapeConfig::node_limit) rather than an index
//! type; and exhausting that budget *poisons* the store instead of
//! aborting — the error surfaces as a typed
//! [`AdError`] at sweep time.
//!
//! Segments are also the unit of parallelism for the reverse sweeps in
//! [`crate::sweep`] — and, since the bounded-memory refactor, the unit of
//! **eviction**: under a [`TapeCheckpointConfig`] the store keeps at most
//! `ncheckpoints` segments resident, replacing older ones with a
//! `(len, digest)` summary. Evicted segments are *re-recorded* on demand
//! by replaying the registered deterministic closure
//! ([`crate::replay::TapeReplay`]) and verified bit-exactly against the
//! stored digest — Siskind & Pearlmutter's divide-and-conquer
//! checkpointing applied to the tape itself.

use crate::error::AdError;
use crate::replay::{self, ReplayCtx};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel node id meaning "no parent" (constant operand or leaf).
pub(crate) const NONE: u64 = u64::MAX;

/// Default nodes per segment: 2 MiB of node storage per segment, small
/// enough that a dozen segments exist on any interesting tape (exposing
/// sweep parallelism) and large enough that per-segment overheads vanish.
pub const DEFAULT_SEGMENT_LEN: usize = 1 << 16;

/// Default recording budget in nodes. Far beyond what fits in memory
/// (2⁴⁸ nodes ≈ 9 PiB); the budget exists so runaway recordings become a
/// typed error instead of an OOM kill, and so tests can shrink it.
pub const DEFAULT_NODE_LIMIT: u64 = 1 << 48;

/// Bytes per recorded node: two `u64` parent ids + two `f64` partials.
pub const NODE_BYTES: usize = 2 * 8 + 2 * 8;

/// Bounded-memory policy for a tape: keep at most `ncheckpoints` segments
/// resident, evicting the rest to `(len, digest)` summaries that are
/// re-recorded on demand during sweeps (see the module docs).
///
/// The knob mirrors dynamiqs' `CheckpointAutograd(ncheckpoints)`: peak
/// tape residency is `O(ncheckpoints · segment)` instead of `O(n)`, at the
/// cost of re-running the recording closure once per evicted window during
/// the reverse sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TapeCheckpointConfig {
    /// Maximum resident segments (the open recording segment included).
    /// `0` means *auto*: `⌈log2(segments)⌉`, the classic
    /// divide-and-conquer memory/recompute balance point.
    pub ncheckpoints: usize,
}

impl TapeCheckpointConfig {
    /// The auto policy: residency grows as `⌈log2(segments)⌉`.
    pub fn auto() -> TapeCheckpointConfig {
        TapeCheckpointConfig { ncheckpoints: 0 }
    }

    /// Keep at most `n` segments resident (`0` = auto).
    pub fn with_ncheckpoints(n: usize) -> TapeCheckpointConfig {
        TapeCheckpointConfig { ncheckpoints: n }
    }

    /// Derive the policy from a byte budget: the largest `ncheckpoints`
    /// whose resident segments fit in `budget_bytes` for the given
    /// (pre-rounding) `segment_len`. A budget smaller than one segment
    /// cannot hold even the open recording segment and is a typed
    /// [`AdError::InvalidConfig`], not a panic.
    pub fn for_budget_bytes(
        budget_bytes: usize,
        segment_len: usize,
    ) -> Result<TapeCheckpointConfig, AdError> {
        let seg_bytes = rounded_segment_len(segment_len) * NODE_BYTES;
        if budget_bytes < seg_bytes {
            return Err(AdError::InvalidConfig {
                reason: "tape checkpoint budget is smaller than one segment",
            });
        }
        Ok(TapeCheckpointConfig {
            ncheckpoints: budget_bytes / seg_bytes,
        })
    }

    /// The residency bound in segments for a tape of `segments` segments:
    /// `ncheckpoints` when explicit, `⌈log2(segments)⌉` (at least 1) for
    /// the auto policy.
    pub fn resolved(&self, segments: usize) -> usize {
        if self.ncheckpoints > 0 {
            self.ncheckpoints
        } else if segments <= 2 {
            1
        } else {
            (usize::BITS - (segments - 1).leading_zeros()) as usize
        }
    }

    /// The byte budget the resolved policy guarantees for a tape with the
    /// given (pre-rounding) segment length and segment count: resident
    /// bytes never exceed it while recording or sweeping sequentially.
    pub fn budget_bytes(&self, segment_len: usize, segments: usize) -> usize {
        self.resolved(segments) * rounded_segment_len(segment_len) * NODE_BYTES
    }
}

/// The store's segment-length rounding, shared with the budget math.
fn rounded_segment_len(segment_len: usize) -> usize {
    segment_len.next_power_of_two().clamp(8, 1 << 31)
}

/// One fixed-capacity arena of nodes, in structure-of-arrays layout.
///
/// The columns are allocated at full segment capacity on construction and
/// never reallocate: a `push` into a non-full segment is a plain append,
/// and a full segment simply stops growing (the store opens a new one).
pub(crate) struct Segment {
    pub(crate) p1: Vec<u64>,
    pub(crate) p2: Vec<u64>,
    pub(crate) d1: Vec<f64>,
    pub(crate) d2: Vec<f64>,
}

impl Segment {
    pub(crate) fn with_capacity(seg_len: usize) -> Segment {
        Segment {
            p1: Vec::with_capacity(seg_len),
            p2: Vec::with_capacity(seg_len),
            d1: Vec::with_capacity(seg_len),
            d2: Vec::with_capacity(seg_len),
        }
    }

    /// Nodes recorded into this segment.
    pub(crate) fn len(&self) -> usize {
        self.p1.len()
    }
}

/// FNV-1a over the segment's columns (`f64` partials via `to_bits`), the
/// bit-exactness witness an evicted segment leaves behind. Re-recorded
/// segments must reproduce it exactly or the sweep fails with
/// [`AdError::ReplayDivergence`].
pub(crate) fn segment_digest(seg: &Segment) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(seg.len() as u64);
    for off in 0..seg.len() {
        eat(seg.p1[off]);
        eat(seg.p2[off]);
        eat(seg.d1[off].to_bits());
        eat(seg.d2[off].to_bits());
    }
    h
}

/// Resident-byte accounting shared by every segment guard of one store:
/// guards `acquire` on allocation and `release` on drop, so `resident`
/// tracks live arena memory exactly and `peak` its high-water mark — the
/// measurable form of the bounded-memory claim.
pub(crate) struct MemCounters {
    resident: AtomicUsize,
    peak: AtomicUsize,
}

impl MemCounters {
    fn new() -> MemCounters {
        MemCounters {
            resident: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    fn acquire(&self, bytes: usize) {
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn release(&self, bytes: usize) {
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// A resident segment plus its accounting: allocation is charged on
/// construction and credited back when the last reference drops, so
/// eviction frees (and un-counts) memory exactly when the data dies, even
/// if a sweep still pins the segment briefly.
pub(crate) struct SegGuard {
    seg: Segment,
    bytes: usize,
    mem: Arc<MemCounters>,
}

impl SegGuard {
    fn new(seg: Segment, bytes: usize, mem: Arc<MemCounters>) -> SegGuard {
        mem.acquire(bytes);
        SegGuard { seg, bytes, mem }
    }
}

impl Drop for SegGuard {
    fn drop(&mut self) {
        self.mem.release(self.bytes);
    }
}

impl std::ops::Deref for SegGuard {
    type Target = Segment;
    fn deref(&self) -> &Segment {
        &self.seg
    }
}

impl std::ops::DerefMut for SegGuard {
    fn deref_mut(&mut self) -> &mut Segment {
        &mut self.seg
    }
}

/// One sealed segment slot: either the data itself or the summary an
/// eviction left behind.
enum SlotState {
    Resident(Arc<SegGuard>),
    Evicted { len: usize, digest: u64 },
}

impl SlotState {
    fn len(&self) -> usize {
        match self {
            SlotState::Resident(seg) => seg.len(),
            SlotState::Evicted { len, .. } => *len,
        }
    }
}

/// Which way a sweep walks the tape; evicted segments are re-recorded in
/// windows oriented along the walk so each window is replayed once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Dir {
    /// Reverse sweeps (value/structural): window ends at the requested
    /// segment.
    Rev,
    /// Forward passes (def-use bits, witness scans): window starts at the
    /// requested segment.
    Fwd,
}

/// The segmented node store: an append-only sequence of segments.
///
/// Sealed segments live behind a single `Mutex` so sweeps (which take
/// `&self`) can demote and re-materialize them; the *open* segment is a
/// plain field, keeping the record hot path lock-free.
pub(crate) struct SegmentStore {
    slots: Mutex<Vec<SlotState>>,
    open: Option<SegGuard>,
    /// log2 of the segment length.
    shift: u32,
    /// `segment_len - 1`, for offset extraction.
    mask: u64,
    /// Total nodes recorded.
    len: u64,
    /// Recording budget; reaching it sets `overflowed`.
    limit: u64,
    /// True once a push was dropped because the budget was exhausted.
    overflowed: bool,
    /// Bounded-residency policy; `None` keeps every segment resident.
    ckpt: Option<TapeCheckpointConfig>,
    mem: Arc<MemCounters>,
    /// Segments re-recorded over this store's lifetime.
    replayed: AtomicU64,
}

impl SegmentStore {
    /// Create a store with `segment_len` nodes per segment (rounded up to
    /// a power of two in `[8, 2^31]`) and room pre-reserved in the segment
    /// spine for `capacity` nodes. No segment memory is allocated until
    /// the first push.
    pub(crate) fn new(
        capacity: usize,
        segment_len: usize,
        limit: u64,
        ckpt: Option<TapeCheckpointConfig>,
    ) -> SegmentStore {
        let seg_len = rounded_segment_len(segment_len);
        SegmentStore {
            slots: Mutex::new(Vec::with_capacity(capacity.div_ceil(seg_len))),
            open: None,
            shift: seg_len.trailing_zeros(),
            mask: (seg_len - 1) as u64,
            len: 0,
            limit: limit.min(NONE - 1),
            overflowed: false,
            ckpt,
            mem: Arc::new(MemCounters::new()),
            replayed: AtomicU64::new(0),
        }
    }

    /// Total nodes recorded.
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Nodes per segment.
    pub(crate) fn segment_len(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// log2 of the segment length.
    pub(crate) fn shift(&self) -> u32 {
        self.shift
    }

    /// Offset-extraction mask (`segment_len - 1`).
    pub(crate) fn mask(&self) -> u64 {
        self.mask
    }

    /// The recording budget.
    pub(crate) fn limit(&self) -> u64 {
        self.limit
    }

    /// True once a node was dropped because the budget was exhausted.
    pub(crate) fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The bounded-residency policy, if any.
    pub(crate) fn checkpoint(&self) -> Option<TapeCheckpointConfig> {
        self.ckpt
    }

    /// Total segments ever opened (resident, evicted, and the open one).
    pub(crate) fn seg_count(&self) -> usize {
        self.slots.lock().unwrap().len() + usize::from(self.open.is_some())
    }

    /// Nodes recorded into segment `s` (known even when evicted).
    pub(crate) fn seg_nodes(&self, s: usize) -> usize {
        let slots = self.slots.lock().unwrap();
        if s < slots.len() {
            slots[s].len()
        } else {
            self.open.as_ref().map_or(0, |seg| seg.len())
        }
    }

    /// Segments currently evicted to summaries.
    pub(crate) fn evicted_count(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .iter()
            .filter(|s| matches!(s, SlotState::Evicted { .. }))
            .count()
    }

    /// Segments re-recorded over this store's lifetime.
    pub(crate) fn replayed_total(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Full logical footprint: what an unbounded tape would allocate
    /// (every segment at fixed capacity, evicted or not).
    pub(crate) fn total_bytes(&self) -> usize {
        self.seg_count() * self.seg_bytes()
    }

    /// Arena bytes currently resident (evicted segments excluded).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.mem.resident.load(Ordering::Relaxed)
    }

    /// High-water mark of [`SegmentStore::resident_bytes`].
    pub(crate) fn peak_resident_bytes(&self) -> usize {
        self.mem.peak.load(Ordering::Relaxed)
    }

    fn seg_bytes(&self) -> usize {
        self.segment_len() * NODE_BYTES
    }

    /// Append a node; returns its id, or [`NONE`] if the budget is
    /// exhausted (the store is then poisoned — see
    /// [`SegmentStore::overflowed`]).
    #[inline]
    pub(crate) fn push(&mut self, p1: u64, d1: f64, p2: u64, d2: f64) -> u64 {
        if self.len >= self.limit {
            self.overflowed = true;
            return NONE;
        }
        let idx = self.len;
        if (idx & self.mask) == 0 {
            // One residency slot is reserved for the segment about to open.
            self.seal_open_with(1);
            self.open = Some(SegGuard::new(
                Segment::with_capacity(self.segment_len()),
                self.seg_bytes(),
                self.mem.clone(),
            ));
        }
        let seg = self
            .open
            .as_mut()
            .expect("an open segment exists after the open-on-boundary check");
        seg.p1.push(p1);
        seg.p2.push(p2);
        seg.d1.push(d1);
        seg.d2.push(d2);
        self.len += 1;
        idx
    }

    /// Seal the open segment into the slot table and enforce the
    /// residency budget with the full budget available (called when a
    /// recording session finishes — the tail stays resident for the
    /// imminent reverse sweep). Idempotent when nothing is open.
    pub(crate) fn seal_open(&mut self) {
        self.seal_open_with(0);
    }

    /// Seal with `reserve` residency slots held back (recording reserves
    /// one for the next open segment).
    fn seal_open_with(&mut self, reserve: usize) {
        let Some(open) = self.open.take() else {
            return;
        };
        let slots = self.slots.get_mut().unwrap();
        slots.push(SlotState::Resident(Arc::new(open)));
        let Some(cfg) = self.ckpt else {
            return;
        };
        let total = slots.len();
        // Sealed segments may keep `resolved - reserve` residency slots;
        // with `ncheckpoints = 1` and a reservation, that is zero — the
        // open segment alone is the whole budget.
        let allowed = cfg.resolved(total).max(1).saturating_sub(reserve);
        let mut resident = slots
            .iter()
            .filter(|s| matches!(s, SlotState::Resident(_)))
            .count();
        for slot in slots.iter_mut() {
            if resident <= allowed {
                break;
            }
            if let SlotState::Resident(seg) = slot {
                let summary = SlotState::Evicted {
                    len: seg.len(),
                    digest: segment_digest(seg),
                };
                *slot = summary;
                resident -= 1;
            }
        }
    }

    /// A view of segment `s` for a sweep walking in direction `dir`:
    /// resident segments are returned directly; evicted ones are
    /// re-recorded (a contiguous window of up to `ncheckpoints` segments
    /// at a time, after demoting unpinned resident segments so the byte
    /// budget holds) via the replayer in `ctx`, with each re-recorded
    /// segment verified against its stored digest.
    pub(crate) fn view(
        &self,
        s: usize,
        dir: Dir,
        ctx: &ReplayCtx<'_>,
    ) -> Result<Arc<SegGuard>, AdError> {
        let mut slots = self.slots.lock().unwrap();
        assert!(s < slots.len(), "segment {s} is not sealed");
        if let SlotState::Resident(seg) = &slots[s] {
            return Ok(seg.clone());
        }
        let Some(replayer) = ctx.replayer else {
            return Err(AdError::SegmentEvicted { segment: s as u64 });
        };
        let total = slots.len();
        let budget = self.ckpt.map_or(1, |c| c.resolved(total)).max(1);
        // The maximal contiguous evicted run around `s`, clipped to the
        // residency budget along the walk direction.
        let mut lo = s;
        while lo > 0 && matches!(slots[lo - 1], SlotState::Evicted { .. }) {
            lo -= 1;
        }
        let mut hi = s;
        while hi + 1 < total && matches!(slots[hi + 1], SlotState::Evicted { .. }) {
            hi += 1;
        }
        let (w0, w1) = match dir {
            Dir::Rev => (lo.max(s + 1 - budget.min(s + 1)), s),
            Dir::Fwd => (s, hi.min(s + budget - 1)),
        };
        // Demote everything resident outside the window (unless a caller
        // still pins it) so materializing the window keeps residency at or
        // under the budget.
        for (i, slot) in slots.iter_mut().enumerate() {
            if (w0..=w1).contains(&i) {
                continue;
            }
            if let SlotState::Resident(seg) = slot {
                if Arc::strong_count(seg) == 1 {
                    let summary = SlotState::Evicted {
                        len: seg.len(),
                        digest: segment_digest(seg),
                    };
                    *slot = summary;
                }
            }
        }
        let window = w1 - w0 + 1;
        let span = scrutiny_obs::span!(
            ctx.rec,
            "ad.replay",
            segment = s,
            window_start = w0,
            window_len = window
        );
        let (segs, replayed_len) =
            replay::rerecord(replayer, self.shift, w0, window, self.segment_len());
        drop(span);
        if replayed_len != self.len {
            return Err(AdError::ReplayDivergence {
                segment: u64::MAX,
                expected: self.len,
                actual: replayed_len,
            });
        }
        for (i, seg) in segs.into_iter().enumerate() {
            let idx = w0 + i;
            let (len, digest) = match slots[idx] {
                SlotState::Evicted { len, digest } => (len, digest),
                // A resident slot inside the window cannot occur: the
                // window is a sub-range of the contiguous evicted run.
                SlotState::Resident(_) => unreachable!("window slot {idx} is resident"),
            };
            if seg.len() != len {
                return Err(AdError::ReplayDivergence {
                    segment: idx as u64,
                    expected: len as u64,
                    actual: seg.len() as u64,
                });
            }
            let actual = segment_digest(&seg);
            if actual != digest {
                return Err(AdError::ReplayDivergence {
                    segment: idx as u64,
                    expected: digest,
                    actual,
                });
            }
            slots[idx] = SlotState::Resident(Arc::new(SegGuard::new(
                seg,
                self.seg_bytes(),
                self.mem.clone(),
            )));
        }
        self.replayed.fetch_add(window as u64, Ordering::Relaxed);
        ctx.replayed.fetch_add(window as u64, Ordering::Relaxed);
        match &slots[s] {
            SlotState::Resident(seg) => Ok(seg.clone()),
            SlotState::Evicted { .. } => unreachable!("segment {s} was just re-recorded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_len_rounds_to_power_of_two() {
        let s = SegmentStore::new(0, 100, DEFAULT_NODE_LIMIT, None);
        assert_eq!(s.segment_len(), 128);
        let s = SegmentStore::new(0, 1, DEFAULT_NODE_LIMIT, None);
        assert_eq!(s.segment_len(), 8);
    }

    #[test]
    fn push_crosses_segment_boundaries_without_moving_data() {
        let mut s = SegmentStore::new(0, 8, DEFAULT_NODE_LIMIT, None);
        for i in 0..20u64 {
            assert_eq!(s.push(NONE, 0.0, NONE, i as f64), i);
        }
        s.seal_open();
        assert_eq!(s.seg_count(), 3);
        assert_eq!(s.seg_nodes(0), 8);
        assert_eq!(s.seg_nodes(2), 4);
        // Column capacity is exact: no segment ever reallocates.
        let ctx = ReplayCtx::none();
        for seg in 0..3 {
            let view = s.view(seg, Dir::Fwd, &ctx).unwrap();
            assert_eq!(view.d2.capacity(), 8);
        }
        assert_eq!(s.total_bytes(), 3 * 8 * NODE_BYTES);
        assert_eq!(s.resident_bytes(), 3 * 8 * NODE_BYTES);
        assert_eq!(s.peak_resident_bytes(), 3 * 8 * NODE_BYTES);
    }

    #[test]
    fn budget_exhaustion_poisons_instead_of_panicking() {
        let mut s = SegmentStore::new(0, 8, 10, None);
        for _ in 0..10 {
            assert_ne!(s.push(NONE, 0.0, NONE, 0.0), NONE);
        }
        assert!(!s.overflowed());
        assert_eq!(s.push(NONE, 0.0, NONE, 0.0), NONE);
        assert!(s.overflowed());
        assert_eq!(s.len(), 10, "dropped nodes are not counted");
    }

    #[test]
    fn checkpointed_recording_evicts_and_bounds_residency() {
        let ckpt = TapeCheckpointConfig::with_ncheckpoints(2);
        let mut s = SegmentStore::new(0, 8, DEFAULT_NODE_LIMIT, Some(ckpt));
        for i in 0..64u64 {
            s.push(NONE, 0.0, NONE, i as f64);
        }
        s.seal_open();
        assert_eq!(s.seg_count(), 8);
        assert_eq!(s.evicted_count(), 6, "only the budget stays resident");
        assert!(s.peak_resident_bytes() <= 2 * 8 * NODE_BYTES);
    }

    #[test]
    fn budget_smaller_than_one_segment_is_a_typed_error() {
        let seg_bytes = 8 * NODE_BYTES;
        assert!(matches!(
            TapeCheckpointConfig::for_budget_bytes(seg_bytes - 1, 8),
            Err(AdError::InvalidConfig { .. })
        ));
        let cfg = TapeCheckpointConfig::for_budget_bytes(3 * seg_bytes, 8).unwrap();
        assert_eq!(cfg.ncheckpoints, 3);
    }

    #[test]
    fn auto_policy_resolves_to_ceil_log2() {
        let auto = TapeCheckpointConfig::auto();
        assert_eq!(auto.resolved(1), 1);
        assert_eq!(auto.resolved(2), 1);
        assert_eq!(auto.resolved(3), 2);
        assert_eq!(auto.resolved(8), 3);
        assert_eq!(auto.resolved(9), 4);
        assert_eq!(auto.resolved(1024), 10);
        let fixed = TapeCheckpointConfig::with_ncheckpoints(5);
        assert_eq!(fixed.resolved(1024), 5);
    }

    #[test]
    fn digest_is_content_sensitive() {
        let mut a = Segment::with_capacity(8);
        let mut b = Segment::with_capacity(8);
        for seg in [&mut a, &mut b] {
            seg.p1.push(3);
            seg.p2.push(NONE);
            seg.d1.push(1.5);
            seg.d2.push(0.0);
        }
        assert_eq!(segment_digest(&a), segment_digest(&b));
        b.d1[0] = 1.5000000001;
        assert_ne!(segment_digest(&a), segment_digest(&b));
    }

    #[test]
    fn evicted_view_without_replayer_is_a_typed_error() {
        let ckpt = TapeCheckpointConfig::with_ncheckpoints(1);
        let mut s = SegmentStore::new(0, 8, DEFAULT_NODE_LIMIT, Some(ckpt));
        for _ in 0..32 {
            s.push(NONE, 0.0, NONE, 0.0);
        }
        s.seal_open();
        let ctx = ReplayCtx::none();
        match s.view(0, Dir::Rev, &ctx) {
            Err(e) => assert_eq!(e, AdError::SegmentEvicted { segment: 0 }),
            Ok(_) => panic!("view of an evicted segment without a replayer succeeded"),
        }
    }
}
