//! Fixed-size chunked arenas backing the tape.
//!
//! The seed tape was one contiguous `Vec` per column. That had two scaling
//! walls: growing past the reserved capacity copied the *entire* recording
//! (multi-hundred-MiB `memcpy` spikes mid-kernel on NPB tapes), and node
//! ids were `u32`, capping a tape at 2³²−1 nodes with an `assert!` behind
//! it. Segmented storage removes both. Nodes live in fixed-size segments
//! whose columns are allocated exactly once and never move; a node id is a
//! `u64` that splits into `segment = id >> shift` and `offset = id & mask`
//! (segment-local indexing), so capacity is bounded by the configured
//! [`node budget`](crate::TapeConfig::node_limit) rather than an index
//! type; and exhausting that budget *poisons* the store instead of
//! aborting — the error surfaces as a typed
//! [`AdError`](crate::AdError) at sweep time.
//!
//! Segments are also the unit of parallelism for the reverse sweeps in
//! [`crate::sweep`]: each one is an independent, contiguous block of the
//! Wengert list whose adjoint chunk can be merged and swept separately.

/// Sentinel node id meaning "no parent" (constant operand or leaf).
pub(crate) const NONE: u64 = u64::MAX;

/// Default nodes per segment: 2 MiB of node storage per segment, small
/// enough that a dozen segments exist on any interesting tape (exposing
/// sweep parallelism) and large enough that per-segment overheads vanish.
pub const DEFAULT_SEGMENT_LEN: usize = 1 << 16;

/// Default recording budget in nodes. Far beyond what fits in memory
/// (2⁴⁸ nodes ≈ 9 PiB); the budget exists so runaway recordings become a
/// typed error instead of an OOM kill, and so tests can shrink it.
pub const DEFAULT_NODE_LIMIT: u64 = 1 << 48;

/// Bytes per recorded node: two `u64` parent ids + two `f64` partials.
pub const NODE_BYTES: usize = 2 * 8 + 2 * 8;

/// One fixed-capacity arena of nodes, in structure-of-arrays layout.
///
/// The columns are allocated at full segment capacity on construction and
/// never reallocate: a `push` into a non-full segment is a plain append,
/// and a full segment simply stops growing (the store opens a new one).
pub(crate) struct Segment {
    pub(crate) p1: Vec<u64>,
    pub(crate) p2: Vec<u64>,
    pub(crate) d1: Vec<f64>,
    pub(crate) d2: Vec<f64>,
}

impl Segment {
    fn with_capacity(seg_len: usize) -> Segment {
        Segment {
            p1: Vec::with_capacity(seg_len),
            p2: Vec::with_capacity(seg_len),
            d1: Vec::with_capacity(seg_len),
            d2: Vec::with_capacity(seg_len),
        }
    }

    /// Nodes recorded into this segment.
    pub(crate) fn len(&self) -> usize {
        self.p1.len()
    }
}

/// The segmented node store: an append-only sequence of [`Segment`]s.
pub(crate) struct SegmentStore {
    segments: Vec<Segment>,
    /// log2 of the segment length.
    shift: u32,
    /// `segment_len - 1`, for offset extraction.
    mask: u64,
    /// Total nodes recorded.
    len: u64,
    /// Recording budget; reaching it sets `overflowed`.
    limit: u64,
    /// True once a push was dropped because the budget was exhausted.
    overflowed: bool,
}

impl SegmentStore {
    /// Create a store with `segment_len` nodes per segment (rounded up to
    /// a power of two in `[8, 2^31]`) and room pre-reserved in the segment
    /// spine for `capacity` nodes. No segment memory is allocated until
    /// the first push.
    pub(crate) fn new(capacity: usize, segment_len: usize, limit: u64) -> SegmentStore {
        let seg_len = segment_len.next_power_of_two().clamp(8, 1 << 31);
        SegmentStore {
            segments: Vec::with_capacity(capacity.div_ceil(seg_len)),
            shift: seg_len.trailing_zeros(),
            mask: (seg_len - 1) as u64,
            len: 0,
            limit: limit.min(NONE - 1),
            overflowed: false,
        }
    }

    /// Total nodes recorded.
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Nodes per segment.
    pub(crate) fn segment_len(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// log2 of the segment length.
    pub(crate) fn shift(&self) -> u32 {
        self.shift
    }

    /// Offset-extraction mask (`segment_len - 1`).
    pub(crate) fn mask(&self) -> u64 {
        self.mask
    }

    /// The recording budget.
    pub(crate) fn limit(&self) -> u64 {
        self.limit
    }

    /// True once a node was dropped because the budget was exhausted.
    pub(crate) fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// All segments, oldest first.
    pub(crate) fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Heap bytes actually allocated for node storage (every opened
    /// segment reserves its full capacity up front).
    pub(crate) fn allocated_bytes(&self) -> usize {
        self.segments.len() * self.segment_len() * NODE_BYTES
    }

    /// Append a node; returns its id, or [`NONE`] if the budget is
    /// exhausted (the store is then poisoned — see
    /// [`SegmentStore::overflowed`]).
    #[inline]
    pub(crate) fn push(&mut self, p1: u64, d1: f64, p2: u64, d2: f64) -> u64 {
        if self.len >= self.limit {
            self.overflowed = true;
            return NONE;
        }
        let idx = self.len;
        if (idx & self.mask) == 0 && (idx >> self.shift) as usize == self.segments.len() {
            self.segments
                .push(Segment::with_capacity(self.segment_len()));
        }
        let seg = self
            .segments
            .last_mut()
            .expect("a segment exists after the open-on-boundary check");
        seg.p1.push(p1);
        seg.p2.push(p2);
        seg.d1.push(d1);
        seg.d2.push(d2);
        self.len += 1;
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_len_rounds_to_power_of_two() {
        let s = SegmentStore::new(0, 100, DEFAULT_NODE_LIMIT);
        assert_eq!(s.segment_len(), 128);
        let s = SegmentStore::new(0, 1, DEFAULT_NODE_LIMIT);
        assert_eq!(s.segment_len(), 8);
    }

    #[test]
    fn push_crosses_segment_boundaries_without_moving_data() {
        let mut s = SegmentStore::new(0, 8, DEFAULT_NODE_LIMIT);
        for i in 0..20u64 {
            assert_eq!(s.push(NONE, 0.0, NONE, i as f64), i);
        }
        assert_eq!(s.segments().len(), 3);
        assert_eq!(s.segments()[0].len(), 8);
        assert_eq!(s.segments()[2].len(), 4);
        // Column capacity is exact: no segment ever reallocates.
        for seg in s.segments() {
            assert_eq!(seg.d2.capacity(), 8);
        }
        assert_eq!(s.allocated_bytes(), 3 * 8 * NODE_BYTES);
    }

    #[test]
    fn budget_exhaustion_poisons_instead_of_panicking() {
        let mut s = SegmentStore::new(0, 8, 10);
        for _ in 0..10 {
            assert_ne!(s.push(NONE, 0.0, NONE, 0.0), NONE);
        }
        assert!(!s.overflowed());
        assert_eq!(s.push(NONE, 0.0, NONE, 0.0), NONE);
        assert!(s.overflowed());
        assert_eq!(s.len(), 10, "dropped nodes are not counted");
    }
}
