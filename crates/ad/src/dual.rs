//! Forward-mode AD with dual numbers.
//!
//! `Dual` carries a value and a single directional derivative. It is the
//! independent oracle used by the test suite to validate the reverse-mode
//! tape (forward and reverse must agree to machine precision on the same
//! program), and it is also useful on its own when only a few input
//! directions matter.

/// A dual number `v + d·ε` with `ε² = 0`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Dual {
    /// Primal value.
    pub v: f64,
    /// Derivative (tangent) component.
    pub d: f64,
}

impl Dual {
    /// A constant (zero tangent).
    #[inline]
    pub fn constant(v: f64) -> Self {
        Dual { v, d: 0.0 }
    }

    /// The seeded input variable: `d/dx x = 1`.
    #[inline]
    pub fn variable(v: f64) -> Self {
        Dual { v, d: 1.0 }
    }

    /// Primal value.
    #[inline]
    pub fn value(self) -> f64 {
        self.v
    }

    /// Tangent (derivative along the seeded direction).
    #[inline]
    pub fn tangent(self) -> f64 {
        self.d
    }

    /// Square root.
    #[inline]
    pub fn sqrt(self) -> Dual {
        let r = self.v.sqrt();
        Dual {
            v: r,
            d: self.d * 0.5 / r,
        }
    }

    /// Natural exponential.
    #[inline]
    pub fn exp(self) -> Dual {
        let e = self.v.exp();
        Dual {
            v: e,
            d: self.d * e,
        }
    }

    /// Natural logarithm.
    #[inline]
    pub fn ln(self) -> Dual {
        Dual {
            v: self.v.ln(),
            d: self.d / self.v,
        }
    }

    /// Sine.
    #[inline]
    pub fn sin(self) -> Dual {
        Dual {
            v: self.v.sin(),
            d: self.d * self.v.cos(),
        }
    }

    /// Cosine.
    #[inline]
    pub fn cos(self) -> Dual {
        Dual {
            v: self.v.cos(),
            d: -self.d * self.v.sin(),
        }
    }

    /// Integer power.
    #[inline]
    pub fn powi(self, n: i32) -> Dual {
        Dual {
            v: self.v.powi(n),
            d: self.d * f64::from(n) * self.v.powi(n - 1),
        }
    }

    /// Real power with a constant exponent.
    #[inline]
    pub fn powf(self, p: f64) -> Dual {
        Dual {
            v: self.v.powf(p),
            d: self.d * p * self.v.powf(p - 1.0),
        }
    }

    /// Reciprocal.
    #[inline]
    pub fn recip(self) -> Dual {
        let inv = 1.0 / self.v;
        Dual {
            v: inv,
            d: -self.d * inv * inv,
        }
    }

    /// Absolute value (a.e. derivative).
    #[inline]
    pub fn abs(self) -> Dual {
        if self.v >= 0.0 {
            self
        } else {
            -self
        }
    }

    /// Maximum, branch semantics matching [`crate::Adj::max`].
    #[inline]
    pub fn max(self, rhs: Dual) -> Dual {
        if self.v >= rhs.v {
            self
        } else {
            rhs
        }
    }

    /// Minimum, branch semantics matching [`crate::Adj::min`].
    #[inline]
    pub fn min(self, rhs: Dual) -> Dual {
        if self.v <= rhs.v {
            self
        } else {
            rhs
        }
    }
}

use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

impl Add for Dual {
    type Output = Dual;
    #[inline]
    fn add(self, rhs: Dual) -> Dual {
        Dual {
            v: self.v + rhs.v,
            d: self.d + rhs.d,
        }
    }
}

impl Sub for Dual {
    type Output = Dual;
    #[inline]
    fn sub(self, rhs: Dual) -> Dual {
        Dual {
            v: self.v - rhs.v,
            d: self.d - rhs.d,
        }
    }
}

impl Mul for Dual {
    type Output = Dual;
    #[inline]
    fn mul(self, rhs: Dual) -> Dual {
        Dual {
            v: self.v * rhs.v,
            d: self.d * rhs.v + self.v * rhs.d,
        }
    }
}

impl Div for Dual {
    type Output = Dual;
    #[inline]
    fn div(self, rhs: Dual) -> Dual {
        let inv = 1.0 / rhs.v;
        Dual {
            v: self.v * inv,
            d: (self.d - self.v * inv * rhs.d) * inv,
        }
    }
}

impl Neg for Dual {
    type Output = Dual;
    #[inline]
    fn neg(self) -> Dual {
        Dual {
            v: -self.v,
            d: -self.d,
        }
    }
}

macro_rules! scalar_rhs {
    ($trait:ident, $m:ident) => {
        impl $trait<f64> for Dual {
            type Output = Dual;
            #[inline]
            fn $m(self, rhs: f64) -> Dual {
                self.$m(Dual::constant(rhs))
            }
        }
        impl $trait<Dual> for f64 {
            type Output = Dual;
            #[inline]
            fn $m(self, rhs: Dual) -> Dual {
                Dual::constant(self).$m(rhs)
            }
        }
    };
}
scalar_rhs!(Add, add);
scalar_rhs!(Sub, sub);
scalar_rhs!(Mul, mul);
scalar_rhs!(Div, div);

macro_rules! assign_op {
    ($trait:ident, $m:ident, $op:ident) => {
        impl $trait for Dual {
            #[inline]
            fn $m(&mut self, rhs: Dual) {
                *self = (*self).$op(rhs);
            }
        }
        impl $trait<f64> for Dual {
            #[inline]
            fn $m(&mut self, rhs: f64) {
                *self = (*self).$op(rhs);
            }
        }
    };
}
assign_op!(AddAssign, add_assign, add);
assign_op!(SubAssign, sub_assign, sub);
assign_op!(MulAssign, mul_assign, mul);
assign_op!(DivAssign, div_assign, div);

impl PartialOrd for Dual {
    #[inline]
    fn partial_cmp(&self, other: &Dual) -> Option<std::cmp::Ordering> {
        self.v.partial_cmp(&other.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_rule() {
        let x = Dual::variable(3.0);
        let y = x * x * x;
        assert!((y.v - 27.0).abs() < 1e-15);
        assert!((y.d - 27.0).abs() < 1e-12);
    }

    #[test]
    fn quotient_rule() {
        let x = Dual::variable(2.0);
        let y = (x * x + 1.0) / x; // y = x + 1/x, y' = 1 - 1/x^2
        assert!((y.d - (1.0 - 0.25)).abs() < 1e-14);
    }

    #[test]
    fn chain_of_transcendentals() {
        let x = Dual::variable(0.7);
        let y = (x.sin() * x.exp()).ln().sqrt();
        // Compare against central finite differences.
        let f = |x: f64| (x.sin() * x.exp()).ln().sqrt();
        let h = 1e-7;
        let fd = (f(0.7 + h) - f(0.7 - h)) / (2.0 * h);
        assert!((y.d - fd).abs() < 1e-6);
    }

    #[test]
    fn constants_have_zero_tangent() {
        let x = Dual::variable(1.0);
        let c = Dual::constant(5.0);
        assert_eq!((x * 0.0 + c).d, 0.0);
    }
}
