//! The `Real` scalar abstraction.
//!
//! The NPB kernels (and any user application analyzed by `scrutiny`) are
//! written once, generically over `Real`. Instantiated with `f64` they run
//! at native speed (golden/restart runs); instantiated with [`crate::Adj`]
//! the identical code path records the tape for the criticality analysis;
//! instantiated with [`crate::Dual`] it provides a forward-mode oracle for
//! tests.

use crate::{Adj, Dual};
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A differentiable scalar: `f64`, [`Adj`] (reverse mode) or [`Dual`]
/// (forward mode).
///
/// Comparisons go through [`Real::value`] — control flow is evaluated on
/// primal values, which matches what an LLVM-level tool like Enzyme
/// differentiates (the executed path).
pub trait Real:
    Copy
    + Clone
    + Debug
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Add<f64, Output = Self>
    + Sub<f64, Output = Self>
    + Mul<f64, Output = Self>
    + Div<f64, Output = Self>
    + AddAssign<f64>
    + SubAssign<f64>
    + MulAssign<f64>
    + DivAssign<f64>
{
    /// Lift a literal into the scalar type (an AD *constant*).
    fn lit(v: f64) -> Self;
    /// The primal value.
    fn value(self) -> f64;
    /// Additive identity as a constant.
    #[inline]
    fn zero() -> Self {
        Self::lit(0.0)
    }
    /// Multiplicative identity as a constant.
    #[inline]
    fn one() -> Self {
        Self::lit(1.0)
    }
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Absolute value (a.e. derivative for AD types).
    fn abs(self) -> Self;
    /// Maximum of two scalars (executed-branch subgradient).
    fn rmax(self, other: Self) -> Self;
    /// Minimum of two scalars (executed-branch subgradient).
    fn rmin(self, other: Self) -> Self;
}

impl Real for f64 {
    #[inline]
    fn lit(v: f64) -> Self {
        v
    }
    #[inline]
    fn value(self) -> f64 {
        self
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline]
    fn sin(self) -> Self {
        f64::sin(self)
    }
    #[inline]
    fn cos(self) -> Self {
        f64::cos(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn rmax(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
    #[inline]
    fn rmin(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Real for Adj {
    #[inline]
    fn lit(v: f64) -> Self {
        Adj::constant(v)
    }
    #[inline]
    fn value(self) -> f64 {
        Adj::value(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        Adj::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        Adj::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        Adj::ln(self)
    }
    #[inline]
    fn sin(self) -> Self {
        Adj::sin(self)
    }
    #[inline]
    fn cos(self) -> Self {
        Adj::cos(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        Adj::powi(self, n)
    }
    #[inline]
    fn abs(self) -> Self {
        Adj::abs(self)
    }
    #[inline]
    fn rmax(self, other: Self) -> Self {
        Adj::max(self, other)
    }
    #[inline]
    fn rmin(self, other: Self) -> Self {
        Adj::min(self, other)
    }
}

impl Real for Dual {
    #[inline]
    fn lit(v: f64) -> Self {
        Dual::constant(v)
    }
    #[inline]
    fn value(self) -> f64 {
        Dual::value(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        Dual::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        Dual::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        Dual::ln(self)
    }
    #[inline]
    fn sin(self) -> Self {
        Dual::sin(self)
    }
    #[inline]
    fn cos(self) -> Self {
        Dual::cos(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        Dual::powi(self, n)
    }
    #[inline]
    fn abs(self) -> Self {
        Dual::abs(self)
    }
    #[inline]
    fn rmax(self, other: Self) -> Self {
        Dual::max(self, other)
    }
    #[inline]
    fn rmin(self, other: Self) -> Self {
        Dual::min(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TapeSession;

    /// A generic kernel: the same source evaluated for all three scalars.
    fn kernel<R: Real>(x: R) -> R {
        let a = x * x + R::lit(1.0);
        let b = a.sqrt().ln();
        (b.sin() + x.exp() * 0.5).abs()
    }

    #[test]
    fn all_scalars_agree_on_values() {
        let x = 0.83;
        let vf = kernel(x);
        let vd = kernel(Dual::variable(x)).value();
        let s = TapeSession::new();
        let va = kernel(Adj::leaf(x)).value();
        drop(s);
        assert!((vf - vd).abs() < 1e-15);
        assert!((vf - va).abs() < 1e-15);
    }

    #[test]
    fn forward_equals_reverse() {
        let x = 0.83;
        let dd = kernel(Dual::variable(x)).tangent();
        let s = TapeSession::new();
        let leaf = Adj::leaf(x);
        let y = kernel(leaf);
        let tape = s.finish();
        let da = tape.gradient(y).unwrap().wrt(leaf);
        assert!(
            (dd - da).abs() < 1e-13,
            "forward {dd} vs reverse {da} disagree"
        );
    }

    #[test]
    fn rmax_rmin_consistent_across_scalars() {
        let a = 2.0;
        let b = 5.0;
        assert_eq!(a.rmax(b), 5.0);
        assert_eq!(a.rmin(b), 2.0);
        assert_eq!(Dual::variable(a).rmax(Dual::constant(b)).value(), 5.0);
        let s = TapeSession::new();
        assert_eq!(Adj::leaf(a).rmax(Adj::constant(b)).value(), 5.0);
        drop(s);
    }

    #[test]
    fn f64_scalar_ops_compile_and_match() {
        fn poly<R: Real>(x: R) -> R {
            let mut acc = R::zero();
            acc += x * 2.0;
            acc -= 1.0;
            acc *= 3.0;
            acc /= 2.0;
            acc + R::one()
        }
        let direct = |x: f64| ((x * 2.0 - 1.0) * 3.0) / 2.0 + 1.0;
        assert!((poly(1.7f64) - direct(1.7)).abs() < 1e-15);
        assert!((poly(Dual::variable(1.7)).value() - direct(1.7)).abs() < 1e-15);
    }
}
