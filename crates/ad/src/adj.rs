//! `Adj` — the recording scalar for reverse-mode AD.
//!
//! An `Adj` is either *tracked* (it owns a node on the active tape) or a
//! *constant* (derived purely from literals). Operations between constants
//! fold and record nothing; this is what keeps data-independent work — the
//! EP benchmark's 2^24-sample random stream, FFT twiddle factors, grid
//! metric terms — off the tape, making whole-program recording of the NPB
//! kernels feasible in memory.

use crate::tape::{self, NONE};

/// Reverse-mode scalar: a value plus (optionally) a node on the active tape.
#[derive(Copy, Clone, Debug)]
pub struct Adj {
    idx: u64,
    v: f64,
}

impl Adj {
    /// A constant: participates in arithmetic but records nothing and has
    /// zero derivative.
    #[inline]
    pub fn constant(v: f64) -> Self {
        Adj { idx: NONE, v }
    }

    /// Register a new *input* (leaf) node holding `v` on the active tape.
    ///
    /// Checkpointed elements are converted to leaves at the checkpoint
    /// boundary; the reverse sweep reports `∂output/∂leaf` for each.
    ///
    /// Panics when no [`crate::TapeSession`] is active.
    #[inline]
    pub fn leaf(v: f64) -> Self {
        Adj {
            idx: tape::record_leaf(),
            v,
        }
    }

    /// The primal value.
    #[inline]
    pub fn value(self) -> f64 {
        self.v
    }

    /// The tape node index, or `None` for constants.
    #[inline]
    pub fn index(self) -> Option<u64> {
        (self.idx != NONE).then_some(self.idx)
    }

    /// True when this value is recorded on the tape.
    #[inline]
    pub fn is_tracked(self) -> bool {
        self.idx != NONE
    }

    /// Record a unary operation `f(self)` with local partial `d`.
    #[inline]
    fn unary(self, v: f64, d: f64) -> Adj {
        if self.idx == NONE {
            return Adj::constant(v);
        }
        Adj {
            idx: tape::record_node(self.idx, d, NONE, 0.0),
            v,
        }
    }

    /// Record a binary operation `f(self, rhs)` with local partials `da, db`.
    #[inline]
    fn binary(self, rhs: Adj, v: f64, da: f64, db: f64) -> Adj {
        if self.idx == NONE && rhs.idx == NONE {
            return Adj::constant(v);
        }
        Adj {
            idx: tape::record_node(self.idx, da, rhs.idx, db),
            v,
        }
    }

    // ---- elementary functions -------------------------------------------

    /// Square root; `d/dx √x = 1/(2√x)`.
    #[inline]
    pub fn sqrt(self) -> Adj {
        let r = self.v.sqrt();
        self.unary(r, 0.5 / r)
    }

    /// Natural exponential.
    #[inline]
    pub fn exp(self) -> Adj {
        let e = self.v.exp();
        self.unary(e, e)
    }

    /// Natural logarithm.
    #[inline]
    pub fn ln(self) -> Adj {
        self.unary(self.v.ln(), 1.0 / self.v)
    }

    /// Sine.
    #[inline]
    pub fn sin(self) -> Adj {
        self.unary(self.v.sin(), self.v.cos())
    }

    /// Cosine.
    #[inline]
    pub fn cos(self) -> Adj {
        self.unary(self.v.cos(), -self.v.sin())
    }

    /// Integer power; `d/dx x^n = n·x^(n-1)`.
    #[inline]
    pub fn powi(self, n: i32) -> Adj {
        self.unary(self.v.powi(n), f64::from(n) * self.v.powi(n - 1))
    }

    /// Real power with a constant exponent.
    #[inline]
    pub fn powf(self, p: f64) -> Adj {
        self.unary(self.v.powf(p), p * self.v.powf(p - 1.0))
    }

    /// Reciprocal; `d/dx 1/x = -1/x²`.
    #[inline]
    pub fn recip(self) -> Adj {
        let r = 1.0 / self.v;
        self.unary(r, -r * r)
    }

    /// Absolute value with the a.e. derivative `sign(x)` (0 at the kink).
    #[inline]
    pub fn abs(self) -> Adj {
        let d = if self.v > 0.0 {
            1.0
        } else if self.v < 0.0 {
            -1.0
        } else {
            0.0
        };
        self.unary(self.v.abs(), d)
    }

    /// Maximum; the subgradient follows the winning branch (ties go left,
    /// matching the executed-path semantics Enzyme would differentiate).
    #[inline]
    pub fn max(self, rhs: Adj) -> Adj {
        if self.v >= rhs.v {
            self.binary(rhs, self.v, 1.0, 0.0)
        } else {
            self.binary(rhs, rhs.v, 0.0, 1.0)
        }
    }

    /// Minimum; subgradient follows the winning branch (ties go left).
    #[inline]
    pub fn min(self, rhs: Adj) -> Adj {
        if self.v <= rhs.v {
            self.binary(rhs, self.v, 1.0, 0.0)
        } else {
            self.binary(rhs, rhs.v, 0.0, 1.0)
        }
    }
}

// ---- operator overloads (Adj ∘ Adj, Adj ∘ f64, f64 ∘ Adj) ---------------

use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

impl Add for Adj {
    type Output = Adj;
    #[inline]
    fn add(self, rhs: Adj) -> Adj {
        self.binary(rhs, self.v + rhs.v, 1.0, 1.0)
    }
}

impl Sub for Adj {
    type Output = Adj;
    #[inline]
    fn sub(self, rhs: Adj) -> Adj {
        self.binary(rhs, self.v - rhs.v, 1.0, -1.0)
    }
}

impl Mul for Adj {
    type Output = Adj;
    #[inline]
    fn mul(self, rhs: Adj) -> Adj {
        self.binary(rhs, self.v * rhs.v, rhs.v, self.v)
    }
}

impl Div for Adj {
    type Output = Adj;
    #[inline]
    fn div(self, rhs: Adj) -> Adj {
        let inv = 1.0 / rhs.v;
        self.binary(rhs, self.v * inv, inv, -self.v * inv * inv)
    }
}

impl Neg for Adj {
    type Output = Adj;
    #[inline]
    fn neg(self) -> Adj {
        self.unary(-self.v, -1.0)
    }
}

macro_rules! scalar_rhs {
    ($trait:ident, $m:ident) => {
        impl $trait<f64> for Adj {
            type Output = Adj;
            #[inline]
            fn $m(self, rhs: f64) -> Adj {
                self.$m(Adj::constant(rhs))
            }
        }
        impl $trait<Adj> for f64 {
            type Output = Adj;
            #[inline]
            fn $m(self, rhs: Adj) -> Adj {
                Adj::constant(self).$m(rhs)
            }
        }
    };
}
scalar_rhs!(Add, add);
scalar_rhs!(Sub, sub);
scalar_rhs!(Mul, mul);
scalar_rhs!(Div, div);

macro_rules! assign_op {
    ($trait:ident, $m:ident, $op:ident) => {
        impl $trait for Adj {
            #[inline]
            fn $m(&mut self, rhs: Adj) {
                *self = (*self).$op(rhs);
            }
        }
        impl $trait<f64> for Adj {
            #[inline]
            fn $m(&mut self, rhs: f64) {
                *self = (*self).$op(rhs);
            }
        }
    };
}
assign_op!(AddAssign, add_assign, add);
assign_op!(SubAssign, sub_assign, sub);
assign_op!(MulAssign, mul_assign, mul);
assign_op!(DivAssign, div_assign, div);

// Comparisons act on primal values: control flow is "frozen" along the
// executed path, the standard operator-overloading AD semantics (Enzyme
// differentiates the executed path too).
impl PartialEq for Adj {
    #[inline]
    fn eq(&self, other: &Adj) -> bool {
        self.v == other.v
    }
}

impl PartialOrd for Adj {
    #[inline]
    fn partial_cmp(&self, other: &Adj) -> Option<std::cmp::Ordering> {
        self.v.partial_cmp(&other.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TapeSession;

    fn grad1(f: impl FnOnce(Adj) -> Adj, x: f64) -> (f64, f64) {
        let s = TapeSession::new();
        let xa = Adj::leaf(x);
        let y = f(xa);
        let tape = s.finish();
        (y.value(), tape.gradient(y).unwrap().wrt(xa))
    }

    fn fd1(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6 * x.abs().max(1.0);
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn add_sub_mul_div() {
        let (v, d) = grad1(|x| (x + 2.0) * (x - 3.0) / (x * 0.5), 4.0);
        let f = |x: f64| (x + 2.0) * (x - 3.0) / (x * 0.5);
        assert!((v - f(4.0)).abs() < 1e-12);
        assert!((d - fd1(f, 4.0)).abs() < 1e-5);
    }

    #[test]
    fn transcendental_functions() {
        for (i, f_adj) in [
            (0, (|x: Adj| x.sqrt()) as fn(Adj) -> Adj),
            (1, |x: Adj| x.exp()),
            (2, |x: Adj| x.ln()),
            (3, |x: Adj| x.sin()),
            (4, |x: Adj| x.cos()),
            (5, |x: Adj| x.powi(3)),
            (6, |x: Adj| x.powf(1.7)),
            (7, |x: Adj| x.recip()),
            (8, |x: Adj| x.abs()),
        ] {
            let f64_f = move |x: f64| match i {
                0 => x.sqrt(),
                1 => x.exp(),
                2 => x.ln(),
                3 => x.sin(),
                4 => x.cos(),
                5 => x.powi(3),
                6 => x.powf(1.7),
                7 => x.recip(),
                _ => x.abs(),
            };
            let x0 = 1.3;
            let (v, d) = grad1(f_adj, x0);
            assert!((v - f64_f(x0)).abs() < 1e-12, "value mismatch for fn {i}");
            assert!(
                (d - fd1(f64_f, x0)).abs() < 1e-5,
                "derivative mismatch for fn {i}: ad={d}, fd={}",
                fd1(f64_f, x0)
            );
        }
    }

    #[test]
    fn constants_fold_without_session() {
        // No session active: constant arithmetic must not touch the tape.
        let a = Adj::constant(2.0);
        let b = Adj::constant(3.0);
        let c = (a * b + 1.0).sqrt();
        assert!(!c.is_tracked());
        assert!((c.value() - 7.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn mixed_constant_tracked_records() {
        let s = TapeSession::new();
        let x = Adj::leaf(2.0);
        let c = Adj::constant(10.0);
        let y = x * c;
        assert!(y.is_tracked());
        let tape = s.finish();
        assert_eq!(tape.gradient(y).unwrap().wrt(x), 10.0);
    }

    #[test]
    fn max_min_subgradients() {
        let (_, d) = grad1(|x| x.max(Adj::constant(1.0)), 5.0);
        assert_eq!(d, 1.0);
        let (_, d) = grad1(|x| x.max(Adj::constant(10.0)), 5.0);
        assert_eq!(d, 0.0);
        let (_, d) = grad1(|x| x.min(Adj::constant(1.0)), 5.0);
        assert_eq!(d, 0.0);
        let (_, d) = grad1(|x| x.min(Adj::constant(10.0)), 5.0);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn fan_out_accumulates() {
        // y = x*x + x*x: adjoint contributions from both uses must sum.
        let (_, d) = grad1(|x| x * x + x * x, 3.0);
        assert_eq!(d, 12.0);
    }

    #[test]
    fn assign_ops_match_plain_ops() {
        let s = TapeSession::new();
        let x = Adj::leaf(2.0);
        let mut acc = Adj::constant(0.0);
        acc += x * 3.0;
        acc -= x;
        acc *= 2.0;
        acc /= 4.0;
        let tape = s.finish();
        // acc = (3x - x) * 2 / 4 = x
        assert_eq!(tape.gradient(acc).unwrap().wrt(x), 1.0);
        assert!((acc.value() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn comparisons_use_primal_values() {
        let a = Adj::constant(1.0);
        let b = Adj::constant(2.0);
        assert!(a < b);
        assert!(b > a);
        assert!(a == Adj::constant(1.0));
    }

    #[test]
    #[allow(unused_assignments)]
    fn overwrite_kills_dependency() {
        // The checkpointed value is overwritten before being read: its
        // gradient must be zero. This is the mechanism behind "written but
        // never read" uncritical elements in the paper.
        let s = TapeSession::new();
        let ckpt = Adj::leaf(7.0);
        let mut slot = ckpt;
        slot = Adj::constant(1.0); // overwrite before any read
        let out = slot * 2.0;
        let tape = s.finish();
        assert_eq!(tape.gradient(out).unwrap().wrt(ckpt), 0.0);
    }
}
