//! # scrutiny-ad — tape-based reverse-mode automatic differentiation
//!
//! This crate is the AD substrate of the `scrutiny` project, a reproduction
//! of *"Scrutinizing Variables for Checkpoint Using Automatic
//! Differentiation"* (SC 2024). The paper uses Enzyme (LLVM) to compute the
//! derivative of a program's output with respect to every element of every
//! checkpointed variable; elements with zero derivative are *uncritical* and
//! can be dropped from checkpoints. No mature Rust AD tool exists, so this
//! crate implements the required machinery from scratch:
//!
//! * [`Tape`] — a **segmented** structure-of-arrays Wengert list. Nodes
//!   live in fixed-size arenas that are allocated once and never move (no
//!   reallocation copy spikes mid-kernel); node ids are `u64`s with
//!   segment-local indexing, so capacity is bounded by a configurable
//!   budget rather than a `u32`; exhausting the budget poisons the tape
//!   with a typed [`AdError`] instead of aborting the record. Each node
//!   stores its two parent ids and the local partial derivatives, computed
//!   at record time (32 bytes/node).
//! * [`sweep`] — the reverse sweeps. [`Tape::gradient`] yields the
//!   derivative of the output with respect to *every* recorded value —
//!   exactly the all-elements sensitivity the paper needs — and can run
//!   **in parallel**: segments are swept in reverse while worker threads
//!   merge cross-segment adjoint contributions through per-segment
//!   frontier buffers in deterministic order, so the result is
//!   bit-identical to the serial sweep.
//! * [`Adj`] — the recording scalar. Arithmetic on `Adj` values appends
//!   nodes to the active thread-local tape. Values derived purely from
//!   literals fold to constants and record nothing, which keeps
//!   data-independent computation (random streams, FFT twiddle factors,
//!   loop bookkeeping) off the tape.
//! * [`Dual`] — forward-mode dual numbers, used to cross-check the reverse
//!   sweep in tests (and usable on its own for single-direction derivatives).
//! * [`Real`] — the scalar abstraction implemented by `f64`, `Adj` and
//!   [`Dual`]; the NPB kernels are written once, generically, against it.
//! * [`Cplx`] — a complex number over any [`Real`], needed by the FT
//!   benchmark (`dcomplex` in NPB).
//! * [`Tape::reachable`] — *structural* activity analysis on the same tape:
//!   an element is structurally critical if any data-flow path connects it
//!   to the output, even if the derivative value cancels to zero. This is
//!   the cheaper comparator used by the ablation experiments; it sweeps
//!   per-segment bitsets through the same frontier machinery.
//! * [`datadep`] — the structural bits packaged as a full static analyzer
//!   ([`Tape::datadep`]): liveness plus def-use bits and explicit witness
//!   paths, the AutoCheck-style second opinion that the differential
//!   harness in `core::analysis` cross-checks the value sweep against.
//! * [`TapeCheckpointConfig`] — **bounded-memory scrutiny** via
//!   divide-and-conquer checkpointing of the tape itself ([`replay`]):
//!   keep at most `ncheckpoints` segments resident (0 = auto ≈
//!   log2(segments)), evict the rest to digests during recording, and
//!   re-record them on demand through a deterministic [`TapeReplay`]
//!   closure during the sweeps — `O(ncheckpoints · segment)` peak tape
//!   residency instead of `O(n)`, digest-verified bit-identical to the
//!   unbounded sweep.
//!
//! ## Example: the paper's Figure 1 workflow
//!
//! ```
//! use scrutiny_ad::{Adj, TapeSession};
//!
//! let session = TapeSession::new();
//! let x = Adj::leaf(2.0);
//! let u = x * x;        // u(x) = x^2
//! let v = (x + 1.0).ln(); // v(x) = ln(x + 1)
//! let f = u * 3.0 + v;  // f(u, v) = 3u + v
//! let tape = session.finish();
//! let grads = tape.gradient(f).unwrap();
//! let df_dx = grads.wrt(x);
//! assert!((df_dx - (6.0 * 2.0 + 1.0 / 3.0)).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod adj;
pub mod cplx;
pub mod datadep;
pub mod dual;
pub mod error;
pub mod real;
pub mod replay;
pub mod segment;
pub mod sweep;
pub mod tape;

pub use adj::Adj;
pub use cplx::Cplx;
pub use datadep::{DataDep, Witness};
pub use dual::Dual;
pub use error::AdError;
pub use real::Real;
pub use replay::TapeReplay;
pub use segment::{TapeCheckpointConfig, DEFAULT_NODE_LIMIT, DEFAULT_SEGMENT_LEN, NODE_BYTES};
pub use sweep::{Gradient, SweepConfig, SweepStats};
pub use tape::{Tape, TapeConfig, TapeSession, TapeStats};

/// Convenience: run `f` while a fresh tape records, then return the result
/// together with the finished tape.
///
/// ```
/// use scrutiny_ad::{record, Adj};
/// let (y, tape) = record(16, || {
///     let x = Adj::leaf(3.0);
///     x * x
/// });
/// assert_eq!(
///     tape.gradient(y).unwrap().of_node(y.index().unwrap()),
///     1.0
/// );
/// ```
pub fn record<T>(capacity: usize, f: impl FnOnce() -> T) -> (T, Tape) {
    let session = TapeSession::with_capacity(capacity);
    let out = f();
    (out, session.finish())
}
