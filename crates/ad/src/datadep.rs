//! Static data-dependency analysis over a recorded tape.
//!
//! [`Tape::reachable`] answers one question — "does a data-flow path
//! connect this node to the output?" — and the AutoCheck line of work
//! (see PAPERS.md) shows that question *alone*, with no derivative
//! values, already yields a usable critical/uncritical verdict. This
//! module packages that verdict as a first-class analysis result:
//!
//! * **liveness** — the structural reachability bits, computed by the
//!   exact per-segment bitset sweep in [`crate::sweep`] (serial or
//!   parallel, identical bits either way). A node is *live* when some
//!   chain of recorded edges connects it to the output, regardless of
//!   whether the partial derivatives along the chain multiply to zero.
//! * **def-use bits** — one forward pass over the segments marking every
//!   node that is *used* (appears as a parent of a later node). A leaf
//!   that is never used can only be live if it *is* the output; the
//!   def-use pass makes that invariant checkable and gives the analyzer
//!   its "was this definition ever consumed?" vocabulary over
//!   checkpoint-variable leaf ranges.
//! * **witness paths** — for any live node, an explicit node path to the
//!   output ([`DataDep::witness_path`]). The differential harness
//!   attaches these to every AD-vs-datadep disagreement so an
//!   over-approximation is never just a bit: it names the edges that
//!   keep the element structurally alive.
//!
//! The analyzer's error direction is safe by construction: a non-zero
//! adjoint can only flow along recorded edges, so every AD-critical node
//! is also datadep-live. The converse fails exactly on the non-smooth
//! pitfalls (min/max losers, multiplication by a tracked zero, exact
//! cancellation) catalogued by Hückelheim et al.; `core::analysis`
//! classifies those as typed disagreements.

use crate::error::AdError;
use crate::replay::ReplayCtx;
use crate::segment::{Dir, NONE};
use crate::sweep::{self, SweepConfig, SweepStats};
use crate::tape::Tape;

/// Result of a static data-dependency analysis of one tape.
///
/// Produced by [`Tape::datadep`] / [`Tape::datadep_sweep`]. Holds one
/// liveness bit and one def-use bit per node; no adjoint values are ever
/// computed.
#[derive(Debug)]
pub struct DataDep {
    /// `live[i]`: a chain of recorded edges connects node `i` to the seed.
    live: Vec<bool>,
    /// `used[i]`: node `i` appears as a parent of some later node.
    used: Vec<bool>,
    /// The seed node, `None` when the output folded to a constant.
    seed: Option<u64>,
    stats: SweepStats,
}

/// An explicit data-flow path from a live node to the analysis output.
///
/// Attached to analyzer disagreements so every "structurally live but
/// value-dead" verdict comes with the edges that justify it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Node ids along the path, starting at the queried node, each
    /// subsequent node a recorded consumer of the previous one. Truncated
    /// to the `max_nodes` given to [`DataDep::witness_path`]; the path is
    /// complete when the last entry is the output node.
    pub nodes: Vec<u64>,
    /// Total edges on the (untruncated) path.
    pub hops: usize,
}

impl DataDep {
    /// True when a data-flow path connects node `idx` to the output.
    pub fn live(&self, idx: u64) -> bool {
        self.live[idx as usize]
    }

    /// True when node `idx` is consumed by some later node.
    pub fn used(&self, idx: u64) -> bool {
        self.used[idx as usize]
    }

    /// Liveness bits for a contiguous node range (a checkpointed array's
    /// leaves).
    pub fn live_range(&self, start: u64, len: usize) -> &[bool] {
        &self.live[start as usize..start as usize + len]
    }

    /// The seed node the analysis was run against, `None` when the output
    /// was a constant (nothing is live then).
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Number of analyzed nodes (== tape length).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when the analyzed tape was empty.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Count of live nodes.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&b| b).count()
    }

    /// What the underlying structural sweep did (segments, threads,
    /// frontier traffic).
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// The raw liveness bits, node id order.
    pub fn live_bits(&self) -> &[bool] {
        &self.live
    }

    /// An explicit path of recorded edges from `from` to the output, or
    /// `None` when `from` is not live (then no such path exists).
    ///
    /// The path is found greedily in one forward scan: every live node
    /// other than the output has at least one live consumer at a strictly
    /// larger id (that is what made it live), so repeatedly taking the
    /// *first* live consumer terminates at the output after at most one
    /// pass over the tape — O(nodes) total, no backtracking. `nodes` is
    /// truncated to `max_nodes` entries; `hops` always counts the full
    /// path.
    ///
    /// On a checkpointed tape the scan only walks *resident* segments:
    /// hitting an evicted one returns `None` (the liveness verdict stands;
    /// only the explicit path is unavailable without a replay).
    pub fn witness_path(&self, tape: &Tape, from: u64, max_nodes: usize) -> Option<Witness> {
        let seed = self.seed?;
        if !self.live(from) {
            return None;
        }
        let store = tape.store();
        let shift = store.shift();
        let mask = store.mask();
        let ctx = ReplayCtx::none();
        let mut cur_s = usize::MAX;
        let mut seg_view = None;
        let mut nodes = vec![from];
        let mut hops = 0usize;
        let mut current = from;
        let mut j = from + 1;
        while current != seed {
            // Scan forward for the first live consumer of `current`. The
            // scan cursor never rewinds: the consumer found is > current,
            // and its own consumers are later still.
            loop {
                debug_assert!(j <= seed, "live non-output node with no live consumer");
                let s = (j >> shift) as usize;
                if s != cur_s {
                    seg_view = Some(store.view(s, Dir::Fwd, &ctx).ok()?);
                    cur_s = s;
                }
                let seg = seg_view.as_ref().expect("view cached for this segment");
                let off = (j & mask) as usize;
                if self.live[j as usize] && (seg.p1[off] == current || seg.p2[off] == current) {
                    break;
                }
                j += 1;
            }
            current = j;
            hops += 1;
            if nodes.len() < max_nodes {
                nodes.push(current);
            }
            j += 1;
        }
        Some(Witness { nodes, hops })
    }
}

/// Run the analysis: structural liveness from `seed` (via the shared
/// serial/parallel bitset sweep) plus the forward def-use pass. Both
/// passes fetch segments through the replay context, so on a checkpointed
/// tape the whole analysis stays within the residency budget.
pub(crate) fn analyze(
    tape: &Tape,
    seed: Option<u64>,
    cfg: SweepConfig,
    ctx: &ReplayCtx<'_>,
) -> Result<DataDep, AdError> {
    let (live, stats) = match seed {
        Some(out) => sweep::reachable_auto(tape, out, cfg, ctx)?,
        None => {
            // Same contract as the value sweep: a poisoned tape is an
            // error even when the output folded to a constant.
            if tape.overflowed() {
                return Err(AdError::TapeOverflow {
                    limit: tape.node_limit(),
                });
            }
            (vec![false; tape.len()], sweep::constant_stats())
        }
    };
    let used = used_bits(tape, ctx)?;
    // The def-use pass may have replayed more segments after the sweep's
    // stats were finalized; re-read the totals so the report sees both.
    let mut stats = stats;
    stats.replayed_segments = ctx.replayed_count();
    stats.peak_resident_bytes = tape.store().peak_resident_bytes();
    Ok(DataDep {
        live,
        used,
        seed,
        stats,
    })
}

/// One forward pass over the segments: mark every node that appears as a
/// parent of a later node. Walks forward-oriented replay windows on a
/// checkpointed tape.
fn used_bits(tape: &Tape, ctx: &ReplayCtx<'_>) -> Result<Vec<bool>, AdError> {
    let store = tape.store();
    let mut used = vec![false; tape.len()];
    for s in 0..store.seg_count() {
        let seg = store.view(s, Dir::Fwd, ctx)?;
        for off in 0..seg.len() {
            for p in [seg.p1[off], seg.p2[off]] {
                if p != NONE {
                    used[p as usize] = true;
                }
            }
        }
    }
    Ok(used)
}

#[cfg(test)]
mod tests {
    use crate::{AdError, Adj, Real, SweepConfig, TapeConfig, TapeSession};

    #[test]
    fn liveness_matches_reachability_and_used_is_def_use() {
        let s = TapeSession::new();
        let x = Adj::leaf(3.0);
        let y = Adj::leaf(4.0);
        let dead = Adj::leaf(5.0); // never consumed
        let out = x * y + 1.0;
        let tape = s.finish();
        let dd = tape.datadep(out).unwrap();
        let reach = tape.reachable(out).unwrap();
        assert_eq!(dd.live_bits(), &reach[..]);
        assert!(dd.live(x.index().unwrap()) && dd.used(x.index().unwrap()));
        assert!(!dd.live(dead.index().unwrap()));
        assert!(!dd.used(dead.index().unwrap()));
        assert_eq!(dd.live_count(), 4); // x, y, x*y, +1.0
        assert_eq!(dd.seed(), out.index());
    }

    #[test]
    fn witness_path_walks_recorded_consumers_to_the_output() {
        let s = TapeSession::new();
        let x = Adj::leaf(2.0); // node 0
        let a = x * 3.0; // node 1
        let b = a + 1.0; // node 2
        let out = b * b; // node 3
        let tape = s.finish();
        let dd = tape.datadep(out).unwrap();
        let w = dd.witness_path(&tape, x.index().unwrap(), 16).unwrap();
        assert_eq!(w.nodes, vec![0, 1, 2, 3]);
        assert_eq!(w.hops, 3);
        // Truncation keeps the hop count exact.
        let w = dd.witness_path(&tape, x.index().unwrap(), 2).unwrap();
        assert_eq!(w.nodes, vec![0, 1]);
        assert_eq!(w.hops, 3);
        // The output's own witness is the trivial path.
        let w = dd.witness_path(&tape, out.index().unwrap(), 16).unwrap();
        assert_eq!((w.nodes.len(), w.hops), (1, 0));
    }

    #[test]
    fn dead_node_has_no_witness() {
        let s = TapeSession::new();
        let x = Adj::leaf(2.0);
        let dead = Adj::leaf(7.0);
        let out = x * x;
        let tape = s.finish();
        let dd = tape.datadep(out).unwrap();
        assert!(dd.witness_path(&tape, dead.index().unwrap(), 16).is_none());
    }

    #[test]
    fn max_loser_is_live_with_a_witness_through_the_max_node() {
        let s = TapeSession::new();
        let a = Adj::leaf(5.0);
        let b = Adj::leaf(2.0); // loses the max: partial 0, edge recorded
        let out = a.rmax(b) * 2.0;
        let tape = s.finish();
        let g = tape.gradient(out).unwrap();
        let dd = tape.datadep(out).unwrap();
        assert_eq!(g.wrt(b), 0.0);
        assert!(dd.live(b.index().unwrap()));
        let w = dd.witness_path(&tape, b.index().unwrap(), 16).unwrap();
        // b -> max node -> out.
        assert_eq!(w.hops, 2);
        assert_eq!(*w.nodes.last().unwrap(), out.index().unwrap());
    }

    #[test]
    fn constant_output_yields_all_dead() {
        let s = TapeSession::new();
        let x = Adj::leaf(1.0);
        let c = Adj::constant(2.0) * 3.0;
        let tape = s.finish();
        let dd = tape.datadep(c).unwrap();
        assert_eq!(dd.seed(), None);
        assert!(!dd.live(x.index().unwrap()));
        assert_eq!(dd.live_count(), 0);
        assert!(dd.witness_path(&tape, x.index().unwrap(), 16).is_none());
    }

    #[test]
    fn poisoned_tape_is_a_typed_error() {
        let s = TapeSession::with_config(TapeConfig {
            segment_len: 8,
            node_limit: 4,
            ..TapeConfig::default()
        });
        let x = Adj::leaf(2.0);
        let mut y = x;
        for _ in 0..10 {
            y = y * 2.0 + 1.0;
        }
        let tape = s.finish();
        assert_eq!(
            tape.datadep(y).unwrap_err(),
            AdError::TapeOverflow { limit: 4 }
        );
        // Constant output on a poisoned tape is still an error.
        assert_eq!(
            tape.datadep(Adj::constant(1.0)).unwrap_err(),
            AdError::TapeOverflow { limit: 4 }
        );
    }

    #[test]
    fn out_of_range_seed_is_a_typed_error() {
        let s = TapeSession::new();
        let _x = Adj::leaf(1.0);
        let tape = s.finish();
        assert_eq!(
            tape.datadep_of(9, SweepConfig::default()).unwrap_err(),
            AdError::NodeOutOfRange { node: 9, len: 1 }
        );
    }
}
